"""Tests for the theory toolkit: dominance, phases, synchronized schedules."""

from __future__ import annotations

import pytest

from repro.algorithms import Aggressive, ParallelAggressive
from repro.core import (
    AlgorithmState,
    compare_synchronized_to_optimal,
    dominates,
    hole_positions,
    is_fully_synchronized,
    is_synchronized,
    phase_boundaries,
    phase_breakdown,
    phase_length,
    proper_intersections,
    state_of,
)
from repro.disksim import ProblemInstance, RequestSequence, simulate
from repro.errors import ConfigurationError
from repro.workloads import parallel_disk_example, single_disk_example

SEQ = RequestSequence(["a", "b", "c", "d", "a", "b", "e", "c"])
INST = ProblemInstance.single_disk(SEQ, cache_size=3, fetch_time=2)


class TestDominance:
    def test_hole_positions(self):
        # Cache holds a, b: the missing blocks referenced from position 0 are
        # c (pos 2), d (pos 3), e (pos 6) in that order.
        assert hole_positions(SEQ, 0, ["a", "b"]) == (2, 3, 6)
        # From position 4 with cache {a, b, c}: d is gone (last use before 4),
        # so the only hole is e at position 6.
        assert hole_positions(SEQ, 4, ["a", "b", "c"]) == (6,)

    def test_state_of_and_hole_accessor(self):
        state = state_of(INST, 0, ["a", "b"])
        assert state.cursor == 0
        assert state.hole(1) == 2
        assert state.hole(10) > len(SEQ)  # missing holes are at infinity
        with pytest.raises(ValueError):
            state.hole(0)

    def test_dominates_reflexive_and_ordering(self):
        weaker = AlgorithmState(cursor=2, holes=(3, 5))
        stronger = AlgorithmState(cursor=3, holes=(4, 6))
        assert dominates(weaker, weaker)
        assert dominates(stronger, weaker)
        assert not dominates(weaker, stronger)

    def test_fewer_holes_dominate(self):
        fewer = AlgorithmState(cursor=2, holes=(5,))
        more = AlgorithmState(cursor=2, holes=(5, 7))
        assert dominates(fewer, more)
        assert not dominates(more, fewer)

    def test_cursor_must_not_be_behind(self):
        behind = AlgorithmState(cursor=1, holes=())
        ahead = AlgorithmState(cursor=2, holes=())
        assert not dominates(behind, ahead)

    def test_aggressive_dominates_demand_states(self):
        """At every serve event, Aggressive's state dominates the no-prefetch state."""
        from repro.algorithms import DemandFetch

        instance = single_disk_example()
        aggressive = simulate(instance, Aggressive())
        # Compare final states: same cursor (end), Aggressive's holes cannot be
        # earlier than the demand policy's holes.
        demand = simulate(instance, DemandFetch())
        n = instance.num_requests
        a_state = state_of(instance, n, aggressive.schedule.blocks_fetched() | instance.initial_cache)
        d_state = state_of(instance, n, demand.schedule.blocks_fetched() | instance.initial_cache)
        assert dominates(a_state, d_state) or a_state.holes == d_state.holes


class TestPhases:
    def test_phase_length_refined_vs_cao(self):
        assert phase_length(8, 4) == 8 + 2 - 1
        assert phase_length(8, 4, refined=False) == 8
        assert phase_length(5, 10) == 5  # ceil(5/10) = 1
        with pytest.raises(ConfigurationError):
            phase_length(0, 1)

    def test_phase_boundaries_cover_sequence(self):
        boundaries = phase_boundaries(25, 8, 4)
        assert boundaries[0] == (0, 9)
        assert boundaries[-1][1] == 25
        covered = sum(hi - lo for lo, hi in boundaries)
        assert covered == 25

    def test_phase_breakdown_sums_to_elapsed(self):
        result = simulate(INST, Aggressive())
        breakdown = phase_breakdown(result)
        assert sum(breakdown.elapsed_per_phase) == result.elapsed_time
        assert sum(breakdown.stall_per_phase) == result.stall_time
        assert breakdown.num_phases == len(
            phase_boundaries(INST.num_requests, INST.cache_size, INST.fetch_time)
        )
        assert breakdown.max_stall() >= breakdown.average_stall() - 1e-9


class TestSynchronized:
    def test_single_disk_schedules_are_synchronized(self):
        result = simulate(INST, Aggressive())
        assert is_synchronized(result.schedule)
        assert proper_intersections(result.schedule) == []

    def test_parallel_aggressive_is_generally_not_synchronized(self):
        instance = parallel_disk_example()
        result = simulate(instance, ParallelAggressive())
        # The example's natural schedule staggers the two disks' fetches.
        assert not is_fully_synchronized(result.schedule)

    def test_lemma3_on_tiny_instance(self, small_parallel_instance):
        comparison = compare_synchronized_to_optimal(small_parallel_instance)
        assert comparison.synchronized_stall <= comparison.unrestricted_optimal_stall
        assert comparison.extra_cache_used <= 2 * (small_parallel_instance.num_disks - 1)
        assert comparison.lemma3_holds
