"""Tests for the Section 2 closed-form bounds."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    SQRT3,
    SingleDiskBounds,
    aggressive_bound_cao,
    aggressive_bound_refined,
    aggressive_lower_bound,
    best_delay_parameter,
    combination_bound,
    conservative_bound,
    delay_best_bound,
    delay_bound,
)
from repro.errors import ConfigurationError


class TestAggressiveBounds:
    def test_cao_values(self):
        assert aggressive_bound_cao(8, 4) == 1.5
        assert aggressive_bound_cao(4, 8) == 2.0

    def test_refined_examples(self):
        # k=8, F=4: 1 + 4/(8 + 2 - 1) = 1.3636...
        assert aggressive_bound_refined(8, 4) == pytest.approx(1 + 4 / 9)
        # F >= k caps at 2.
        assert aggressive_bound_refined(4, 8) == 2.0

    def test_lower_bound_examples(self):
        # k=13, F=4: 1 + 4/(13 + 12/3) = 1 + 4/17
        assert aggressive_lower_bound(13, 4) == pytest.approx(1 + 4 / 17)
        assert aggressive_lower_bound(5, 1) == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            aggressive_bound_refined(0, 4)
        with pytest.raises(ConfigurationError):
            aggressive_bound_refined(4, 0)
        with pytest.raises(ConfigurationError):
            delay_bound(-1, 4)

    def test_conservative_is_two(self):
        assert conservative_bound() == 2.0


class TestDelayBounds:
    def test_delay_zero_is_at_most_two_sided(self):
        # d=0: max{1, 2, 3/2} = 2 (the Aggressive end of the spectrum).
        assert delay_bound(0, 10) == 2.0

    def test_best_delay_parameter_scales_with_f(self):
        assert best_delay_parameter(10) == math.ceil((SQRT3 - 1) / 2 * 10)
        assert best_delay_parameter(1) == 1

    def test_best_delay_tends_to_sqrt3(self):
        for fetch_time in (10, 100, 1000, 10000):
            assert delay_best_bound(fetch_time) >= SQRT3 - 1e-9
        assert delay_best_bound(100000) == pytest.approx(SQRT3, abs=1e-3)

    def test_combination_bound_is_min(self):
        for k, fetch_time in [(8, 4), (64, 4), (4, 16), (100, 10)]:
            assert combination_bound(k, fetch_time) == pytest.approx(
                min(aggressive_bound_refined(k, fetch_time), delay_best_bound(fetch_time))
            )


class TestSingleDiskBounds:
    def test_container_consistency(self):
        bounds = SingleDiskBounds(cache_size=16, fetch_time=8)
        payload = bounds.as_dict()
        assert payload["aggressive_refined"] == aggressive_bound_refined(16, 8)
        assert payload["d0"] == best_delay_parameter(8)
        assert payload["combination"] == combination_bound(16, 8)
        assert payload["conservative"] == 2.0


@settings(max_examples=80, deadline=None)
@given(k=st.integers(min_value=1, max_value=500), fetch_time=st.integers(min_value=1, max_value=200))
def test_property_bound_relationships(k, fetch_time):
    """Structural facts the paper states about the bounds."""
    refined = aggressive_bound_refined(k, fetch_time)
    cao = aggressive_bound_cao(k, fetch_time)
    lower = aggressive_lower_bound(k, fetch_time)
    combo = combination_bound(k, fetch_time)
    # Theorem 1 improves on Cao et al. and never goes below the Theorem 2 bound.
    assert refined <= cao + 1e-12
    assert lower <= refined + 1e-12
    # All ratios live in [1, 2].
    assert 1.0 <= refined <= 2.0
    assert 1.0 <= lower <= 2.0
    # Combination is at least as good as both classical algorithms.
    assert combo <= refined + 1e-12
    assert combo <= conservative_bound() + 1e-12
    # The best delay ratio is always within [sqrt(3), 2].
    assert SQRT3 - 1e-9 <= delay_best_bound(fetch_time) <= 2.0 + 1e-12


@settings(max_examples=60, deadline=None)
@given(d=st.integers(min_value=0, max_value=500), fetch_time=st.integers(min_value=1, max_value=200))
def test_property_delay_bound_never_below_sqrt3(d, fetch_time):
    """No choice of d can push the Theorem 3 bound below sqrt(3)."""
    assert delay_bound(d, fetch_time) >= SQRT3 - 1e-9
