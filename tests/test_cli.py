"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main, parse_workload
from repro.disksim import RequestSequence
from repro.errors import ConfigurationError


class TestParseWorkload:
    def test_zipf_spec(self):
        sequence = parse_workload("zipf:n=30,blocks=8,skew=0.5,seed=1")
        assert isinstance(sequence, RequestSequence)
        assert len(sequence) == 30
        assert sequence.num_distinct <= 8

    def test_defaults(self):
        assert len(parse_workload("uniform")) == 200

    def test_trace_spec(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("a\nb\na\n")
        assert list(parse_workload(f"trace:path={path}")) == ["a", "b", "a"]

    def test_unknown_workload(self):
        with pytest.raises(ConfigurationError):
            parse_workload("nope:n=3")

    def test_misspelled_parameter_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            parse_workload("zipf:blocs=10")

    def test_bad_value_rejected_with_spec_named(self):
        with pytest.raises(ConfigurationError, match="zipf:n=abc"):
            parse_workload("zipf:n=abc")


class TestCommands:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_command(self, capsys):
        code = main(
            [
                "simulate",
                "-w",
                "loop:blocks=10,loops=2",
                "-k",
                "6",
                "-F",
                "3",
                "-a",
                "aggressive",
                "--gantt",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "aggressive" in out
        assert "stall_time" in out
        assert "legend" in out

    def test_compare_command(self, capsys):
        code = main(
            [
                "compare",
                "-w",
                "zipf:n=30,blocks=8,seed=2",
                "-k",
                "5",
                "-F",
                "3",
                "-a",
                "aggressive,conservative",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "optimal stall" in out
        assert "conservative" in out

    def test_sweep_command(self, capsys, tmp_path):
        json_path = tmp_path / "sweep.json"
        code = main(
            [
                "sweep",
                "-w",
                "zipf:n=30,blocks=8;loop:blocks=10,loops=2",
                "-k",
                "4,6",
                "-F",
                "3",
                "-a",
                "aggressive,demand",
                "--seeds",
                "0",
                "--workers",
                "2",
                "--json",
                str(json_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "8 points" in out
        assert "aggressive" in out and "demand" in out
        import json as json_module

        document = json_module.loads(json_path.read_text())
        assert document["num_points"] == 8
        assert document["results"][0]["workload"] == "zipf:n=30,blocks=8,seed=0"

    def test_sweep_layout_axis(self, capsys):
        code = main(
            [
                "sweep",
                "-w", "scan:blocks=12",
                "-k", "4",
                "-F", "3",
                "-D", "1,2",
                "--layouts", "roundrobin,partitioned",
                "-a", "parallel-aggressive",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "3 points" in out  # D=1 collapses the layout axis
        assert "roundrobin" in out and "partitioned" in out

    def test_workloads_command_lists_catalog(self, capsys):
        code = main(["workloads"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("zipf", "markov", "multiclient", "thm2", "trace"):
            assert name in out
        assert "striped" in out and "partitioned" in out

    def test_workloads_command_single_entry(self, capsys):
        code = main(["workloads", "markov"])
        out = capsys.readouterr().out
        assert code == 0
        assert "locality" in out and "default" in out

    def test_algorithms_command_lists_catalog(self, capsys):
        code = main(["algorithms"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("aggressive", "conservative", "delay", "demand", "combination"):
            assert name in out
        assert "legacy alias" in out

    def test_algorithms_command_single_entry(self, capsys):
        code = main(["algorithms", "demand"])
        out = capsys.readouterr().out
        assert code == 0
        assert "evict" in out and "lru" in out

    def test_compare_accepts_parametrised_specs(self, capsys):
        code = main(
            [
                "compare",
                "-w", "zipf:n=30,blocks=8,seed=2",
                "-k", "5", "-F", "3",
                "-a", "aggressive;delay:d=2;demand:evict=lru",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "delay(2)" in out and "demand[LRU]" in out

    def test_sweep_accepts_parametrised_specs(self, capsys):
        code = main(
            [
                "sweep",
                "-w", "zipf:n=30,blocks=8",
                "-k", "4", "-F", "3",
                "-a", "delay:d=3;demand:evict=fifo",
                "--seeds", "0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 points" in out
        assert "delay(3)" in out and "demand[FIFO]" in out

    def test_simulate_with_layout(self, capsys):
        code = main(
            [
                "simulate",
                "-w", "scan:blocks=12",
                "-k", "4", "-F", "3", "-D", "2",
                "--layout", "roundrobin",
                "-a", "parallel-aggressive",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "D=2" in out

    def test_sweep_backend_and_resume(self, capsys, tmp_path):
        grid = [
            "sweep",
            "-w", "zipf:n=30,blocks=8",
            "-k", "4", "-F", "3",
            "-a", "aggressive,demand",
            "--seeds", "0",
            "--cache-dir", str(tmp_path),
        ]
        assert main(grid + ["--backend", "thread", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "backend=thread" in out and "2 simulated" in out
        # Warmed resume: the manifest reports completion, nothing re-runs.
        assert main(grid + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resume 'cli-sweep': 2/2 points complete, 0 remaining" in out
        assert "0 simulated" in out and "0 optimum requests" in out

    def test_compare_reuses_store_optima(self, capsys, tmp_path, monkeypatch):
        """A warmed run store makes `repro compare` a pure optimum lookup."""
        command = [
            "compare",
            "-w", "loop:blocks=10,loops=2",
            "-k", "4", "-F", "3",
            "-a", "aggressive,conservative",
            "--cache-dir", str(tmp_path),
        ]
        assert main(command) == 0
        capsys.readouterr()

        import repro.lp.service as service_module

        def boom(*_args, **_kwargs):  # pragma: no cover - must not run
            raise AssertionError("warmed store must serve the compare optimum")

        monkeypatch.setattr(service_module, "compute_optimum_record", boom)
        assert main(command) == 0
        assert "optimal stall" in capsys.readouterr().out

    def test_resume_requires_cache_dir(self, capsys):
        code = main(
            ["sweep", "-w", "zipf:n=30,blocks=8", "-k", "4", "-F", "3",
             "-a", "aggressive", "--resume"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "--resume needs --cache-dir" in err

    def test_store_stats_gc_import(self, capsys, tmp_path):
        import json as json_module

        cache = tmp_path / "cache"
        assert main(
            ["sweep", "-w", "zipf:n=30,blocks=8", "-k", "4", "-F", "3",
             "-a", "aggressive", "--seeds", "0", "--cache-dir", str(cache)]
        ) == 0
        capsys.readouterr()
        stats_json = tmp_path / "stats.json"
        assert main(
            ["store", "stats", "--cache-dir", str(cache), "--json", str(stats_json)]
        ) == 0
        out = capsys.readouterr().out
        assert "runs" in out and "sweeps" in out
        payload = json_module.loads(stats_json.read_text())
        assert payload["runs"] == 1 and payload["sweeps"] == 1
        assert main(["store", "gc", "--cache-dir", str(cache)]) == 0
        assert "removed 1 finished sweep manifest" in capsys.readouterr().out

        # Import a legacy-format JSON cache directory into a fresh store.
        from repro.analysis.runner import ExperimentSpec, point_cache_key, run_experiments

        spec = ExperimentSpec(
            name="legacy", workloads=("zipf:n=30,blocks=8,seed=0",),
            cache_sizes=(4,), fetch_times=(3,), algorithms=("aggressive",),
        )
        legacy = tmp_path / "legacy"
        legacy.mkdir()
        run = run_experiments(spec)
        (legacy / f"{point_cache_key(spec.points()[0])}.json").write_text(
            json_module.dumps(run.records[0].to_json_dict(), sort_keys=True)
        )
        db = tmp_path / "imported.sqlite"
        assert main(["store", "import", str(legacy), "--db", str(db)]) == 0
        assert "imported 1 run record" in capsys.readouterr().out

    def test_store_stats_on_missing_db_fails_cleanly(self, capsys, tmp_path):
        code = main(["store", "stats", "--db", str(tmp_path / "nope.sqlite")])
        err = capsys.readouterr().err
        assert code == 2
        assert "no run store" in err

    def test_store_requires_a_location(self, capsys):
        code = main(["store", "stats"])
        err = capsys.readouterr().err
        assert code == 2
        assert "--db or --cache-dir" in err

    def test_lowerbound_command(self, capsys):
        code = main(["lowerbound", "-k", "7", "-F", "4", "--phases", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "thm2_bound" in out

    def test_bounds_command(self, capsys):
        code = main(["bounds", "--cache-sizes", "8,16", "--fetch-times", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "aggressive_refined" in out

    def test_error_exit_code(self, capsys):
        code = main(["simulate", "-w", "unknown:workload"])
        err = capsys.readouterr().err
        assert code == 2
        assert "error" in err

    @pytest.mark.parametrize(
        "command",
        [
            ["simulate", "-w", "zipf:blocs=10"],
            ["compare", "-w", "zipf:n=abc"],
            ["sweep", "-w", "zipf:seed=None"],
            ["sweep", "-w", "zipf:n=30,blocks=8", "--layouts", "raid5"],
            ["simulate", "-w", "zipf:n=30", "-a", "delay"],
            ["compare", "-w", "zipf:n=30", "-a", "aggressive;demand:evict=rand"],
            ["sweep", "-w", "zipf:n=30", "-a", "aggressive:tb=low"],
        ],
    )
    def test_bad_specs_exit_cleanly(self, capsys, command):
        """Regression: bad parameters print one configuration error, no traceback."""
        code = main(command)
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err


class TestBenchCommand:
    def test_bench_engine_writes_report_json(self, capsys, tmp_path):
        import json as json_module

        out = tmp_path / "report.json"
        code = main(
            ["bench", "engine", "--num-requests", "300", "--batch-size", "8",
             "--reps", "1", "--no-scan", "--json", str(out)]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "vector[B=8]" in captured
        assert "worst vector-batch speedup" in captured
        report = json_module.loads(out.read_text())
        assert report["benchmark"] == "engine-throughput"
        assert report["num_requests"] == 300 and report["batch_size"] == 8
        cell = report["results"]["zipf-hot/aggressive"]
        assert cell["vector_batch_requests_per_second"] > 0
        assert "scan_seconds" not in cell  # --no-scan skips the reference rows

    def test_bench_engine_gate_passes_against_a_loose_floor(self, capsys, tmp_path):
        import json as json_module

        floor = tmp_path / "floor.json"
        floor.write_text(json_module.dumps({
            "gate": "engine-vector-perf",
            "num_requests": 300,
            "batch_size": 8,
            "min_vector_batch_requests_per_second": 1.0,
            "min_vector_batch_speedup": 0.01,
        }))
        code = main(
            ["bench", "engine", "--reps", "1", "--no-scan",
             "--gate", "--floor", str(floor)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "perf gate passed" in captured.out

    def test_bench_engine_gate_fails_loudly_below_the_floor(self, capsys, tmp_path):
        import json as json_module

        floor = tmp_path / "floor.json"
        floor.write_text(json_module.dumps({
            "gate": "engine-vector-perf",
            "num_requests": 300,
            "batch_size": 8,
            "min_vector_batch_requests_per_second": 1e15,
            "min_vector_batch_speedup": 0.01,
        }))
        code = main(
            ["bench", "engine", "--reps", "1", "--no-scan",
             "--gate", "--floor", str(floor)]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "PERF GATE:" in captured.err
        assert "below the floor" in captured.err

    def test_bench_engine_gate_reports_grid_mismatch(self, capsys, tmp_path):
        import json as json_module

        floor = tmp_path / "floor.json"
        floor.write_text(json_module.dumps({
            "gate": "engine-vector-perf",
            "num_requests": 999,
            "min_vector_batch_requests_per_second": 1.0,
            "min_vector_batch_speedup": 0.01,
        }))
        code = main(
            ["bench", "engine", "--num-requests", "300", "--batch-size", "8",
             "--reps", "1", "--no-scan", "--gate", "--floor", str(floor)]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "gate grid mismatch" in captured.err

    def test_simulate_engine_axis(self, capsys):
        code = main(
            ["simulate", "-w", "zipf:n=40,blocks=10,seed=1", "-k", "6", "-F", "3",
             "-a", "aggressive", "--engine", "vector"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "stall_time" in out

    def test_sweep_engine_axis_matches_loop(self, capsys, tmp_path):
        seeds = ",".join(str(i) for i in range(10))
        loop_json = tmp_path / "loop.json"
        vector_json = tmp_path / "vector.json"
        base = ["sweep", "-w", "zipf:n=40,blocks=10", "-k", "6", "-F", "3",
                "-a", "aggressive", "--seeds", seeds]
        assert main(base + ["--engine", "loop", "--json", str(loop_json)]) == 0
        assert main(base + ["--engine", "vector", "--json", str(vector_json)]) == 0
        capsys.readouterr()
        loop_text = loop_json.read_text()
        vector_text = vector_json.read_text()
        assert '"vector"' in vector_text
        assert vector_text.replace('"vector"', '"loop"') == loop_text


class TestServeCommand:
    def test_replay_matches_offline(self, capsys):
        code = main(
            ["serve", "--replay", "multiclient:clients=5,n=150,shared=8,shared_frac=0.3",
             "-a", "aggressive", "--chunk", "40", "-k", "6", "-F", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "matches offline batch run" in out
        assert "150 requests" in out

    def test_replay_deferred_policy(self, capsys):
        code = main(
            ["serve", "--replay", "multiclient:clients=5,n=150,shared=8,shared_frac=0.3",
             "-a", "conservative", "--chunk", "40", "-k", "6", "-F", "3"]
        )
        assert code == 0
        assert "deferred" in capsys.readouterr().out

    def test_replay_bad_workload_exits_cleanly(self, capsys):
        code = main(["serve", "--replay", "definitely-not-a-workload"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")


class TestSweepWatch:
    GRID = ["-w", "zipf:n=30,blocks=8", "-k", "4", "-F", "3",
            "-a", "aggressive,demand", "--seeds", "0"]

    def test_watch_requires_cache_dir(self, capsys):
        code = main(["sweep", *self.GRID, "--watch"])
        captured = capsys.readouterr()
        assert code == 2
        assert "--watch needs --cache-dir" in captured.err

    def test_watch_exits_when_sweep_complete(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["sweep", *self.GRID, "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        code = main(["sweep", *self.GRID, "--cache-dir", cache_dir, "--watch"])
        out = capsys.readouterr().out
        assert code == 0
        assert "watch" in out and "2/2 points complete" in out
        assert "sweep complete" in out

    def test_watch_polls_until_complete(self, capsys, tmp_path, monkeypatch):
        """An incomplete manifest keeps polling; completion ends the loop."""
        cache_dir = str(tmp_path / "cache")
        assert main(["sweep", *self.GRID, "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        # Register a *wider* grid sharing the store: its manifest is
        # initially incomplete, so the watcher must poll at least once.
        wide = ["-w", "zipf:n=30,blocks=8", "-k", "4,6", "-F", "3",
                "-a", "aggressive,demand", "--seeds", "0"]
        polls = []

        def fake_sleep(seconds):
            polls.append(seconds)
            # Complete the sweep from "another process" during the poll gap.
            assert main(["sweep", *wide, "--cache-dir", cache_dir]) == 0

        import time as time_module

        monkeypatch.setattr(time_module, "sleep", fake_sleep)
        code = main(["sweep", *wide, "--cache-dir", cache_dir,
                     "--watch", "--watch-interval", "0.01"])
        out = capsys.readouterr().out
        assert code == 0
        assert polls == [0.01]
        assert "4/4 points complete" in out


class TestDistributedCommands:
    GRID = ["-w", "zipf:n=30,blocks=8", "-k", "4", "-F", "3",
            "-a", "aggressive,demand", "--seeds", "0,1"]

    def test_worker_requires_coordinator_url(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])

    def test_coordinator_requires_cache_dir(self, capsys):
        code = main(["coordinator", *self.GRID])
        captured = capsys.readouterr()
        assert code == 2
        assert "needs --cache-dir" in captured.err

    def test_coordinator_rejects_foreign_backend(self, capsys, tmp_path):
        code = main(["coordinator", *self.GRID, "--backend", "thread",
                     "--cache-dir", str(tmp_path / "cache")])
        captured = capsys.readouterr()
        assert code == 2
        assert "remote backend" in captured.err

    def test_coordinator_and_worker_complete_a_grid(self, capsys, tmp_path):
        """End-to-end in one process: CLI coordinator + one worker thread."""
        import re
        import threading

        cache_dir = str(tmp_path / "cache")
        printed = []

        worker_done = []

        def run_cli_worker(url):
            worker_done.append(main([
                "worker", "--coordinator", url, "--id", "w0",
                "--poll-interval", "0.01", "--backoff-base", "0.01",
                "--backoff-cap", "0.05", "--max-retries", "3",
            ]))

        # The coordinator prints its URL before blocking on results; capture
        # it via a monkeypatch-free hook: spawn the worker as soon as the
        # port shows up in the captured output.  Simplest reliable order in
        # one process: run the coordinator in a thread, poll capsys from here.
        coordinator_code = []

        def run_coordinator():
            coordinator_code.append(main([
                "coordinator", *self.GRID, "--cache-dir", cache_dir,
                "--chunk-size", "2", "--lease-timeout", "5",
                "--linger", "0.1", "--port", "0",
            ]))

        thread = threading.Thread(target=run_coordinator, daemon=True)
        thread.start()
        url = None
        deadline = 50
        import time as time_module
        for _ in range(deadline * 100):
            out = capsys.readouterr().out
            printed.append(out)
            match = re.search(r"http://[\d.]+:\d+", out)
            if match:
                url = match.group(0)
                break
            time_module.sleep(0.01)
        assert url is not None, "coordinator never printed its URL"
        worker_thread = threading.Thread(target=run_cli_worker, args=(url,), daemon=True)
        worker_thread.start()
        thread.join(timeout=60)
        worker_thread.join(timeout=60)
        out = "".join(printed) + capsys.readouterr().out
        assert coordinator_code == [0]
        assert worker_done == [0]
        assert "4 points" in out
        assert "worker w0: done" in out
        # The warm re-run is a pure cache hit through the ordinary sweep path.
        assert main(["sweep", *self.GRID, "--cache-dir", cache_dir]) == 0
        rerun = capsys.readouterr().out
        assert "(4 cached, 0 simulated" in rerun
