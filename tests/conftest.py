"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.disksim import DiskLayout, ProblemInstance, RequestSequence
from repro.workloads import parallel_disk_example, single_disk_example


@pytest.fixture
def paper_single(request) -> ProblemInstance:
    """The paper's single-disk worked example (k=4, F=4, warm b1..b4)."""
    return single_disk_example()


@pytest.fixture
def paper_parallel() -> ProblemInstance:
    """The paper's two-disk worked example."""
    return parallel_disk_example()


@pytest.fixture
def small_cold_instance() -> ProblemInstance:
    """A small cold-start single-disk instance used across algorithm tests."""
    sequence = RequestSequence(
        ["a", "b", "c", "a", "d", "b", "e", "a", "c", "d", "e", "b", "a", "c"]
    )
    return ProblemInstance.single_disk(sequence, cache_size=3, fetch_time=3)


@pytest.fixture
def small_warm_instance() -> ProblemInstance:
    """A small warm-start instance where prefetching can hide most latency."""
    sequence = RequestSequence(["a", "b", "a", "c", "b", "d", "a", "c", "e", "d", "b", "e"])
    return ProblemInstance.single_disk(
        sequence, cache_size=4, fetch_time=3, initial_cache=["a", "b", "c", "d"]
    )


@pytest.fixture
def small_parallel_instance() -> ProblemInstance:
    """A tiny two-disk instance suitable for the brute-force oracle."""
    layout = DiskLayout.partitioned([["a", "b", "c"], ["x", "y"]])
    sequence = RequestSequence(["a", "x", "b", "y", "c", "a", "x", "b"])
    return ProblemInstance.parallel_disk(
        sequence, cache_size=3, fetch_time=3, layout=layout, initial_cache=["a", "x", "b"]
    )


# Shared non-fixture helpers live in tests/helpers.py (importable as
# ``helpers`` because pytest puts this conftest's directory on sys.path);
# re-exported here for any legacy uses.
from helpers import random_single_instances  # noqa: E402,F401
