"""Tests for the Section 2 algorithms: Aggressive, Conservative, Delay, Combination."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    Aggressive,
    Combination,
    Conservative,
    Delay,
    DemandFetch,
)
from repro.core.bounds import aggressive_bound_refined, best_delay_parameter, delay_best_bound
from repro.disksim import ProblemInstance, RequestSequence, simulate
from repro.paging import BeladyMIN, min_fault_count
from repro.workloads import single_disk_example, uniform_random, zipf

from helpers import random_single_instances


class TestAggressive:
    def test_paper_example(self, paper_single):
        result = simulate(paper_single, Aggressive())
        assert result.elapsed_time == 13
        # The first fetch is for b5 and evicts b1 (the furthest-future block).
        first = result.schedule.fetches[0]
        assert first.block == "b5"
        assert first.victim == "b1"

    def test_does_not_fetch_when_all_cached_blocks_needed_sooner(self):
        # Cache holds a,b both requested before the missing block c.
        inst = ProblemInstance.single_disk(
            ["a", "b", "c"], cache_size=2, fetch_time=2, initial_cache=["a", "b"]
        )
        result = simulate(inst, Aggressive())
        # The fetch for c cannot start before a and b are no longer needed
        # earlier than c, so it starts at the request to b at the earliest.
        first_fetch = result.schedule.fetches[0]
        assert first_fetch.start_time >= 1

    def test_beats_demand_fetching(self):
        for instance in random_single_instances(4):
            aggressive = simulate(instance, Aggressive()).elapsed_time
            demand = simulate(instance, DemandFetch()).elapsed_time
            assert aggressive <= demand

    def test_fetch_count_at_least_min_faults(self, small_cold_instance):
        result = simulate(small_cold_instance, Aggressive())
        faults = min_fault_count(
            small_cold_instance.sequence, small_cold_instance.cache_size
        )
        assert result.metrics.num_fetches >= faults


class TestConservative:
    def test_paper_example(self, paper_single):
        result = simulate(paper_single, Conservative())
        assert result.elapsed_time == 12
        assert result.metrics.num_fetches == 1

    def test_fetch_count_equals_min_faults(self):
        """Conservative performs exactly MIN's replacements (same fetch count)."""
        for instance in random_single_instances(4):
            result = simulate(instance, Conservative())
            faults = min_fault_count(
                instance.sequence, instance.cache_size, instance.initial_cache
            )
            assert result.metrics.num_fetches == faults
            assert result.metrics.num_demand_fetches <= faults

    def test_at_most_twice_optimal_on_small_instances(self, small_cold_instance):
        from repro.lp import optimal_single_disk

        conservative = simulate(small_cold_instance, Conservative()).elapsed_time
        optimum = optimal_single_disk(small_cold_instance).elapsed_time
        assert conservative <= 2 * optimum


class TestDelay:
    def test_delay_zero_equals_aggressive(self):
        for instance in random_single_instances(5):
            d0 = simulate(instance, Delay(0))
            aggressive = simulate(instance, Aggressive())
            assert d0.elapsed_time == aggressive.elapsed_time
            assert d0.metrics.num_fetches == aggressive.metrics.num_fetches

    def test_large_delay_equals_conservative(self):
        for instance in random_single_instances(5):
            big = simulate(instance, Delay(instance.num_requests)).elapsed_time
            conservative = simulate(instance, Conservative()).elapsed_time
            assert big == conservative

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Delay(-1)

    def test_paper_example_small_delay_matches_better_option(self, paper_single):
        # Delaying by 1-2 requests lets the algorithm evict b2 instead of b1,
        # reproducing the paper's "better option" of elapsed time <= 12.
        result = simulate(paper_single, Delay(2))
        assert result.elapsed_time <= 12

    def test_name_includes_parameter(self):
        assert Delay(7).name == "delay(7)"


class TestCombination:
    def test_selects_delay_when_cache_small(self):
        inst = ProblemInstance.single_disk(["a", "b"], cache_size=2, fetch_time=8)
        chosen = Combination.select_for(inst)
        assert isinstance(chosen, Delay)
        assert chosen.d == best_delay_parameter(8)

    def test_selects_aggressive_when_cache_large(self):
        inst = ProblemInstance.single_disk(["a", "b"], cache_size=256, fetch_time=4)
        assert isinstance(Combination.select_for(inst), Aggressive)
        assert aggressive_bound_refined(256, 4) < delay_best_bound(4)

    def test_matches_its_delegate(self):
        for instance in random_single_instances(4):
            combo = Combination()
            combo_result = simulate(instance, combo)
            delegate_result = simulate(instance, Combination.select_for(instance))
            assert combo_result.elapsed_time == delegate_result.elapsed_time
            assert combo.chosen is not None


class TestDemandFetch:
    def test_stall_is_fetch_time_per_fault(self):
        """With MIN replacement and no prefetching, every fault stalls F units."""
        for instance in random_single_instances(4):
            result = simulate(instance, DemandFetch(BeladyMIN()))
            faults = min_fault_count(
                instance.sequence, instance.cache_size, instance.initial_cache
            )
            assert result.stall_time == faults * instance.fetch_time
            assert result.metrics.num_fetches == faults


@settings(max_examples=20, deadline=None)
@given(
    blocks=st.lists(st.integers(min_value=0, max_value=8), min_size=5, max_size=30),
    cache_size=st.integers(min_value=2, max_value=6),
    fetch_time=st.integers(min_value=1, max_value=6),
    delay=st.integers(min_value=0, max_value=10),
)
def test_property_algorithm_sanity_against_demand(blocks, cache_size, fetch_time, delay):
    """Sanity bounds relative to pure demand fetching.

    Conservative performs MIN's replacements and overlaps each fetch with at
    least as much computation as demand fetching does, so it never loses to
    demand.  The other strategies carry a factor-2 elapsed-time guarantee
    relative to the optimum, which demand fetching upper-bounds.
    """
    instance = ProblemInstance.single_disk(
        RequestSequence(blocks), cache_size=cache_size, fetch_time=fetch_time
    )
    demand = simulate(instance, DemandFetch()).elapsed_time
    assert simulate(instance, Conservative()).elapsed_time <= demand
    assert simulate(instance, Aggressive()).elapsed_time <= 2 * demand
    assert simulate(instance, Combination()).elapsed_time <= 2 * demand
    delayed = simulate(instance, Delay(delay))
    assert delayed.elapsed_time >= instance.num_requests
