"""Tests for the parallel-disk baselines and the algorithm registry."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    Aggressive,
    Delay,
    DemandFetch,
    ParallelAggressive,
    ParallelConservative,
    available_algorithms,
    make_algorithm,
)
from repro.disksim import DiskLayout, ProblemInstance, execute_schedule, simulate
from repro.errors import ConfigurationError
from repro.workloads import parallel_disk_example, uniform_random
from repro.workloads.multidisk import striped_instance


def _parallel_instances():
    instances = [parallel_disk_example()]
    for seed, disks in [(1, 2), (2, 3), (3, 4)]:
        sequence = uniform_random(30, 12, seed=seed, prefix=f"p{seed}_")
        instances.append(striped_instance(sequence, 6, 4, disks))
    return instances


class TestParallelAggressive:
    def test_feasible_and_replayable(self):
        for instance in _parallel_instances():
            result = simulate(instance, ParallelAggressive())
            replay = execute_schedule(instance, result.schedule)
            assert replay.stall_time == result.stall_time
            assert result.metrics.peak_cache_used <= instance.cache_size

    def test_uses_multiple_disks(self):
        instance = striped_instance(uniform_random(40, 16, seed=5), 6, 4, 2)
        result = simulate(instance, ParallelAggressive())
        assert set(result.metrics.fetches_per_disk) == {0, 1}

    def test_beats_demand_on_striped_scans(self):
        from repro.workloads import sequential_scan

        instance = striped_instance(sequential_scan(30), 4, 4, 2)
        parallel = simulate(instance, ParallelAggressive()).elapsed_time
        demand = simulate(instance, DemandFetch()).elapsed_time
        assert parallel < demand

    def test_parallelism_helps_over_single_disk_layout(self):
        from repro.workloads import sequential_scan

        sequence = sequential_scan(30)
        one_disk = ProblemInstance.single_disk(sequence, cache_size=4, fetch_time=4)
        two_disks = striped_instance(sequence, 4, 4, 2)
        single = simulate(one_disk, Aggressive()).elapsed_time
        dual = simulate(two_disks, ParallelAggressive()).elapsed_time
        assert dual <= single

    def test_reduces_to_aggressive_on_one_disk(self):
        sequence = uniform_random(30, 10, seed=7)
        instance = ProblemInstance.single_disk(sequence, cache_size=5, fetch_time=3)
        assert (
            simulate(instance, ParallelAggressive()).elapsed_time
            == simulate(instance, Aggressive()).elapsed_time
        )


class TestParallelConservative:
    def test_feasible_and_replayable(self):
        for instance in _parallel_instances():
            result = simulate(instance, ParallelConservative())
            replay = execute_schedule(instance, result.schedule)
            assert replay.stall_time == result.stall_time

    def test_not_worse_than_demand(self):
        for instance in _parallel_instances():
            conservative = simulate(instance, ParallelConservative()).elapsed_time
            demand = simulate(instance, DemandFetch()).elapsed_time
            assert conservative <= demand


class TestRegistry:
    def test_known_names(self):
        names = available_algorithms()
        for expected in ("aggressive", "conservative", "combination", "demand"):
            assert expected in names
        # The non-instantiable "delay:<d>" pseudo-entry is gone; the family
        # is listed under its real name with a parameter schema.
        assert "delay:<d>" not in names
        assert "delay" in names

    def test_make_algorithm(self):
        assert isinstance(make_algorithm("aggressive"), Aggressive)
        delay = make_algorithm("delay:d=5")
        assert isinstance(delay, Delay)
        assert delay.d == 5
        # The pre-grammar positional form stays a documented alias.
        legacy = make_algorithm("delay:5")
        assert isinstance(legacy, Delay) and legacy.d == 5

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_algorithm("does-not-exist")

    def test_delay_without_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            make_algorithm("delay")
        with pytest.raises(ConfigurationError):
            make_algorithm("delay:x")

    def test_registration(self):
        from repro.algorithms import ALGORITHM_REGISTRY, register_algorithm

        register_algorithm("custom-aggressive", Aggressive)
        try:
            assert isinstance(make_algorithm("custom-aggressive"), Aggressive)
            with pytest.raises(ConfigurationError, match="already registered"):
                register_algorithm("custom-aggressive", Aggressive)
            register_algorithm("custom-aggressive", Aggressive, replace=True)
        finally:
            del ALGORITHM_REGISTRY["custom-aggressive"]
