"""Tests for the typed algorithm-spec registry.

The registry-driven contract suite walks :data:`ALGORITHM_REGISTRY` so every
algorithm added later is automatically held to the same contract: builds
from its defaults, accepts each documented parameter, rejects unknown keys,
and records a round-trippable spec.  Mirrors
``tests/workloads/test_spec_registry.py``.
"""

from __future__ import annotations

import pytest

from repro.algorithms import (
    ALGORITHM_REGISTRY,
    Aggressive,
    Combination,
    Conservative,
    Delay,
    DemandFetch,
    PrefetchAlgorithm,
    available_algorithms,
    format_algorithm_catalog,
    make_algorithm,
    parse_algorithm,
    register_algorithm,
)
from repro.disksim import ProblemInstance, simulate
from repro.errors import ConfigurationError
from repro.paging import FIFO, LRU, run_paging
from repro.specs import with_params
from repro.workloads import uniform_random, zipf
from repro.workloads.multidisk import striped_instance

ALL_ALGORITHMS = sorted(ALGORITHM_REGISTRY)

#: Required parameters per algorithm (the contract suite's base specs).
BASE_SPECS = {"delay": "delay:d=2"}


def base_spec(name: str) -> str:
    return BASE_SPECS.get(name, name)


def _instance_for(kind: str) -> ProblemInstance:
    sequence = uniform_random(40, 12, seed=3)
    if kind == "parallel":
        return striped_instance(sequence, 6, 4, 2)
    return ProblemInstance.single_disk(sequence, cache_size=6, fetch_time=4)


class TestRegistryContract:
    """Every registered algorithm satisfies the same parse/build contract."""

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_builds_from_base_spec(self, name):
        algorithm = make_algorithm(base_spec(name))
        assert isinstance(algorithm, PrefetchAlgorithm)

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_every_listed_name_resolves(self, name):
        definition, _params = parse_algorithm(base_spec(name))
        assert definition.name == name

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_accepts_every_documented_parameter(self, name):
        definition = ALGORITHM_REGISTRY[name]
        # None-defaulted parameters are optional sentinels with no spec
        # rendering; every other default must round-trip through the grammar.
        defaults = {
            p.name: p.default
            for p in definition.params
            if not p.required and p.default is not None
        }
        spec = with_params(base_spec(name), **defaults)
        assert isinstance(make_algorithm(spec), PrefetchAlgorithm)

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_rejects_unknown_parameter(self, name):
        spec = with_params(base_spec(name), definitely_not_a_parameter=1)
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            make_algorithm(spec)

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_duplicate_parameter_rejected(self, name):
        with pytest.raises(ConfigurationError, match="duplicate parameter"):
            make_algorithm(f"{name}:x=1,x=2")

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_recorded_spec_round_trips(self, name):
        spec = base_spec(name)
        algorithm = make_algorithm(spec)
        assert algorithm.spec == spec
        again = make_algorithm(algorithm.spec)
        assert type(again) is type(algorithm)

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_simulates_on_matching_instance(self, name):
        definition = ALGORITHM_REGISTRY[name]
        instance = _instance_for(definition.kind)
        result = simulate(instance, make_algorithm(base_spec(name)))
        assert result.elapsed_time >= result.metrics.num_requests


class TestStrictParsing:
    def test_unknown_algorithm_lists_catalog(self):
        with pytest.raises(ConfigurationError, match="available:"):
            make_algorithm("nope:x=1")

    def test_uncoercible_value_names_spec(self):
        with pytest.raises(ConfigurationError, match="delay:d=abc"):
            make_algorithm("delay:d=abc")

    def test_missing_required_parameter(self):
        with pytest.raises(ConfigurationError, match="required"):
            make_algorithm("delay")

    def test_malformed_item_rejected(self):
        with pytest.raises(ConfigurationError, match="key=value"):
            make_algorithm("delay:x")

    def test_choice_parameter_lists_options(self):
        with pytest.raises(ConfigurationError) as excinfo:
            make_algorithm("demand:evict=rand")
        message = str(excinfo.value)
        assert "lru" in message and "fifo" in message and "min" in message

    def test_factory_validation_becomes_configuration_error(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            make_algorithm("delay:d=-3")


class TestLegacyDelayAlias:
    """``delay:<int>`` (pre-grammar form) stays a documented alias."""

    def test_legacy_form_parses(self):
        algorithm = make_algorithm("delay:3")
        assert isinstance(algorithm, Delay)
        assert algorithm.d == 3

    def test_legacy_form_canonicalised(self):
        assert make_algorithm("delay:3").spec == "delay:d=3"

    def test_legacy_and_typed_forms_agree(self):
        instance = _instance_for("single-disk")
        legacy = simulate(instance, make_algorithm("delay:5"))
        typed = simulate(instance, make_algorithm("delay:d=5"))
        assert legacy.metrics == typed.metrics


class TestRegistration:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_algorithm("aggressive", Aggressive)

    def test_replace_allows_override(self):
        register_algorithm("contract-suite-tmp", Aggressive)
        try:
            definition = register_algorithm(
                "contract-suite-tmp", Conservative, replace=True
            )
            assert definition.factory is Conservative
            assert isinstance(make_algorithm("contract-suite-tmp"), Conservative)
        finally:
            del ALGORITHM_REGISTRY["contract-suite-tmp"]

    def test_no_pseudo_entries_in_catalog(self):
        names = available_algorithms()
        assert "delay:<d>" not in names
        assert "delay" in names
        # Every listed name resolves to a registry entry with a schema.
        for name in names:
            assert name in ALGORITHM_REGISTRY


class TestKnobs:
    def test_demand_lru_matches_classical_paging(self):
        """demand:evict=lru performs exactly LRU's faults (stall = faults*F)."""
        sequence = zipf(80, 16, seed=4)
        instance = ProblemInstance.single_disk(sequence, cache_size=5, fetch_time=3)
        result = simulate(instance, make_algorithm("demand:evict=lru"))
        paging = run_paging(sequence, 5, LRU())
        assert result.metrics.num_fetches == paging.faults
        assert result.metrics.stall_time == paging.faults * 3

    def test_demand_fifo_matches_classical_paging(self):
        sequence = zipf(80, 16, seed=9)
        instance = ProblemInstance.single_disk(sequence, cache_size=5, fetch_time=2)
        result = simulate(instance, make_algorithm("demand:evict=fifo"))
        paging = run_paging(sequence, 5, FIFO())
        assert result.metrics.num_fetches == paging.faults

    def test_demand_evict_changes_behaviour(self):
        sequence = zipf(120, 20, seed=7)
        instance = ProblemInstance.single_disk(sequence, cache_size=5, fetch_time=3)
        stalls = {
            evict: simulate(instance, make_algorithm(f"demand:evict={evict}")).stall_time
            for evict in ("min", "lru", "fifo")
        }
        # MIN is offline-optimal: never worse than the online policies.
        assert stalls["min"] <= stalls["lru"]
        assert stalls["min"] <= stalls["fifo"]

    def test_demand_rejects_conflicting_constructor_arguments(self):
        with pytest.raises(ValueError):
            DemandFetch(LRU(), evict="fifo")

    def test_aggressive_tiebreak_stays_within_guarantee(self):
        for seed in (1, 2, 3):
            instance = ProblemInstance.single_disk(
                uniform_random(50, 14, seed=seed), cache_size=6, fetch_time=4
            )
            high = simulate(instance, make_algorithm("aggressive"))
            low = simulate(instance, make_algorithm("aggressive:tiebreak=low"))
            demand = simulate(instance, make_algorithm("demand")).elapsed_time
            # Any tie-break satisfies the Theorem 1 analysis.
            assert high.elapsed_time <= 2 * demand
            assert low.elapsed_time <= 2 * demand
            assert low.metrics.num_requests == high.metrics.num_requests

    def test_aggressive_tiebreak_default_is_native_order(self):
        instance = _instance_for("single-disk")
        assert (
            simulate(instance, make_algorithm("aggressive:tiebreak=high")).metrics
            == simulate(instance, Aggressive()).metrics
        )

    def test_invalid_knob_value_rejected_directly(self):
        with pytest.raises(ValueError, match="tiebreak"):
            Aggressive(tiebreak="sideways")

    def test_parallel_order_knob_changes_claim_order(self):
        instance = _instance_for("parallel")
        asc = simulate(instance, make_algorithm("parallel-aggressive:order=asc"))
        desc = simulate(instance, make_algorithm("parallel-aggressive:order=desc"))
        # Both are feasible runs over the same instance; the knob only
        # reorders claims within a round.
        assert asc.metrics.num_requests == desc.metrics.num_requests
        assert desc.policy_name == "parallel-aggressive[order=desc]"

    def test_combination_d_override_selects_delay(self):
        instance = ProblemInstance.single_disk(
            uniform_random(30, 10, seed=1), cache_size=2, fetch_time=8
        )
        combo = make_algorithm("combination:d=5")
        simulate(instance, combo)
        assert isinstance(combo.chosen, Delay)
        assert combo.chosen.d == 5

    def test_combination_alt_component_used_when_cache_large(self):
        instance = ProblemInstance.single_disk(
            uniform_random(30, 10, seed=1), cache_size=256, fetch_time=4
        )
        combo = make_algorithm("combination:alt=demand:evict=lru")
        simulate(instance, combo)
        assert isinstance(combo.chosen, DemandFetch)
        assert combo.chosen.name == "demand[LRU]"

    def test_combination_default_matches_select_for(self):
        instance = _instance_for("single-disk")
        combo = Combination()
        result = simulate(instance, combo)
        delegate = simulate(instance, Combination.select_for(instance))
        assert result.elapsed_time == delegate.elapsed_time


class TestCatalog:
    def test_catalog_lists_every_algorithm(self):
        catalog = format_algorithm_catalog()
        for name in ALL_ALGORITHMS:
            assert name in catalog
        assert "legacy alias" in catalog

    def test_single_algorithm_view_shows_parameter_help(self):
        view = format_algorithm_catalog("delay")
        assert "d (int, required)" in view

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            format_algorithm_catalog("nope")

    def test_docs_match_the_registry(self):
        """README documents every registered algorithm (generated table)."""
        from pathlib import Path

        from repro.algorithms import algorithm_catalog_rows

        root = Path(__file__).resolve().parents[2]
        readme = (root / "README.md").read_text(encoding="utf8")
        design = (root / "DESIGN.md").read_text(encoding="utf8")
        for row in algorithm_catalog_rows():
            assert f"`{row['name']}`" in readme, f"README table misses {row['name']}"
            assert f"`{row['example']}`" in readme, (
                f"README table example drifted for {row['name']}"
            )
            assert row["params"] in readme, f"README table schema drifted for {row['name']}"
            assert f"`{row['name']}`" in design, f"DESIGN misses algorithm {row['name']}"
