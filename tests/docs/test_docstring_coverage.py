"""Docstring coverage for the LP and analysis layers (pydocstyle-style, stdlib-only).

The satellite contract for these packages is that every module states the
formulation/measurement it implements and every public definition says what
it is for.  Rather than depending on ``pydocstyle`` (not in the baked
image), this walks the AST: each module under ``repro/lp`` and
``repro/analysis`` must carry a module docstring, and every public class,
function and method (name not starting with ``_``) must carry its own.
The LP modules must additionally mention the paper (a section/theorem/lemma
reference) in their module docstring — that is the "which LP does this file
implement" guarantee.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
PACKAGES = ("src/repro/lp", "src/repro/analysis", "src/repro/checks")

#: Module docstrings of repro/lp must reference the paper explicitly.
_PAPER_REFERENCE = re.compile(
    r"Section\s+\d|Theorem\s+\d|Lemma\s+\d|Corollary\s+\d|Albers|Cao"
)


def _module_paths():
    for package in PACKAGES:
        for path in sorted((ROOT / package).glob("*.py")):
            yield path


def _public_definitions(tree: ast.Module):
    """Yield (qualified name, node) for every public def/class, nested in classes."""

    def walk(node, prefix):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = child.name
                if name.startswith("_"):
                    continue
                qualified = f"{prefix}{name}"
                yield qualified, child
                if isinstance(child, ast.ClassDef):
                    yield from walk(child, f"{qualified}.")

    yield from walk(tree, "")


@pytest.mark.parametrize("path", _module_paths(), ids=lambda p: str(p.relative_to(ROOT)))
def test_module_and_public_api_docstrings(path):
    """Module + every public class/function/method carries a docstring."""
    tree = ast.parse(path.read_text(encoding="utf8"))
    assert ast.get_docstring(tree), f"{path} has no module docstring"
    missing = [
        name
        for name, node in _public_definitions(tree)
        if not ast.get_docstring(node)
    ]
    assert not missing, f"{path} public definitions without docstrings: {missing}"


@pytest.mark.parametrize(
    "path",
    [p for p in _module_paths() if "lp" in p.parts[-2]],
    ids=lambda p: str(p.relative_to(ROOT)),
)
def test_lp_modules_state_their_formulation(path):
    """Every repro/lp module docstring anchors itself to the paper."""
    tree = ast.parse(path.read_text(encoding="utf8"))
    docstring = ast.get_docstring(tree) or ""
    assert _PAPER_REFERENCE.search(docstring), (
        f"{path}: module docstring must state which part of the paper "
        "(Section/Theorem/Lemma) its formulation implements"
    )
