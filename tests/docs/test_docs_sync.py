"""Docs-sync: the generated reference and the guides cannot drift from the code.

``docs/reference.md`` is built by ``scripts/gen_reference.py`` from the live
registries; this suite regenerates it in memory and compares byte-for-byte,
so any registry change that forgets to re-run the generator fails CI.  The
architecture guide is checked structurally (it must keep naming every layer
and the load-bearing modules it documents).
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]


def _load_generator():
    """Import scripts/gen_reference.py by path (scripts/ is not a package)."""
    spec = importlib.util.spec_from_file_location(
        "gen_reference", ROOT / "scripts" / "gen_reference.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestGeneratedReference:
    def test_reference_matches_generator_output(self):
        """docs/reference.md is byte-identical to a fresh regeneration."""
        generator = _load_generator()
        committed = (ROOT / "docs" / "reference.md").read_text(encoding="utf8")
        assert committed == generator.render_reference(), (
            "docs/reference.md drifted from the registries; "
            "run `python scripts/gen_reference.py`"
        )

    def test_reference_covers_every_registry(self):
        """Every workload, algorithm and CLI subcommand appears in the reference."""
        from repro.algorithms.registry import available_algorithms
        from repro.cli import build_parser
        from repro.workloads.spec import LAYOUT_BUILDERS, WORKLOAD_REGISTRY

        reference = (ROOT / "docs" / "reference.md").read_text(encoding="utf8")
        for name in WORKLOAD_REGISTRY:
            assert f"`{name}`" in reference
        for name in available_algorithms():
            assert f"`{name}`" in reference
        for name in LAYOUT_BUILDERS:
            assert f"`{name}`" in reference
        parser = build_parser()
        subcommands = []
        for action in parser._actions:
            choices = getattr(action, "choices", None)
            if isinstance(choices, dict):
                subcommands.extend(choices)
        assert subcommands, "no subcommands discovered from the CLI parser"
        for command in subcommands:
            assert f"`repro {command}`" in reference

    def test_check_mode_passes_on_committed_file(self):
        """`gen_reference.py --check` agrees with the committed document."""
        generator = _load_generator()
        assert generator.main(["--check"]) == 0


class TestArchitectureGuide:
    def test_names_every_layer_and_key_module(self):
        """The guide keeps covering each package and the pipeline modules."""
        guide = (ROOT / "docs" / "architecture.md").read_text(encoding="utf8")
        for layer in (
            "disksim/", "algorithms/", "workloads/", "paging/", "lp/",
            "core/", "analysis/", "viz/", "cli.py",
        ):
            assert layer in guide, f"architecture guide misses layer {layer}"
        for module in (
            "OptimumService", "ExperimentSpec", "RunRecord", "ResultSet",
            "ExecutionBackend", "RunStore", "canonical.py", "service.py",
            "runner.py", "backends.py", "store.py", "reference.md",
        ):
            assert module in guide, f"architecture guide misses {module}"

    def test_readme_documents_the_resume_flow(self):
        """README keeps the run-store / resume walkthrough."""
        readme = (ROOT / "README.md").read_text(encoding="utf8")
        assert "--resume" in readme
        assert "runs.sqlite" in readme
        for subcommand in ("repro store stats", "repro store gc", "repro store import"):
            assert subcommand in readme, f"README misses {subcommand}"

    def test_readme_documents_the_ratio_flow(self):
        """README keeps the quickstart pipeline and the bench mapping."""
        readme = (ROOT / "README.md").read_text(encoding="utf8")
        assert "repro ratios" in readme
        assert "optimum_solve_seconds" in readme or "solve wall time" in readme
        for bench in [f"bench_e{i}" for i in range(13)]:
            assert bench in readme, f"README experiment mapping misses {bench}"
