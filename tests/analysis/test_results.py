"""Tests for the unified run-record result model and its round-trips."""

from __future__ import annotations

import json

import pytest

from repro.algorithms import Aggressive, make_algorithm
from repro.analysis.ratios import AlgorithmMeasurement, RatioReport, measure_ratios
from repro.analysis.results import RUN_RECORD_COLUMNS, ResultSet, RunRecord, safe_ratio
from repro.disksim import ProblemInstance, simulate
from repro.workloads import single_disk_example, uniform_random


def _record(**overrides) -> RunRecord:
    instance = ProblemInstance.single_disk(
        uniform_random(30, 10, seed=2), cache_size=5, fetch_time=3
    )
    result = simulate(instance, make_algorithm("delay:d=2"))
    defaults = dict(
        point="unit-test",
        algorithm_spec="delay:d=2",
        workload="uniform:n=30,blocks=10,seed=2",
        engine="indexed",
    )
    defaults.update(overrides)
    return RunRecord.from_simulation(result, **defaults)


class TestRunRecord:
    def test_identity_read_off_the_instance(self):
        record = _record()
        assert record.cache_size == 5 and record.fetch_time == 3 and record.disks == 1
        assert record.algorithm == "delay(2)"
        assert record.algorithm_spec == "delay:d=2"

    def test_ratios_require_an_optimum(self):
        record = _record()
        assert record.elapsed_ratio is None and record.stall_ratio is None
        with_opt = _record(optimal_elapsed=30, optimal_stall=0)
        assert with_opt.elapsed_ratio == pytest.approx(
            with_opt.metrics.elapsed_time / 30
        )

    def test_as_row_covers_the_canonical_columns(self):
        row = _record().as_row()
        assert tuple(row) == RUN_RECORD_COLUMNS

    def test_json_round_trip_is_equality(self):
        record = _record(optimal_elapsed=31, optimal_stall=1)
        payload = json.loads(json.dumps(record.to_json_dict()))
        assert RunRecord.from_json_dict(payload) == record

    def test_with_identity_relabels_only_identity(self):
        record = _record()
        relabeled = record.with_identity(
            point="other", workload=None, algorithm_spec="delay:3", layout=None
        )
        assert relabeled.point == "other"
        assert relabeled.metrics == record.metrics
        assert relabeled != record

    def test_matches_algorithm_by_name_and_spec(self):
        record = _record()
        assert record.matches_algorithm("delay(2)")
        assert record.matches_algorithm("delay:d=2")
        assert not record.matches_algorithm("aggressive")


class TestResultSet:
    def test_round_trip_is_equality(self):
        results = ResultSet(
            name="rt", records=(_record(), _record(point="p2")), workers=2,
            cached_points=1,
        )
        payload = json.loads(json.dumps(results.to_json_dict()))
        assert ResultSet.from_json_dict(payload) == results

    def test_column_selection(self):
        results = ResultSet(name="cols", records=(_record(),))
        rows = results.as_rows(columns=["point", "stall_time"])
        assert rows == [
            {"point": "unit-test", "stall_time": results.records[0].metrics.stall_time}
        ]
        document = json.loads(results.to_json(columns=["point", "elapsed_time"]))
        assert set(document["results"][0]) == {"point", "elapsed_time"}

    def test_csv_uses_canonical_columns(self, tmp_path):
        results = ResultSet(name="csv", records=(_record(),))
        path = tmp_path / "out.csv"
        results.write_csv(path)
        header = path.read_text().splitlines()[0]
        assert header == ",".join(RUN_RECORD_COLUMNS)

    def test_filtered_views_keep_simulated_points_nonnegative(self):
        """Filters keep the run-level cache count; the derived count clamps."""
        full = ResultSet(
            name="warm", records=(_record(), _record(point="p2")), cached_points=2,
        )
        assert full.simulated_points == 0
        filtered = full.for_algorithm("delay(2)")
        assert len(filtered.records) == 2
        assert full.for_algorithm("nothing").simulated_points == 0

    def test_safe_ratio_conventions(self):
        assert safe_ratio(0, 0) == 1.0
        assert safe_ratio(3, 0) == float("inf")
        assert safe_ratio(3, 2) == 1.5

    def test_infinite_ratio_emits_strict_json(self):
        """A zero-stall optimum must not leak the non-standard Infinity token."""
        record = _record(optimal_elapsed=30, optimal_stall=0)
        assert record.stall_ratio == float("inf")
        results = ResultSet(name="inf", records=(record,))
        document = results.to_json()
        assert "Infinity" not in document
        assert json.loads(document)["results"][0]["stall_ratio"] == "inf"


class TestAnalysisDataclassRoundTrips:
    """Satellite: equality/round-trip coverage for the analysis dataclasses."""

    def test_measurements_are_typed(self):
        report = measure_ratios(single_disk_example(), [Aggressive()])
        assert all(isinstance(m, AlgorithmMeasurement) for m in report.measurements)

    def test_algorithm_measurement_round_trip(self):
        measurement = AlgorithmMeasurement(
            algorithm="aggressive", stall_time=3, elapsed_time=13, num_fetches=2,
            elapsed_ratio=13 / 11, stall_ratio=3.0,
        )
        assert AlgorithmMeasurement.from_dict(measurement.as_dict()) == measurement

    def test_ratio_report_round_trip_with_bounds_and_records(self):
        report = measure_ratios(
            single_disk_example(), [Aggressive()], point="paper"
        )
        payload = json.loads(json.dumps(report.to_json_dict()))
        rebuilt = RatioReport.from_json_dict(payload)
        assert rebuilt == report
        assert rebuilt.bounds == report.bounds
        assert rebuilt.records[0].optimal_elapsed == 11

    def test_ratio_report_exports_result_set(self):
        report = measure_ratios(single_disk_example(), [Aggressive()], point="paper")
        results = report.to_result_set()
        assert results.points() == ["paper"]
        assert results.ratios_for("aggressive")["paper"] == pytest.approx(13 / 11)

    def test_report_measurements_derive_from_records(self):
        report = measure_ratios(single_disk_example(), [Aggressive()])
        record = report.records[0]
        measurement = report.measurement("aggressive")
        assert measurement.stall_time == record.metrics.stall_time
        assert measurement.elapsed_ratio == pytest.approx(record.elapsed_ratio)
