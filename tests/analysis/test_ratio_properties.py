"""Property tests for the optimum-ratio pipeline.

Two contracts from the issue's acceptance criteria:

* cached vs freshly solved optima are identical across serial and parallel
  runner execution (byte-identical JSON once the wall-time column is set
  aside, fully byte-identical through the cache), and a warmed grid re-runs
  with **zero** LP solves;
* ``ratio >= 1.0`` holds for every registered algorithm spec against the
  exact single-disk optimum on 100+ random instances — the optimum is a
  true minimum over all ``k``-slot schedules, so any measured violation is
  a bug in the LP, the extraction or the simulator.
"""

from __future__ import annotations

import random

import pytest

import repro.lp.service as service_module
from repro.algorithms import make_algorithm
from repro.algorithms.registry import available_algorithms
from repro.analysis.results import RUN_RECORD_COLUMNS
from repro.analysis.runner import ExperimentSpec, run_experiments
from repro.analysis.store import RunStore, store_path_for
from repro.disksim import ProblemInstance, simulate
from repro.lp import OptimumService
from repro.workloads import uniform_random, zipf

_VALUE_COLUMNS = tuple(
    column for column in RUN_RECORD_COLUMNS if column != "optimum_solve_seconds"
)


def _ratio_spec(**overrides) -> ExperimentSpec:
    base = dict(
        name="ratio-props",
        workloads=("loop:blocks=8,loops=3", "zipf:n=30,blocks=8"),
        cache_sizes=(3,),
        fetch_times=(3,),
        algorithms=("aggressive", "conservative"),
        seeds=(0, 1),
        compute_optimum=True,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSerialParallelOptima:
    def test_serial_and_parallel_runs_solve_identical_optima(self, tmp_path):
        """Freshly solved optima agree byte-for-byte modulo wall time."""
        spec = _ratio_spec()
        serial = run_experiments(spec, workers=0, cache_dir=tmp_path / "serial")
        fanned = run_experiments(spec, workers=2, cache_dir=tmp_path / "fanned")
        assert serial.to_json(_VALUE_COLUMNS) == fanned.to_json(_VALUE_COLUMNS)
        for record in serial:
            assert record.optimal_elapsed is not None
            assert record.optimum_solve_seconds is not None

    def test_warmed_rerun_is_byte_identical_and_never_resolves(
        self, tmp_path, monkeypatch
    ):
        """Re-running a warmed grid is a pure cache hit: no LP solves at all."""
        spec = _ratio_spec()
        first = run_experiments(spec, workers=0, cache_dir=tmp_path)

        def boom(*_args, **_kwargs):  # pragma: no cover - must not run
            raise AssertionError("warmed ratio grid must not re-solve any LP")

        monkeypatch.setattr(service_module, "compute_optimum_record", boom)
        second = run_experiments(spec, workers=0, cache_dir=tmp_path)
        assert second.cached_points == len(second.records) == len(first.records)
        assert second.to_json() == first.to_json()

    def test_cached_simulations_are_upgraded_with_optima(self, tmp_path):
        """A plain sweep's cache entries gain optima when ratios are requested."""
        plain = _ratio_spec(compute_optimum=False)
        run_experiments(plain, cache_dir=tmp_path)
        upgraded = run_experiments(_ratio_spec(), cache_dir=tmp_path)
        assert upgraded.cached_points == len(upgraded.records)
        assert all(r.optimal_elapsed is not None for r in upgraded)
        # The upgrade is persisted: the next run needs neither sims nor solves.
        again = run_experiments(_ratio_spec(), cache_dir=tmp_path)
        assert again.to_json() == upgraded.to_json()

    def test_changed_solver_config_reattaches_the_optimum(self, tmp_path):
        """Cached optima are trusted only under the config that produced them."""
        from repro.lp import SolverConfig

        spec = _ratio_spec(workloads=("loop:blocks=8,loops=3",), seeds=(None,))
        first = run_experiments(spec, cache_dir=tmp_path)
        other = SolverConfig(reduced_single_disk=False)
        second = run_experiments(spec, cache_dir=tmp_path, optimum_config=other)
        # Same certified values (the reduced model is exact), but the
        # records now carry the new configuration's provenance and the
        # optimum cache holds one entry per configuration.
        assert [r.optimal_elapsed for r in second] == [r.optimal_elapsed for r in first]
        assert {r.optimum_solver_key for r in first} == {SolverConfig().key()}
        assert {r.optimum_solver_key for r in second} == {other.key()}
        with RunStore(store_path_for(tmp_path)) as store:
            assert store.count_optima() == 2

    def test_one_solve_shared_by_all_algorithms_of_an_instance(self, tmp_path):
        """Optimum solves are deduplicated per instance, not per point."""
        spec = _ratio_spec(
            workloads=("loop:blocks=8,loops=3",),
            algorithms=("aggressive", "conservative", "demand", "delay:d=2"),
            seeds=(None,),
        )
        run = run_experiments(spec, cache_dir=tmp_path)
        assert run.optimum_requests == 1
        with RunStore(store_path_for(tmp_path)) as store:
            assert store.count_optima() == 1
        solve_times = {r.optimum_solve_seconds for r in run}
        assert len(solve_times) == 1  # all four records carry the one solve


class TestRatioAtLeastOne:
    def test_every_algorithm_on_100_plus_random_instances(self):
        """elapsed/stall ratios >= 1 against the exact optimum, all specs."""
        rng = random.Random(20260731)
        service = OptimumService()
        # Every registered algorithm, made constructible: `delay` requires
        # its d parameter, everything else builds from its bare name.
        algorithms = [
            "delay:d=2" if name == "delay" else name
            for name in available_algorithms()
        ]
        assert len(algorithms) >= 7
        instances = []
        for index in range(108):
            n = rng.randint(8, 14)
            blocks = rng.randint(4, 6)
            generator = zipf if index % 2 else uniform_random
            sequence = generator(n, blocks, seed=index, prefix=f"rp{index}_")
            warm = sorted(sequence.distinct_blocks, key=str)[: rng.randint(0, 2)]
            instances.append(
                ProblemInstance.single_disk(
                    sequence,
                    cache_size=rng.randint(2, 4),
                    fetch_time=rng.randint(2, 4),
                    initial_cache=warm,
                )
            )
        assert len(instances) >= 100
        checked = 0
        for instance in instances:
            optimum = service.optimum(instance)
            for spec in algorithms:
                result = simulate(instance, make_algorithm(spec))
                assert result.elapsed_time >= optimum.elapsed_time, (
                    f"{spec} beat the certified optimum on {instance.describe()}"
                )
                assert result.stall_time >= optimum.stall_time, (
                    f"{spec} stalled less than the optimum on {instance.describe()}"
                )
                checked += 1
        assert checked == len(instances) * len(algorithms)
        # One LP per instance, shared by every algorithm.
        assert service.solves == len(instances)

    @pytest.mark.parametrize("workers", [0, 2])
    def test_runner_records_respect_the_bound(self, tmp_path, workers):
        """The pipeline's own ratio fields are >= 1 wherever defined."""
        run = run_experiments(
            _ratio_spec(), workers=workers, cache_dir=tmp_path / str(workers)
        )
        for record in run:
            assert record.elapsed_ratio is not None
            assert record.elapsed_ratio >= 1.0 - 1e-9
            assert record.stall_ratio >= 1.0 - 1e-9
