"""Tests for the SQLite run store: persistence, manifest, migration, concurrency."""

from __future__ import annotations

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.analysis.runner as runner_module
import repro.lp.service as service_module
from repro.analysis.runner import (
    ExperimentSpec,
    point_cache_key,
    prepare_sweep,
    run_experiments,
    sweep_key_for,
)
from repro.analysis.results import RunRecord
from repro.analysis.store import RunStore, store_path_for
from repro.disksim.metrics import SimMetrics
from repro.lp.service import OptimumRecord, OptimumService


def _spec(**overrides) -> ExperimentSpec:
    base = dict(
        name="store-t",
        workloads=("zipf:n=40,blocks=10",),
        cache_sizes=(4, 6),
        fetch_times=(3,),
        algorithms=("aggressive", "demand"),
        seeds=(0, 1),
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def _record(**overrides) -> RunRecord:
    defaults = dict(
        point="p",
        algorithm="aggressive",
        algorithm_spec="aggressive",
        metrics=SimMetrics(num_requests=10, stall_time=4, num_fetches=3),
        workload="zipf:n=10,blocks=4",
        cache_size=4,
        fetch_time=3,
        disks=1,
        layout=None,
        engine="loop",
    )
    defaults.update(overrides)
    return RunRecord(**defaults)


#: Hypothesis strategy over structurally valid run records (identity fields,
#: metrics, optional optimum) for the migration property test.
_records = st.builds(
    _record,
    point=st.text(min_size=1, max_size=20),
    workload=st.one_of(st.none(), st.text(min_size=1, max_size=30)),
    algorithm_spec=st.sampled_from(["aggressive", "delay:d=2", "demand:evict=lru"]),
    layout=st.one_of(st.none(), st.sampled_from(["striped", "partitioned"])),
    cache_size=st.integers(min_value=1, max_value=64),
    fetch_time=st.integers(min_value=1, max_value=16),
    disks=st.integers(min_value=1, max_value=4),
    metrics=st.builds(
        SimMetrics,
        num_requests=st.integers(min_value=1, max_value=500),
        stall_time=st.integers(min_value=0, max_value=500),
        num_fetches=st.integers(min_value=0, max_value=200),
        cache_hits=st.integers(min_value=0, max_value=200),
        cache_misses=st.integers(min_value=0, max_value=200),
    ),
    optimal_stall=st.one_of(st.none(), st.integers(min_value=0, max_value=400)),
    optimal_elapsed=st.one_of(st.none(), st.integers(min_value=1, max_value=900)),
    optimum_solver_key=st.one_of(st.none(), st.just("method=auto;x=1")),
)


class TestRunPersistence:
    def test_round_trip_is_equality(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            record = _record()
            store.put_run("k1", record)
            assert store.get_run("k1") == record
            assert store.get_run("missing") is None
            assert store.count_runs() == 1

    def test_upsert_replaces(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            store.put_run("k", _record())
            upgraded = _record(optimal_stall=1, optimal_elapsed=12)
            store.put_run("k", upgraded)
            assert store.count_runs() == 1
            assert store.get_run("k") == upgraded

    def test_non_database_file_raises_a_clean_store_error(self, tmp_path):
        from repro.errors import ReproError, StoreError

        bogus = tmp_path / "not-a-db.sqlite"
        bogus.write_text('{"this": "is json, not sqlite"}' * 100)
        with pytest.raises(StoreError, match="cannot open run store"):
            RunStore(bogus)
        assert issubclass(StoreError, ReproError)  # the CLI exits 2, no traceback

    def test_corrupt_row_is_a_miss(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            store.put_run("k", _record())
            with store._conn:
                store._conn.execute("UPDATE runs SET record = '{not json'")
            assert store.get_run("k") is None

    def test_indexed_queries_by_identity_columns(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            store.put_runs(
                [
                    ("a", _record(workload="w1", algorithm_spec="aggressive")),
                    ("b", _record(workload="w1", algorithm_spec="delay:d=2",
                                  algorithm="delay(2)")),
                    ("c", _record(workload="w2", algorithm_spec="aggressive",
                                  layout="partitioned", disks=2)),
                ]
            )
            assert len(store.query_runs(workload="w1")) == 2
            assert len(store.query_runs(algorithm="aggressive")) == 2
            # Resolved name and spec string both address the record.
            assert len(store.query_runs(algorithm="delay(2)")) == 1
            assert len(store.query_runs(algorithm="delay:d=2")) == 1
            assert len(store.query_runs(layout="partitioned")) == 1
            assert len(store.query_runs(workload="w1", algorithm="delay:d=2")) == 1
            assert len(store.query_runs()) == 3

    def test_optimum_round_trip(self, tmp_path):
        record = OptimumRecord(
            fingerprint="f1", stall_time=3, elapsed_time=13, lp_lower_bound=12.5,
            method_used="single-disk-exact", solve_seconds=0.01, solver_key="k",
        )
        with RunStore(tmp_path / "s.sqlite") as store:
            store.put_optimum(record)
            assert store.get_optimum("f1") == record
            assert store.get_optimum("f2") is None
            assert store.count_optima() == 1


class TestMigration:
    @settings(max_examples=25, deadline=None)
    @given(records=st.lists(_records, min_size=1, max_size=6))
    def test_json_cache_import_preserves_records_byte_for_byte(
        self, tmp_path_factory, records
    ):
        """Property: legacy JSON cache -> SQLite keeps every record intact.

        The legacy cache wrote ``json.dumps(record.to_json_dict(),
        sort_keys=True)`` per point; after import, re-serializing the stored
        record must reproduce those bytes exactly.
        """
        directory = tmp_path_factory.mktemp("legacy")
        expected = {}
        for index, record in enumerate(records):
            key = f"key{index}"
            payload = json.dumps(record.to_json_dict(), sort_keys=True)
            (directory / f"{key}.json").write_text(payload)
            expected[key] = payload
        with RunStore(directory / "runs.sqlite") as store:
            report = store.import_json_cache(directory)
            assert report.runs == len(records) and report.skipped == 0
            for key, payload in expected.items():
                stored = store.get_run(key)
                assert json.dumps(stored.to_json_dict(), sort_keys=True) == payload

    def test_import_covers_optima_and_skips_garbage(self, tmp_path):
        (tmp_path / "good.json").write_text(
            json.dumps(_record().to_json_dict(), sort_keys=True)
        )
        (tmp_path / "bad.json").write_text("{torn")
        optima = tmp_path / "optima"
        optima.mkdir()
        optimum = OptimumRecord(
            fingerprint="fp", stall_time=0, elapsed_time=10, lp_lower_bound=10.0,
            method_used="single-disk-exact", solve_seconds=0.2, solver_key="sk",
        )
        (optima / "fp.json").write_text(json.dumps(optimum.as_json_dict(), sort_keys=True))
        (optima / "torn.json").write_text("")
        with RunStore(tmp_path / "runs.sqlite") as store:
            report = store.import_json_cache(tmp_path)
            assert (report.runs, report.optima, report.skipped) == (1, 1, 2)
            assert store.get_optimum("fp") == optimum
            assert "imported 1 run record" in report.describe()

    def test_imported_cache_feeds_a_sweep_without_resimulation(self, tmp_path):
        """End-to-end migration: a legacy-format cache warms a new-style run."""
        spec = _spec(cache_sizes=(4,), seeds=(0,), algorithms=("aggressive",))
        legacy = tmp_path / "legacy"
        legacy.mkdir()
        baseline = run_experiments(spec)
        for point, record in zip(spec.points(), baseline.records):
            (legacy / f"{point_cache_key(point)}.json").write_text(
                json.dumps(record.to_json_dict(), sort_keys=True)
            )
        cache_dir = tmp_path / "cache"
        with RunStore(store_path_for(cache_dir)) as store:
            store.import_json_cache(legacy)
        rerun = run_experiments(spec, cache_dir=cache_dir)
        assert rerun.cached_points == len(rerun.records)
        assert rerun.to_json() == baseline.to_json()


class TestEngineColumn:
    def test_legacy_indexed_rows_migrate_to_loop_on_reopen(self, tmp_path):
        """Rows stored under the legacy ``'indexed'`` label backfill to ``'loop'``.

        Both the indexed column and the JSON body are rewritten, and the
        stored bytes stay canonical (sorted-key dump of the record).
        """
        path = tmp_path / "s.sqlite"
        with RunStore(path) as store:
            store.put_run("k", _record(engine="indexed"))
        with RunStore(path) as store:
            record = store.get_run("k")
            assert record.engine == "loop"
            engine, body = store._conn.execute(
                "SELECT engine, record FROM runs WHERE key = 'k'"
            ).fetchone()
            assert engine == "loop"
            assert json.loads(body)["engine"] == "loop"
            assert json.dumps(record.to_json_dict(), sort_keys=True) == body
            # Idempotent: a third open finds nothing left to migrate.
        with RunStore(path) as store:
            assert store.get_run("k").engine == "loop"

    def test_migration_leaves_corrupt_bodies_alone(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with RunStore(path) as store:
            store.put_run("k", _record(engine="indexed"))
            with store._conn:
                store._conn.execute("UPDATE runs SET record = '{torn'")
        with RunStore(path) as store:
            engine, body = store._conn.execute(
                "SELECT engine, record FROM runs WHERE key = 'k'"
            ).fetchone()
            assert engine == "loop" and body == "{torn"
            assert store.get_run("k") is None  # still a cache miss

    def test_query_runs_engine_filter_and_alias(self, tmp_path):
        from repro.errors import ConfigurationError

        with RunStore(tmp_path / "s.sqlite") as store:
            store.put_runs(
                [
                    ("a", _record(engine="loop")),
                    ("b", _record(engine="vector")),
                    ("c", _record(engine="vector")),
                ]
            )
            assert len(store.query_runs(engine="loop")) == 1
            assert len(store.query_runs(engine="vector")) == 2
            # The legacy alias addresses the canonical rows.
            assert len(store.query_runs(engine="indexed")) == 1
            with pytest.raises(ConfigurationError, match="unknown engine"):
                store.query_runs(engine="warp")

    def test_stats_reports_per_engine_counts(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with RunStore(path) as store:
            store.put_runs(
                [
                    ("a", _record(engine="loop")),
                    ("b", _record(engine="vector")),
                    ("c", _record(engine="vector")),
                    ("d", _record(engine="indexed")),
                ]
            )
            stats = store.stats()
            assert stats["runs_engine_loop"] == 1
            assert stats["runs_engine_vector"] == 2
            assert stats["runs_engine_indexed"] == 1  # written post-open
        with RunStore(path) as store:  # ... and folded in at the next open
            stats = store.stats()
            assert stats["runs_engine_loop"] == 2
            assert stats["runs_engine_vector"] == 2
            assert "runs_engine_indexed" not in stats


class TestSweepManifest:
    def test_begin_reconcile_progress(self, tmp_path):
        spec = _spec()
        cache_dir = tmp_path / "c"
        with RunStore(store_path_for(cache_dir)) as store:
            progress = prepare_sweep(spec, store)
            assert progress.total == 8 and progress.done == 0
            assert len(progress.remaining_labels) == 8
            assert not progress.complete
        run_experiments(spec, cache_dir=cache_dir)
        with RunStore(store_path_for(cache_dir)) as store:
            progress = prepare_sweep(spec, store)
            assert progress.complete and progress.remaining == 0

    def test_partial_overlap_counts_shared_points_as_done(self, tmp_path):
        cache_dir = tmp_path / "c"
        run_experiments(_spec(algorithms=("aggressive",)), cache_dir=cache_dir)
        wider = _spec(algorithms=("aggressive", "demand"))
        with RunStore(store_path_for(cache_dir)) as store:
            progress = prepare_sweep(wider, store)
            # The aggressive half is already stored; only demand remains.
            assert progress.total == 8 and progress.done == 4
            assert all("demand" in label for label in progress.remaining_labels)

    def test_reregistering_keeps_done_status(self, tmp_path):
        spec = _spec(cache_sizes=(4,), seeds=(0,))
        key = sweep_key_for(spec)
        with RunStore(tmp_path / "s.sqlite") as store:
            labeled = [(point_cache_key(p), p.describe()) for p in spec.points()]
            store.begin_sweep(key, spec.name, labeled)
            store.mark_points_done(key, [0])
            store.begin_sweep(key, spec.name, labeled)
            assert store.sweep_progress(key).done == 1

    def test_optimum_sweeps_require_matching_solver_key(self, tmp_path):
        cache_dir = tmp_path / "c"
        plain = _spec(cache_sizes=(4,), seeds=(0,))
        run_experiments(plain, cache_dir=cache_dir)
        ratio = _spec(cache_sizes=(4,), seeds=(0,), compute_optimum=True)
        with RunStore(store_path_for(cache_dir)) as store:
            # Records exist but carry no optimum under this solver config:
            # the ratio sweep still has work to do at every point.
            assert prepare_sweep(ratio, store).done == 0
        run_experiments(ratio, cache_dir=cache_dir)
        with RunStore(store_path_for(cache_dir)) as store:
            assert prepare_sweep(ratio, store).complete

    def test_stats_and_gc(self, tmp_path):
        cache_dir = tmp_path / "c"
        spec = _spec(cache_sizes=(4,), seeds=(0,))
        run_experiments(spec, cache_dir=cache_dir)
        with RunStore(store_path_for(cache_dir)) as store:
            stats = store.stats()
            assert stats["runs"] == 2 and stats["sweeps"] == 1
            assert stats["sweep_points_done"] == 2
            outcome = store.gc()
            assert outcome["sweeps_removed"] == 1
            assert store.stats()["sweeps"] == 0
            # The records themselves are the cache; gc never drops them.
            assert store.count_runs() == 2


class TestResume:
    def test_warmed_resume_performs_zero_sims_and_zero_solves(
        self, tmp_path, monkeypatch
    ):
        """Acceptance: a warmed ``--resume`` run touches no simulator, no LP."""
        spec = _spec(compute_optimum=True, cache_sizes=(3,),
                     workloads=("loop:blocks=8,loops=3",), seeds=(None,))
        first = run_experiments(spec, cache_dir=tmp_path)
        assert first.simulated_points == len(first.records)

        def boom(*_args, **_kwargs):  # pragma: no cover - must not run
            raise AssertionError("warmed resume must re-run nothing")

        monkeypatch.setattr(runner_module, "_evaluate_point", boom)
        monkeypatch.setattr(service_module, "compute_optimum_record", boom)
        with RunStore(store_path_for(tmp_path)) as store:
            assert prepare_sweep(spec, store).complete
        second = run_experiments(spec, cache_dir=tmp_path)
        assert second.simulated_points == 0
        assert second.optimum_requests == 0
        assert second.cached_points == len(second.records)
        assert second.to_json() == first.to_json()

    def test_killed_sweep_resumes_from_stored_records(self, tmp_path, monkeypatch):
        """Records persisted before a crash count as progress on resume."""
        spec = _spec()
        full = run_experiments(spec)  # reference, no store

        # Simulate a sweep killed halfway: only the first half of the grid
        # got evaluated and persisted before the manifest could be marked.
        points = spec.points()
        half = len(points) // 2
        with RunStore(store_path_for(tmp_path)) as store:
            sweep_key = sweep_key_for(spec)
            store.begin_sweep(
                sweep_key, spec.name,
                [(point_cache_key(p), p.describe()) for p in points],
            )
            for point, record in list(zip(points, full.records))[:half]:
                store.put_run(point_cache_key(point), record)
            progress = prepare_sweep(spec, store)
            assert progress.done == half and progress.remaining == half

        evaluated = []
        original = runner_module._evaluate_point

        def counting(point):
            evaluated.append(point.describe())
            return original(point)

        monkeypatch.setattr(runner_module, "_evaluate_point", counting)
        resumed = run_experiments(spec, cache_dir=tmp_path)
        assert len(evaluated) == half  # only the missing half re-simulated
        assert resumed.cached_points == half
        assert resumed.to_json() == full.to_json()


class TestConcurrentWriters:
    def test_two_process_pool_sweeps_share_one_store(self, tmp_path):
        """Stress: two pool-backed sweeps race on one store without damage."""
        overlapping = _spec(name="racer-a")
        disjointish = _spec(name="racer-b", cache_sizes=(4, 6, 8))
        reference_a = run_experiments(overlapping)
        reference_b = run_experiments(disjointish)

        results, errors = {}, []

        def drive(tag, spec):
            try:
                results[tag] = run_experiments(
                    spec, workers=2, backend="process", cache_dir=tmp_path
                )
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append((tag, exc))

        threads = [
            threading.Thread(target=drive, args=("a", overlapping)),
            threading.Thread(target=drive, args=("b", disjointish)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert results["a"].to_json() == reference_a.to_json()
        assert results["b"].to_json() == reference_b.to_json()
        with RunStore(store_path_for(tmp_path)) as store:
            # The two grids overlap on 8 of 12 point keys; the store holds
            # the union exactly once per key.
            assert store.count_runs() == 12
            assert store.stats()["sweeps"] == 2
        # And the warmed store serves both grids without re-simulation.
        rerun = run_experiments(disjointish, cache_dir=tmp_path)
        assert rerun.simulated_points == 0


class TestStoreBackedOptimumService:
    def test_store_layer_is_shared_across_service_objects(self, tmp_path):
        from repro.workloads import uniform_random
        from repro.disksim import ProblemInstance

        instance = ProblemInstance.single_disk(
            uniform_random(16, 6, seed=3, prefix="sb_"), cache_size=3, fetch_time=3
        )
        with RunStore(tmp_path / "s.sqlite") as store:
            writer = OptimumService(store=store)
            record = writer.optimum(instance)
            assert writer.solves == 1
            reader = OptimumService(store=store)
            assert reader.optimum(instance) == record
            assert reader.solves == 0
            assert store.count_optima() == 1
