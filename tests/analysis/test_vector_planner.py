"""Tests for the shape-bucketing planner and the runner's vector path."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.disksim.vector as vector_module
from repro.analysis.runner import (
    MAX_VECTOR_BATCH,
    MIN_VECTOR_BATCH,
    ExperimentSpec,
    _plan_execution_units,
    point_cache_key,
    run_experiments,
)
from repro.disksim import numpy_available
from repro.errors import ConfigurationError

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy unavailable: vector engine cannot run"
)


def _spec(**overrides) -> ExperimentSpec:
    base = dict(
        name="planner-t",
        workloads=("zipf:n=30,blocks=8",),
        cache_sizes=(4,),
        fetch_times=(3,),
        algorithms=("aggressive",),
        seeds=tuple(range(10)),
        engine="vector",
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def _pending(spec):
    points = spec.points()
    return [(position, point, point_cache_key(point)) for position, point in enumerate(points)]


def _no_numpy(monkeypatch):
    """Make the lazy numpy probe report 'not installed'."""
    monkeypatch.setattr(vector_module, "_np", None)
    monkeypatch.setattr(vector_module, "_np_checked", True)


# -- partition properties ----------------------------------------------------------


@needs_numpy
@settings(max_examples=30, deadline=None)
@given(
    workloads=st.lists(
        st.sampled_from(
            ["zipf:n=30,blocks=8", "zipf:n=24,blocks=6", "uniform:n=30,blocks=8"]
        ),
        min_size=1,
        max_size=3,
        unique=True,
    ),
    cache_sizes=st.lists(st.integers(min_value=2, max_value=8), min_size=1, max_size=2, unique=True),
    algorithms=st.lists(
        st.sampled_from(["aggressive", "delay:d=2", "combination", "conservative", "demand"]),
        min_size=1,
        max_size=3,
        unique=True,
    ),
    num_seeds=st.integers(min_value=1, max_value=12),
    engine=st.sampled_from(["vector", "auto", "loop"]),
)
def test_every_pending_point_lands_in_exactly_one_unit(
    workloads, cache_sizes, algorithms, num_seeds, engine
):
    """Property: the planner partitions the grid — no point dropped, none duplicated."""
    spec = _spec(
        workloads=tuple(workloads),
        cache_sizes=tuple(cache_sizes),
        algorithms=tuple(algorithms),
        seeds=tuple(range(num_seeds)),
        engine=engine,
    )
    pending = _pending(spec)
    units = _plan_execution_units(pending)
    flattened = [item for _kind, items in units for item in items]
    assert sorted(position for position, _p, _k in flattened) == list(range(len(pending)))
    assert {id(item) for item in flattened} == {id(item) for item in pending}
    for kind, items in units:
        if kind == "sim":
            assert len(items) == 1
        else:
            assert MIN_VECTOR_BATCH <= len(items) <= MAX_VECTOR_BATCH
            # A stacked unit holds one shape bucket, in grid order.
            assert [p for p, _point, _k in items] == sorted(p for p, _point, _k in items)
    if engine == "loop":
        assert all(kind == "sim" for kind, _items in units)


@needs_numpy
def test_small_buckets_demote_to_per_point_tasks():
    spec = _spec(seeds=tuple(range(MIN_VECTOR_BATCH - 1)))
    units = _plan_execution_units(_pending(spec))
    assert all(kind == "sim" for kind, _items in units)
    spec = _spec(seeds=tuple(range(MIN_VECTOR_BATCH)))
    units = _plan_execution_units(_pending(spec))
    assert [kind for kind, _items in units] == ["simbatch"]


@needs_numpy
def test_oversized_buckets_chunk_at_the_batch_ceiling():
    spec = _spec(seeds=tuple(range(MAX_VECTOR_BATCH + 5)))
    units = _plan_execution_units(_pending(spec))
    assert [kind for kind, _items in units] == ["simbatch", "simbatch"]
    assert [len(items) for _kind, items in units] == [MAX_VECTOR_BATCH, 5]


@needs_numpy
def test_ineligible_points_run_per_point():
    """Uncovered families and parallel-disk points never enter a bucket."""
    spec = _spec(algorithms=("aggressive", "conservative"), seeds=tuple(range(8)))
    units = _plan_execution_units(_pending(spec))
    kinds = {}
    for kind, items in units:
        for _position, point, _key in items:
            kinds.setdefault(point.algorithm, set()).add(kind)
    assert kinds["aggressive"] == {"simbatch"}
    assert kinds["conservative"] == {"sim"}


# -- runner equivalence ------------------------------------------------------------


def _normalized(result_set):
    """Record dumps with the engine provenance normalized away."""
    out = []
    for record in result_set.records:
        payload = record.to_json_dict()
        payload["engine"] = "<engine>"
        out.append(json.dumps(payload, sort_keys=True))
    return out


@needs_numpy
def test_run_experiments_vector_matches_loop_modulo_engine():
    """Batched grid output == serial loop grid output, in the same order."""
    grid = dict(
        workloads=("zipf:n=40,blocks=10",),
        algorithms=("aggressive", "delay:d=3", "conservative"),
        seeds=tuple(range(9)),
    )
    loop = run_experiments(_spec(engine="loop", **grid))
    vector = run_experiments(_spec(engine="vector", **grid))
    assert _normalized(vector) == _normalized(loop)
    by_algorithm = {}
    for record in vector.records:
        by_algorithm.setdefault(record.algorithm_spec, set()).add(record.engine)
    assert by_algorithm["aggressive"] == {"vector"}
    assert by_algorithm["delay:d=3"] == {"vector"}
    assert by_algorithm["conservative"] == {"loop"}  # per-point fallback


# -- graceful degradation without numpy --------------------------------------------


def test_explicit_vector_without_numpy_fails_before_dispatch(monkeypatch):
    _no_numpy(monkeypatch)
    with pytest.raises(ConfigurationError, match=r"\[vector\]"):
        run_experiments(_spec(engine="vector"))


def test_auto_without_numpy_silently_runs_the_loop_engine(monkeypatch):
    _no_numpy(monkeypatch)
    results = run_experiments(_spec(engine="auto", seeds=tuple(range(4))))
    assert {record.engine for record in results.records} == {"loop"}


@needs_numpy
def test_auto_with_numpy_prefers_the_vector_engine():
    results = run_experiments(_spec(engine="auto", seeds=tuple(range(MIN_VECTOR_BATCH))))
    assert {record.engine for record in results.records} == {"vector"}
