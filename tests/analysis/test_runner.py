"""Tests for the batched experiment runner."""

from __future__ import annotations

import json

import pytest

from repro.analysis.runner import (
    ExperimentPoint,
    ExperimentSpec,
    evaluate_instances,
    instance_fingerprint,
    run_experiments,
)
from repro.disksim import ProblemInstance
from repro.errors import ConfigurationError, PointEvaluationError
from repro.workloads import single_disk_example, zipf


def _small_spec(**overrides):
    base = dict(
        name="t",
        workloads=("zipf:n=40,blocks=10",),
        cache_sizes=(4, 6),
        fetch_times=(3,),
        algorithms=("aggressive", "demand"),
        seeds=(0, 1),
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSpec:
    def test_grid_expansion_order_and_size(self):
        points = _small_spec().points()
        assert len(points) == 1 * 2 * 1 * 2 * 2  # workloads*seeds*F*k*algorithms
        assert points[0].workload == "zipf:n=40,blocks=10,seed=0"
        assert points[0].cache_size == 4 and points[0].algorithm == "aggressive"
        assert points[1].algorithm == "demand"

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            _small_spec(algorithms=())

    def test_point_without_workload_or_instance_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentPoint().build_instance()

    def test_layout_axis_swept_only_on_multi_disk_counts(self):
        spec = _small_spec(
            cache_sizes=(4,), seeds=(0,), algorithms=("aggressive",),
            disks=(1, 2), layouts=("striped", "partitioned"),
        )
        points = spec.points()
        # D=1 emits one point (placement irrelevant); D=2 emits one per layout.
        assert len(points) == 1 + 2
        assert [(p.disks, p.layout) for p in points] == [
            (1, "striped"), (2, "striped"), (2, "partitioned"),
        ]
        assert "layout=partitioned" in points[2].describe()
        assert "layout" not in points[0].describe()

    def test_layout_changes_the_instance(self):
        kwargs = dict(workload="scan:blocks=12", cache_size=4, fetch_time=3, disks=3)
        striped = ExperimentPoint(layout="striped", **kwargs).build_instance()
        partitioned = ExperimentPoint(layout="partitioned", **kwargs).build_instance()
        assert striped.num_disks == partitioned.num_disks == 3
        placements = lambda inst: {b: inst.disk_of(b) for b in inst.sequence.distinct_blocks}
        assert placements(striped) != placements(partitioned)

    def test_seed_axis_collapses_for_deterministic_workloads(self):
        spec = _small_spec(workloads=("scan:blocks=10",), cache_sizes=(4,),
                          algorithms=("aggressive",), seeds=(0, 1))
        points = spec.points()
        # scan has no seed parameter: no key is injected and no duplicate
        # points are emitted for the extra seeds.
        assert [p.workload for p in points] == ["scan:blocks=10"]

    def test_unknown_layout_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown layout"):
            _small_spec(layouts=("raid5",))

    def test_bad_algorithm_spec_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            _small_spec(algorithms=("nope",))

    def test_bad_nested_component_spec_rejected_at_construction(self):
        # combination's delay/alt values are specs themselves; a bad one must
        # fail here, not inside a worker once that branch gets selected.
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            _small_spec(algorithms=("combination:alt=bogus",))

    def test_instance_kind_workload_in_grid(self):
        spec = _small_spec(workloads=("thm2:phases=2",), cache_sizes=(13,),
                          fetch_times=(4,), algorithms=("aggressive",), seeds=(None,))
        rows = run_experiments(spec).as_rows()
        assert len(rows) == 1
        assert rows[0]["cache_size"] == 13 and rows[0]["fetch_time"] == 4


class TestRun:
    def test_serial_and_parallel_emit_identical_json(self):
        spec = _small_spec()
        serial = run_experiments(spec, workers=0)
        fanned = run_experiments(spec, workers=2)
        assert serial.to_json() == fanned.to_json()
        assert len(serial.records) == 8

    def test_rows_carry_metrics(self):
        run = run_experiments(_small_spec(cache_sizes=(4,), seeds=(0,)))
        row = run.as_rows()[0]
        assert row["algorithm"] == "aggressive"
        assert row["elapsed_time"] == row["num_requests"] + row["stall_time"]
        assert row["layout"] is None  # single disk: no placement

    def test_multi_disk_rows_record_layout(self):
        spec = _small_spec(
            cache_sizes=(4,), seeds=(0,), algorithms=("parallel-aggressive",),
            disks=(2,), layouts=("roundrobin",),
        )
        row = run_experiments(spec).as_rows()[0]
        assert row["layout"] == "roundrobin" and row["disks"] == 2

    def test_caching_round_trip(self, tmp_path):
        spec = _small_spec(cache_sizes=(4,), seeds=(0,))
        first = run_experiments(spec, cache_dir=tmp_path)
        assert first.cached_points == 0
        second = run_experiments(spec, cache_dir=tmp_path)
        assert second.cached_points == len(second.records) == 2
        assert second.to_json() == first.to_json()

    def test_caching_round_trip_with_layouts(self, tmp_path):
        spec = _small_spec(
            cache_sizes=(4,), seeds=(0,), algorithms=("parallel-aggressive",),
            disks=(2,), layouts=("striped", "partitioned"),
        )
        first = run_experiments(spec, cache_dir=tmp_path)
        second = run_experiments(spec, cache_dir=tmp_path)
        assert second.cached_points == len(second.records) == 2
        assert second.to_json() == first.to_json()

    def test_json_and_csv_files(self, tmp_path):
        run = run_experiments(_small_spec(cache_sizes=(4,), seeds=(0,)))
        json_path = tmp_path / "out.json"
        csv_path = tmp_path / "out.csv"
        run.write_json(json_path)
        run.write_csv(csv_path)
        document = json.loads(json_path.read_text())
        assert document["num_points"] == 2
        header = csv_path.read_text().splitlines()[0]
        assert "stall_time" in header and "algorithm" in header

    def test_cache_hit_keeps_current_labels(self, tmp_path):
        """Content-shared cache entries must not leak the writing run's labels."""
        instance = single_disk_example()
        first = evaluate_instances([("labelA", instance)], ["aggressive"], cache_dir=tmp_path)
        second = evaluate_instances([("labelB", instance)], ["aggressive"], cache_dir=tmp_path)
        assert second.cached_points == 1
        assert second.metric("elapsed_time")["labelB alg=aggressive"] == (
            first.metric("elapsed_time")["labelA alg=aggressive"]
        )

    def test_evaluate_instances(self):
        run = evaluate_instances(
            [("paper", single_disk_example())], ["aggressive", "conservative"]
        )
        elapsed = run.metric("elapsed_time")
        assert elapsed["paper alg=aggressive"] == 13
        assert elapsed["paper alg=conservative"] == 12


class TestWorkerFailures:
    """A failing point must be named, not surface as a bare worker traceback."""

    @pytest.mark.parametrize("workers,backend", [(0, "serial"), (2, "process")])
    def test_failure_names_the_exact_grid_point(self, workers, backend):
        spec = _small_spec(
            workloads=("trace:path=/nonexistent/never.txt",),
            cache_sizes=(4,), seeds=(None,), algorithms=("aggressive",),
        )
        with pytest.raises(PointEvaluationError) as excinfo:
            run_experiments(spec, workers=workers, backend=backend)
        message = str(excinfo.value)
        assert "trace:path=/nonexistent/never.txt k=4 F=3 D=1 alg=aggressive" in message
        # load_trace wraps the OSError in a strict ConfigurationError that
        # names the unreadable path.
        assert "ConfigurationError" in message
        assert "/nonexistent/never.txt" in message


class TestFingerprint:
    def test_equal_instances_share_fingerprints(self):
        a = ProblemInstance.single_disk(zipf(30, 8, seed=1), cache_size=4, fetch_time=3)
        b = ProblemInstance.single_disk(zipf(30, 8, seed=1), cache_size=4, fetch_time=3)
        assert a is not b
        assert instance_fingerprint(a) == instance_fingerprint(b)

    def test_fingerprint_covers_parameters(self):
        base = ProblemInstance.single_disk(zipf(30, 8, seed=1), cache_size=4, fetch_time=3)
        assert instance_fingerprint(base) != instance_fingerprint(base.with_cache_size(5))
        other_seq = ProblemInstance.single_disk(zipf(30, 8, seed=2), cache_size=4, fetch_time=3)
        assert instance_fingerprint(base) != instance_fingerprint(other_seq)
