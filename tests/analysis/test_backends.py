"""Tests for the pluggable execution backends and their adaptive chunking."""

from __future__ import annotations

import threading
from pathlib import Path

import pytest

from repro.analysis.backends import (
    BACKEND_NAMES,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    adaptive_chunk_size,
    make_backend,
    resolve_backend_name,
)
from repro.analysis.runner import ExperimentSpec, run_experiments
from repro.errors import ConfigurationError

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Every real backend the byte-identical-JSON equivalence suite runs; the
#: catalog-sync meta-test pins it to BACKEND_NAMES so a new backend cannot
#: ship without joining the equivalence property.
EQUIVALENCE_BACKENDS = ("serial", "thread", "process", "remote")


def _square(value: int) -> int:
    """Module-level (picklable) work function for the pool backends."""
    return value * value


def _maybe_boom(value: int) -> int:
    """Module-level work function that fails on a sentinel input."""
    if value == 13:
        raise ValueError("unlucky task")
    return value


def _run_with_backend(name: str, spec: ExperimentSpec, *, workers: int, cache_dir=None):
    """Run ``spec`` on backend ``name`` (spinning up workers for ``remote``)."""
    if name != "remote":
        return run_experiments(spec, workers=workers, backend=name, cache_dir=cache_dir)
    from repro.analysis.remote import RemoteBackend, run_worker

    backend = RemoteBackend(workers, chunk_size=2, lease_timeout=10.0)
    url = backend.start()
    worker_kwargs = dict(
        poll_interval=0.01, backoff_base=0.01, backoff_cap=0.05, max_retries=3
    )
    threads = [
        threading.Thread(
            target=run_worker, args=(url,), kwargs=worker_kwargs, daemon=True
        )
        for _ in range(max(2, workers))
    ]
    for thread in threads:
        thread.start()
    try:
        return run_experiments(
            spec, workers=workers, backend=backend, cache_dir=cache_dir
        )
    finally:
        # Workers exit on the coordinator's 'done' state; join before closing
        # the server so none burns its transport retries on a dead socket.
        for thread in threads:
            thread.join(timeout=30)
        backend.close()


class TestAdaptiveChunking:
    def test_small_grids_run_one_task_per_dispatch(self):
        assert adaptive_chunk_size(1, 8) == 1
        assert adaptive_chunk_size(8, 8) == 1
        assert adaptive_chunk_size(0, 4) == 1

    def test_large_grids_amortise_dispatch_overhead(self):
        # 10_000 tasks over 8 workers: 4 chunks per worker would mean
        # 313-task chunks; the cap keeps rebalancing granular.
        assert adaptive_chunk_size(10_000, 8) == 64
        assert adaptive_chunk_size(256, 8) == 8

    def test_chunk_count_keeps_every_worker_busy(self):
        for tasks in (7, 64, 511, 4096):
            for workers in (2, 4, 8):
                size = adaptive_chunk_size(tasks, workers)
                chunks = -(-tasks // size)
                assert chunks >= min(tasks, workers)


class TestFactory:
    def test_auto_resolves_by_worker_count(self):
        assert resolve_backend_name("auto", 0) == "serial"
        assert resolve_backend_name("auto", 1) == "serial"
        assert resolve_backend_name("auto", 4) == "process"

    def test_named_backends_resolve_to_their_types(self):
        assert isinstance(make_backend("serial", 4), SerialBackend)
        assert isinstance(make_backend("thread", 4), ThreadPoolBackend)
        assert isinstance(make_backend("process", 4), ProcessPoolBackend)

    def test_unknown_backend_rejected_with_alternatives(self):
        with pytest.raises(ConfigurationError, match="serial, thread, process, remote"):
            make_backend("mpi", 4)

    def test_spec_rejects_unknown_backend_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown execution backend"):
            ExperimentSpec(
                name="t", workloads=("scan:blocks=10",), cache_sizes=(4,),
                fetch_times=(3,), algorithms=("aggressive",), backend="bogus",
            )

    def test_every_advertised_name_is_constructible(self):
        for name in BACKEND_NAMES:
            assert make_backend(name, 2).name in (
                "serial", "thread", "process", "remote"
            )

    def test_remote_backend_constructs_socket_free(self):
        backend = make_backend("remote", 2)
        assert backend.name == "remote"
        assert backend.detached_workers
        # No server bound until start(): asking for the URL is an error, and
        # close() on a never-started backend is a clean no-op.
        with pytest.raises(ConfigurationError, match="call start"):
            backend.url
        backend.close()


class TestMapContract:
    @pytest.mark.parametrize("name", ["serial", "thread", "process"])
    def test_results_come_back_in_submission_order(self, name):
        backend = make_backend(name, 3)
        values = list(range(40))
        assert list(backend.map(_square, values)) == [v * v for v in values]

    @pytest.mark.parametrize("name", ["serial", "thread", "process"])
    def test_empty_input_yields_nothing(self, name):
        assert list(make_backend(name, 2).map(_square, [])) == []

    @pytest.mark.parametrize("name", ["serial", "thread", "process"])
    def test_worker_exceptions_propagate(self, name):
        backend = make_backend(name, 2)
        with pytest.raises(ValueError, match="unlucky task"):
            list(backend.map(_maybe_boom, list(range(20))))


class TestBackendEquivalence:
    """Acceptance: all backends emit byte-identical ResultSet JSON."""

    def _spec(self, **overrides) -> ExperimentSpec:
        base = dict(
            name="backend-eq",
            workloads=("zipf:n=40,blocks=10", "loop:blocks=10,loops=3"),
            cache_sizes=(4, 6),
            fetch_times=(3,),
            algorithms=("aggressive", "demand"),
            seeds=(0, 1),
        )
        base.update(overrides)
        return ExperimentSpec(**base)

    def test_plain_grid_is_byte_identical_across_backends(self):
        spec = self._spec()
        runs = {
            name: _run_with_backend(name, spec, workers=2)
            for name in EQUIVALENCE_BACKENDS
        }
        documents = {run.to_json() for run in runs.values()}
        assert len(documents) == 1
        assert {run.backend for run in runs.values()} == set(EQUIVALENCE_BACKENDS)

    def test_optimum_grid_is_identical_modulo_solve_walltime(self, tmp_path):
        from repro.analysis.results import RUN_RECORD_COLUMNS

        columns = tuple(
            c for c in RUN_RECORD_COLUMNS if c != "optimum_solve_seconds"
        )
        spec = self._spec(
            workloads=("loop:blocks=8,loops=3",), cache_sizes=(3,),
            seeds=(None,), compute_optimum=True,
        )
        runs = [
            _run_with_backend(name, spec, workers=2, cache_dir=tmp_path / name)
            for name in EQUIVALENCE_BACKENDS
        ]
        documents = {run.to_json(columns) for run in runs}
        assert len(documents) == 1

    def test_spec_backend_field_drives_execution(self):
        spec = self._spec(
            workloads=("scan:blocks=10",), cache_sizes=(4,), seeds=(None,),
            algorithms=("aggressive",), backend="thread",
        )
        run = run_experiments(spec, workers=2)
        assert run.backend == "thread"
        # An explicit argument overrides the spec's choice.
        assert run_experiments(spec, workers=0, backend="serial").backend == "serial"


class TestBackendCatalogSync:
    """Meta-tests: every advertised backend name appears everywhere it must.

    Adding a backend to ``BACKEND_NAMES`` without updating the CLI help, the
    architecture documentation, or the byte-identical equivalence suite is a
    drift bug — these tests make it fail the suite instead of shipping.
    """

    def test_cli_backend_help_lists_every_name(self):
        from repro.cli import build_parser

        parser = build_parser()
        sweep_parser = next(
            action.choices["sweep"]
            for action in parser._subparsers._group_actions
            if hasattr(action, "choices")
        )
        help_text = sweep_parser.format_help()
        for name in BACKEND_NAMES:
            assert name in help_text, f"--backend help is missing {name!r}"

    def test_architecture_docs_mention_every_name(self):
        text = (REPO_ROOT / "docs" / "architecture.md").read_text(encoding="utf8")
        for name in BACKEND_NAMES:
            assert name in text, f"docs/architecture.md does not mention {name!r}"

    def test_equivalence_suite_covers_every_real_backend(self):
        # 'auto' is an alias that resolves to serial/process, never a backend
        # of its own; every other name must run the equivalence property.
        assert set(EQUIVALENCE_BACKENDS) == set(BACKEND_NAMES) - {"auto"}
