"""Fault-injection suite for the distributed sweep fabric.

The fabric's claims — killed workers lose no progress, duplicate deliveries
are idempotent, a coordinator restart resumes cleanly — are proved here the
same way the engine oracle proves simulation parity: by property.  Every
adversarial scenario runs a real 60-point grid through ``RemoteBackend`` +
in-process ``run_worker`` loops with a :class:`FaultPlan` threaded through
the transport, then asserts the run store's ``runs`` rows are byte-identical
to a ``backend="serial"`` run of the same grid.
"""

from __future__ import annotations

import sqlite3
import threading
import time

import pytest

from repro.analysis.remote import (
    FaultPlan,
    RemoteBackend,
    backoff_delays,
    run_worker,
)
from repro.analysis.runner import ExperimentSpec, run_experiments
from repro.analysis.store import RunStore, store_path_for
from repro.errors import (
    ConfigurationError,
    CoordinatorShutdown,
    WorkerTransportError,
)
from repro.service.coordinator import SweepCoordinator

# ---------------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------------

#: Worker parameters fast enough for tests: tight polling, millisecond backoff.
FAST_WORKER = dict(poll_interval=0.01, backoff_base=0.01, backoff_cap=0.05, max_retries=3)


def _square(value: int) -> int:
    """Module-level (picklable) work function."""
    return value * value


def _boom_on_7(value: int) -> int:
    """Module-level work function that fails on a sentinel input."""
    if value == 7:
        raise ValueError("task 7 explodes")
    return value


def _grid_spec() -> ExperimentSpec:
    """The 60-point grid every equivalence property runs: 2 x 3 x 2 x 5."""
    return ExperimentSpec(
        name="fault-grid",
        workloads=("zipf:n=30,blocks=10", "zipf:n=24,blocks=8,skew=0.9"),
        seeds=(0, 1, 2),
        cache_sizes=(3, 4),
        fetch_times=(3,),
        algorithms=("aggressive", "demand", "conservative", "combination", "delay:d=2"),
    )


def _run_rows(db_path) -> list:
    """The store's ``runs`` rows, sorted — the byte-level equivalence witness."""
    with sqlite3.connect(db_path) as conn:
        return sorted(conn.execute("SELECT key, record FROM runs").fetchall())


def _serial_rows(tmp_path) -> list:
    """Rows of a fresh serial run of the grid (the reference bytes)."""
    serial_dir = tmp_path / "serial"
    run_experiments(_grid_spec(), backend="serial", cache_dir=serial_dir)
    return _run_rows(store_path_for(serial_dir))


def _start_workers(url: str, plans) -> list:
    """One worker thread per fault plan (None = healthy); returns the threads."""
    threads = []
    for plan in plans:
        thread = threading.Thread(
            target=run_worker,
            args=(url,),
            kwargs=dict(fault_plan=plan, **FAST_WORKER),
            daemon=True,
        )
        thread.start()
        threads.append(thread)
    return threads


def _run_remote_grid(tmp_path, plans, *, lease_timeout=0.5, chunk_size=4):
    """Run the 60-point grid remotely under ``plans``; returns (rows, status)."""
    cache_dir = tmp_path / "remote"
    backend = RemoteBackend(2, chunk_size=chunk_size, lease_timeout=lease_timeout)
    url = backend.start()
    threads = _start_workers(url, plans)
    try:
        run_experiments(_grid_spec(), backend=backend, cache_dir=cache_dir)
        for thread in threads:
            thread.join(timeout=60)
        status = backend.coordinator.status()
    finally:
        backend.close()
    return _run_rows(store_path_for(cache_dir)), status


# ---------------------------------------------------------------------------------
# coordinator ledger unit tests (injected clock: no sleeping)
# ---------------------------------------------------------------------------------


class FakeClock:
    """A hand-advanced monotonic clock for deterministic lease-expiry tests."""

    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSweepCoordinator:
    def _loaded(self, clock, payloads=(b"p0", b"p1")):
        coordinator = SweepCoordinator(lease_timeout=10.0, clock=clock)
        coordinator.submit([(payload, 1) for payload in payloads])
        return coordinator

    def test_lease_before_submit_is_idle_not_done(self):
        coordinator = SweepCoordinator(lease_timeout=10.0, clock=FakeClock())
        assert coordinator.lease("w1")["state"] == "idle"
        assert not coordinator.complete

    def test_expired_lease_is_reissued_with_fresh_lease_id(self):
        clock = FakeClock()
        coordinator = self._loaded(clock, payloads=(b"p0",))
        first = coordinator.lease("w1")
        assert first["state"] == "lease"
        # Within the deadline the chunk is not up for grabs.
        assert coordinator.lease("w2")["state"] == "idle"
        clock.advance(10.5)
        second = coordinator.lease("w2")
        assert second["state"] == "lease"
        assert second["chunk"] == first["chunk"]
        assert second["lease"] != first["lease"]
        assert coordinator.status()["reissued_leases"] == 1

    def test_heartbeat_extends_the_deadline(self):
        clock = FakeClock()
        coordinator = self._loaded(clock, payloads=(b"p0",))
        grant = coordinator.lease("w1")
        clock.advance(8.0)
        ack = coordinator.heartbeat("w1", grant["chunk"], grant["lease"], grant["run"])
        assert ack["valid"]
        # 8s + 8s would have expired the original deadline; the heartbeat
        # reset it, so the chunk is still w1's.
        clock.advance(8.0)
        assert coordinator.lease("w2")["state"] == "idle"

    def test_heartbeat_on_stale_lease_reports_invalid(self):
        clock = FakeClock()
        coordinator = self._loaded(clock, payloads=(b"p0",))
        grant = coordinator.lease("w1")
        clock.advance(10.5)
        coordinator.lease("w2")  # re-issues the chunk
        ack = coordinator.heartbeat("w1", grant["chunk"], grant["lease"], grant["run"])
        assert not ack["valid"]

    def test_first_completion_wins_even_from_an_expired_lease(self):
        clock = FakeClock()
        coordinator = self._loaded(clock, payloads=(b"p0",))
        stale = coordinator.lease("w1")
        clock.advance(10.5)
        fresh = coordinator.lease("w2")
        # The presumed-dead worker delivers first: deterministic work, so the
        # result is accepted (flagged stale) and the re-run's delivery is the
        # duplicate.
        first = coordinator.complete_chunk(
            "w1", stale["chunk"], stale["lease"], stale["run"], b"r"
        )
        assert first["accepted"] and first["stale_lease"]
        second = coordinator.complete_chunk(
            "w2", fresh["chunk"], fresh["lease"], fresh["run"], b"r"
        )
        assert not second["accepted"]
        assert second["reason"] == "duplicate"
        assert coordinator.status()["duplicate_completions"] == 1

    def test_duplicate_completion_is_discarded(self):
        coordinator = self._loaded(FakeClock(), payloads=(b"p0",))
        grant = coordinator.lease("w1")
        args = ("w1", grant["chunk"], grant["lease"], grant["run"], b"r")
        assert coordinator.complete_chunk(*args)["accepted"]
        again = coordinator.complete_chunk(*args)
        assert not again["accepted"]
        assert again["reason"] == "duplicate"

    def test_completion_for_unknown_chunk_or_run_is_discarded(self):
        coordinator = self._loaded(FakeClock())
        grant = coordinator.lease("w1")
        bad_chunk = coordinator.complete_chunk(
            "w1", 99, grant["lease"], grant["run"], b"r"
        )
        assert not bad_chunk["accepted"] and bad_chunk["reason"] == "unknown-chunk"
        # A worker that outlived a coordinator restart carries the old run
        # token; its delivery must not land in the re-chunked batch.
        bad_run = coordinator.complete_chunk(
            "w1", grant["chunk"], grant["lease"], "999.1", b"r"
        )
        assert not bad_run["accepted"] and bad_run["reason"] == "unknown-run"

    def test_done_and_shutdown_states(self):
        coordinator = self._loaded(FakeClock(), payloads=(b"p0",))
        grant = coordinator.lease("w1")
        coordinator.complete_chunk(
            "w1", grant["chunk"], grant["lease"], grant["run"], b"r"
        )
        assert coordinator.lease("w1")["state"] == "done"
        assert coordinator.complete
        coordinator.request_shutdown()
        assert coordinator.lease("w1")["state"] == "shutdown"

    def test_results_raise_on_shutdown_with_outstanding_chunks(self):
        coordinator = self._loaded(FakeClock())
        coordinator.request_shutdown()
        with pytest.raises(CoordinatorShutdown):
            list(coordinator.results())

    def test_rejects_nonpositive_lease_timeout(self):
        with pytest.raises(ConfigurationError, match="lease timeout"):
            SweepCoordinator(lease_timeout=0)


# ---------------------------------------------------------------------------------
# RemoteBackend map contract
# ---------------------------------------------------------------------------------


class TestRemoteMapContract:
    def _with_workers(self, backend, count=2):
        url = backend.start()
        return _start_workers(url, [None] * count)

    def test_results_come_back_in_submission_order(self):
        backend = RemoteBackend(2, chunk_size=3, lease_timeout=10.0)
        threads = self._with_workers(backend)
        try:
            values = list(range(40))
            assert list(backend.map(_square, values)) == [v * v for v in values]
            for thread in threads:
                thread.join(timeout=30)
        finally:
            backend.close()

    def test_empty_input_yields_nothing_without_workers(self):
        backend = RemoteBackend(2)
        assert list(backend.map(_square, [])) == []
        backend.close()

    def test_worker_exceptions_propagate_to_the_consumer(self):
        backend = RemoteBackend(2, chunk_size=4, lease_timeout=10.0)
        threads = self._with_workers(backend, count=1)
        try:
            with pytest.raises(ValueError, match="task 7 explodes"):
                list(backend.map(_boom_on_7, list(range(20))))
            for thread in threads:
                thread.join(timeout=30)
        finally:
            backend.close()

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ConfigurationError, match="chunk size"):
            RemoteBackend(2, chunk_size=0)


# ---------------------------------------------------------------------------------
# worker transport
# ---------------------------------------------------------------------------------


class TestTransportRetry:
    def test_backoff_schedule_is_capped_exponential(self):
        assert backoff_delays(4, 0.5, 3.0) == [0.5, 1.0, 2.0, 3.0]
        assert backoff_delays(0, 1.0, 1.0) == []

    def test_backoff_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError, match="retry count"):
            backoff_delays(-1, 0.5, 1.0)
        with pytest.raises(ConfigurationError, match="positive"):
            backoff_delays(3, 0.0, 1.0)

    def test_worker_gives_up_after_exhausting_retries(self):
        naps = []
        report = run_worker(
            "http://127.0.0.1:9",  # port 9 (discard): connection refused
            worker_id="orphan",
            poll_interval=0.01,
            backoff_base=0.25,
            backoff_cap=1.0,
            max_retries=3,
            sleep=naps.append,
        )
        assert report.state == "coordinator-gone"
        assert report.chunks_completed == 0
        # The injected sleeper saw exactly the capped-exponential schedule.
        assert naps == [0.25, 0.5, 1.0]

    def test_transport_error_type_is_raised_internally(self):
        from repro.analysis.remote import _Transport

        transport = _Transport(
            "http://127.0.0.1:9", backoff_base=0.01, backoff_cap=0.02,
            max_retries=2, sleep=lambda _s: None,
        )
        with pytest.raises(WorkerTransportError, match="unreachable after 3 attempts"):
            transport.post("/lease", {"worker": "w"})


# ---------------------------------------------------------------------------------
# the fault-injection properties (60-point grid vs serial, byte-identical)
# ---------------------------------------------------------------------------------


class TestFaultInjectionProperties:
    def test_workers_killed_mid_chunk_lose_no_progress(self, tmp_path):
        """Two workers die holding leases; the survivor finishes the grid."""
        rows, status = _run_remote_grid(
            tmp_path,
            [
                FaultPlan(kill_after_chunks=1),
                FaultPlan(kill_after_chunks=2),
                None,  # the healthy worker that inherits the expired leases
            ],
        )
        assert status["state"] == "done"
        assert status["reissued_leases"] >= 2
        assert rows == _serial_rows(tmp_path)

    def test_duplicate_deliveries_are_idempotent(self, tmp_path):
        """Dedicated duplicate-delivery drill: double POSTs change nothing."""
        rows, status = _run_remote_grid(
            tmp_path,
            [FaultPlan(duplicate_completions=3), None],
        )
        assert status["state"] == "done"
        assert status["duplicate_completions"] >= 3
        assert rows == _serial_rows(tmp_path)

    def test_dropped_completions_expire_and_reissue(self, tmp_path):
        """Dedicated lease re-issue drill: swallowed results re-run elsewhere."""
        rows, status = _run_remote_grid(
            tmp_path,
            [FaultPlan(drop_completions=2), None],
        )
        assert status["state"] == "done"
        assert status["reissued_leases"] >= 2
        assert rows == _serial_rows(tmp_path)

    def test_late_completion_after_expiry_stays_consistent(self, tmp_path):
        """A slow worker's late result lands as a stale/duplicate, never corrupts."""
        rows, status = _run_remote_grid(
            tmp_path,
            [FaultPlan(delay_seconds=0.7), None],  # delay > lease_timeout=0.5
        )
        assert status["state"] == "done"
        assert rows == _serial_rows(tmp_path)

    def test_coordinator_restart_resumes_to_serial_bytes(self, tmp_path):
        """SIGTERM-equivalent mid-sweep + fresh coordinator = complete + identical."""
        cache_dir = tmp_path / "remote"
        spec = _grid_spec()

        # Phase 1: serve the grid, then shut the coordinator down once the
        # store shows real progress (the repro coordinator SIGTERM path).
        # A small per-completion delay keeps the sweep in flight long enough
        # for the watcher to observe progress and pull the plug mid-run.
        backend = RemoteBackend(2, chunk_size=4, lease_timeout=5.0)
        url = backend.start()
        threads = _start_workers(
            url, [FaultPlan(delay_seconds=0.05), FaultPlan(delay_seconds=0.05)]
        )

        def _shutdown_when_warm() -> None:
            deadline = time.monotonic() + 60
            with RunStore(store_path_for(cache_dir)) as watcher_store:
                while time.monotonic() < deadline:
                    if watcher_store.count_runs() >= 8:
                        backend.request_shutdown()
                        return
                    time.sleep(0.01)

        # The store file must exist before the watcher opens it.
        RunStore(store_path_for(cache_dir)).close()
        watcher = threading.Thread(target=_shutdown_when_warm, daemon=True)
        watcher.start()
        with pytest.raises(CoordinatorShutdown):
            run_experiments(spec, backend=backend, cache_dir=cache_dir)
        watcher.join(timeout=60)
        for thread in threads:
            thread.join(timeout=60)
        backend.close()

        first_rows = _run_rows(store_path_for(cache_dir))
        assert 0 < len(first_rows) < 60

        # Phase 2: a fresh coordinator process-equivalent resumes the grid.
        backend = RemoteBackend(2, chunk_size=4, lease_timeout=5.0)
        url = backend.start()
        threads = _start_workers(url, [None, None])
        try:
            resumed = run_experiments(spec, backend=backend, cache_dir=cache_dir)
            for thread in threads:
                thread.join(timeout=60)
        finally:
            backend.close()

        # The resume executed only the remainder, and the final bytes match
        # the serial reference exactly.
        assert resumed.cached_points == len(first_rows)
        assert resumed.simulated_points == 60 - len(first_rows)
        assert _run_rows(store_path_for(cache_dir)) == _serial_rows(tmp_path)
