"""Tests for the analysis harness: brute force, ratios, sweeps, reporting, diffs."""

from __future__ import annotations

import pytest

from repro.algorithms import Aggressive, Conservative, DemandFetch
from repro.analysis import (
    SweepPoint,
    brute_force_optimal_stall,
    diff_schedules,
    format_comparison,
    format_report,
    format_table,
    measure_parallel_stall,
    measure_ratios,
    run_sweep,
    summarize_result,
)
from repro.disksim import DiskLayout, ProblemInstance, RequestSequence, simulate
from repro.errors import ConfigurationError
from repro.lp import optimal_single_disk
from repro.workloads import parallel_disk_example, single_disk_example, uniform_random


class TestBruteForce:
    def test_paper_single_disk_example(self):
        result = brute_force_optimal_stall(single_disk_example())
        assert result.stall_time == 1
        assert result.elapsed_time == 11
        assert result.explored_states > 0

    def test_zero_stall_instance(self):
        instance = ProblemInstance.single_disk(
            ["a", "b", "a"], cache_size=2, fetch_time=2, initial_cache=["a", "b"]
        )
        assert brute_force_optimal_stall(instance).stall_time == 0

    def test_matches_lp_on_small_instances(self, small_cold_instance, small_warm_instance):
        for instance in (small_cold_instance, small_warm_instance):
            brute = brute_force_optimal_stall(instance)
            lp = optimal_single_disk(instance)
            assert brute.stall_time == lp.stall_time

    def test_parallel_example(self):
        result = brute_force_optimal_stall(parallel_disk_example())
        # The paper's narrated schedule achieves 3; with only k slots the
        # optimum cannot be better than the LP bound and is at most 3.
        assert 0 < result.stall_time <= 3

    def test_rejects_large_instances(self):
        instance = ProblemInstance.single_disk(
            uniform_random(60, 20, seed=0), cache_size=4, fetch_time=2
        )
        with pytest.raises(ConfigurationError):
            brute_force_optimal_stall(instance)


class TestRatios:
    def test_measure_ratios_single_disk(self):
        report = measure_ratios(single_disk_example(), [Aggressive(), Conservative()])
        assert report.optimal_elapsed == 11
        aggressive = report.measurement("aggressive")
        assert aggressive.elapsed_time == 13
        assert aggressive.elapsed_ratio == pytest.approx(13 / 11)
        assert report.worst_elapsed_ratio() >= aggressive.elapsed_ratio
        assert report.bounds is not None
        rows = report.as_rows()
        assert {row["algorithm"] for row in rows} == {"aggressive", "conservative"}

    def test_measure_ratios_accepts_precomputed_optimum(self):
        report = measure_ratios(
            single_disk_example(), [Aggressive()], optimal_elapsed=11, optimal_stall=1
        )
        assert report.optimal_elapsed == 11

    def test_measure_ratios_rejects_parallel(self):
        with pytest.raises(ConfigurationError):
            measure_ratios(parallel_disk_example(), [Aggressive()])

    def test_measure_parallel_stall(self):
        from repro.algorithms import ParallelAggressive

        report = measure_parallel_stall(parallel_disk_example(), [ParallelAggressive()])
        measurement = report.measurement("parallel-aggressive")
        assert measurement.stall_time >= report.optimal_stall
        assert report.bounds is None

    def test_unknown_algorithm_lookup(self):
        report = measure_ratios(single_disk_example(), [Aggressive()])
        with pytest.raises(KeyError):
            report.measurement("nope")


class TestSweep:
    def test_run_sweep_collects_records(self):
        points = [
            SweepPoint(label="paper", instance=single_disk_example()),
            SweepPoint(
                label="precomputed",
                instance=single_disk_example(),
                optimal_elapsed=11,
                optimal_stall=1,
            ),
        ]
        result = run_sweep(points, lambda: [Aggressive(), DemandFetch()])
        assert result.points() == ["paper", "paper", "precomputed", "precomputed"]
        ratios = result.ratios_for("aggressive")
        assert ratios["paper"] == pytest.approx(13 / 11)
        assert result.max_ratio_for("aggressive") >= 1.0
        rows = result.as_rows()
        assert len(rows) == 4  # 2 points x 2 algorithms
        # Every record carries the per-point optimum alongside the metrics.
        assert {row["optimal_elapsed"] for row in rows} == {11}
        assert {r.algorithm for r in result.for_algorithm("aggressive")} == {"aggressive"}


class TestReporting:
    def test_format_table_alignment_and_floats(self):
        text = format_table(
            [{"name": "x", "value": 1.23456}, {"name": "longer", "value": 2}],
            float_precision=2,
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.23" in text and "longer" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_report_includes_bounds(self):
        report = measure_ratios(single_disk_example(), [Aggressive()])
        text = format_report(report)
        assert "optimal stall = 1" in text
        assert "aggressive" in text
        assert "Thm1" in text

    def test_format_comparison(self):
        text = format_comparison(
            {"aggr": {"p1": 1.2, "p2": 1.3}, "cons": {"p1": 1.5}}, title="ratios"
        )
        assert "ratios" in text and "p2" in text and "cons" in text


class TestCompare:
    def test_diff_and_summary(self):
        instance = single_disk_example()
        a = simulate(instance, Aggressive())
        b = simulate(instance, Conservative())
        diff = diff_schedules(a, b)
        assert diff.stall_a == 3 and diff.stall_b == 2
        assert not diff.same_stall
        assert diff.fetches_a == 2 and diff.fetches_b == 1
        summary = summarize_result(a)
        assert summary["policy"] == "aggressive"
        assert summary["stall"] == 3
