"""Tests for the classical paging substrate (MIN, LRU, FIFO)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disksim import RequestSequence
from repro.errors import ConfigurationError
from repro.paging import FIFO, LRU, BeladyMIN, min_fault_count, run_paging


class TestRunPaging:
    def test_simple_min_run(self):
        seq = RequestSequence(["a", "b", "c", "a", "b", "d", "a"])
        result = run_paging(seq, 2, BeladyMIN())
        assert result.faults + result.hits == len(seq)
        assert result.faults == min_fault_count(seq, 2)
        assert 0 < result.fault_rate <= 1

    def test_initial_cache_reduces_faults(self):
        seq = RequestSequence(["a", "b", "a", "b"])
        cold = run_paging(seq, 2, BeladyMIN())
        warm = run_paging(seq, 2, BeladyMIN(), initial_cache=["a", "b"])
        assert cold.faults == 2
        assert warm.faults == 0

    def test_eviction_record(self):
        seq = RequestSequence(["a", "b", "c"])
        result = run_paging(seq, 2, BeladyMIN())
        assert result.eviction_at(2) in {"a", "b"}
        assert result.eviction_at(0) is None  # free slot, no eviction

    def test_invalid_cache_size(self):
        with pytest.raises(ConfigurationError):
            run_paging(["a"], 0, BeladyMIN())

    def test_oversized_initial_cache(self):
        with pytest.raises(ConfigurationError):
            run_paging(["a"], 1, BeladyMIN(), initial_cache=["x", "y"])


class TestBelady:
    def test_classic_belady_example(self):
        # A textbook example where MIN beats LRU.
        seq = RequestSequence(["a", "b", "c", "d", "a", "b", "e", "a", "b", "c", "d", "e"])
        assert min_fault_count(seq, 3) <= run_paging(seq, 3, LRU()).faults

    def test_min_evicts_furthest(self):
        seq = RequestSequence(["a", "b", "c", "a", "b"])
        result = run_paging(seq, 2, BeladyMIN())
        # at the fault for c (position 2), a is next used at 3, b at 4 -> evict b
        assert result.eviction_at(2) == "b"

    def test_never_requested_again_evicted_first(self):
        seq = RequestSequence(["a", "b", "z", "a", "b", "a", "b"])
        result = run_paging(seq, 2, BeladyMIN(), initial_cache=["a", "b"])
        # the fault for z must evict a or b, then the evicted one faults back once
        assert result.faults == 2


class TestLRUAndFIFO:
    def test_lru_evicts_least_recent(self):
        seq = RequestSequence(["a", "b", "a", "c", "a", "b"])
        result = run_paging(seq, 2, LRU())
        # at fault for c (pos 3), last uses: a at 2, b at 1 -> evict b
        assert result.eviction_at(3) == "b"

    def test_fifo_evicts_first_loaded(self):
        seq = RequestSequence(["a", "b", "c", "a"])
        result = run_paging(seq, 2, FIFO())
        assert result.eviction_at(2) == "a"

    def test_warm_start_blocks_evicted_before_loaded_blocks(self):
        seq = RequestSequence(["a", "b"])
        result = run_paging(seq, 2, LRU(), initial_cache=["x", "y"])
        # x and y were never accessed, so they are evicted before a and b.
        victims = {victim for _, _, victim in result.evictions if victim}
        assert victims == {"x", "y"}


@settings(max_examples=40, deadline=None)
@given(
    blocks=st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=40),
    cache_size=st.integers(min_value=1, max_value=5),
)
def test_property_min_is_optimal_among_policies(blocks, cache_size):
    """MIN never faults more than LRU or FIFO (Belady's optimality)."""
    seq = RequestSequence(blocks)
    min_faults = run_paging(seq, cache_size, BeladyMIN()).faults
    assert min_faults <= run_paging(seq, cache_size, LRU()).faults
    assert min_faults <= run_paging(seq, cache_size, FIFO()).faults
    # faults are at least the number of distinct blocks beyond the (empty) cache
    assert min_faults >= min(len(set(blocks)), 1)
