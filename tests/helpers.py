"""Shared, importable test helpers.

Unlike ``conftest.py`` (which pytest loads as a plugin and which cannot be
imported with a relative import from test modules collected in rootdir
mode), this module lives on ``sys.path`` — pytest inserts the ``tests/``
directory when it loads ``tests/conftest.py`` — so test modules can simply
``from helpers import ...``.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.disksim import DiskLayout, ProblemInstance
from repro.workloads import uniform_random, zipf


def random_single_instances(count: int = 4, *, max_requests: int = 40) -> List[ProblemInstance]:
    """A small battery of random single-disk instances (used by several tests)."""
    instances = []
    for seed in range(count):
        if seed % 2:
            sequence = uniform_random(
                20 + 5 * seed, 6 + 2 * seed, seed=seed, prefix=f"u{seed}_"
            )
        else:
            sequence = zipf(20 + 5 * seed, 6 + 2 * seed, seed=seed, prefix=f"z{seed}_")
        sequence = sequence[:max_requests]
        instances.append(
            ProblemInstance.single_disk(sequence, cache_size=4 + seed, fetch_time=2 + seed % 4)
        )
    return instances


def random_instance(seed: int, *, parallel: bool = False, max_disks: int = 4) -> ProblemInstance:
    """One deterministic random instance (single- or parallel-disk).

    Used by the engine-equivalence suite: the whole instance — sequence,
    cache size, fetch time, warm set and (for ``parallel=True``) striping —
    derives from ``seed`` alone.
    """
    rng = random.Random(seed)
    n = rng.randint(10, 70)
    num_blocks = rng.randint(4, 20)
    generator = zipf if seed % 2 else uniform_random
    sequence = generator(n, num_blocks, seed=seed, prefix=f"rs{seed}_")
    cache_size = rng.randint(2, 9)
    fetch_time = rng.randint(1, 9)
    warm = frozenset(sorted(map(str, sequence.distinct_blocks))[: rng.randint(0, cache_size)])
    if not parallel:
        return ProblemInstance.single_disk(
            sequence, cache_size=cache_size, fetch_time=fetch_time, initial_cache=warm
        )
    num_disks = rng.randint(2, max_disks)
    layout = DiskLayout.striped(sorted(map(str, sequence.distinct_blocks)), num_disks)
    return ProblemInstance.parallel_disk(
        sequence,
        cache_size=cache_size,
        fetch_time=fetch_time,
        layout=layout,
        initial_cache=warm,
    )
