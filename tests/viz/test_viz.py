"""Tests for the text visualisation helpers."""

from __future__ import annotations

from repro.algorithms import Aggressive, ParallelAggressive
from repro.disksim import simulate
from repro.viz import cache_occupancy_trace, render_gantt, render_timeline
from repro.workloads import parallel_disk_example, single_disk_example


class TestGantt:
    def test_single_disk_chart_shape(self):
        result = simulate(single_disk_example(), Aggressive())
        chart = render_gantt(result)
        lines = chart.splitlines()
        assert any(line.startswith("cpu") for line in lines)
        assert any(line.startswith("disk0") for line in lines)
        cpu_line = next(line for line in lines if line.startswith("cpu"))
        # 10 serves and 3 stall units must appear in the cpu row.
        assert cpu_line.count("s") == 10
        assert cpu_line.count("x") == result.stall_time
        assert "legend" in chart

    def test_parallel_chart_has_one_row_per_disk(self):
        result = simulate(parallel_disk_example(), ParallelAggressive())
        chart = render_gantt(result)
        assert "disk0" in chart and "disk1" in chart

    def test_truncation(self):
        result = simulate(single_disk_example(), Aggressive())
        chart = render_gantt(result, max_width=5)
        assert "not shown" in chart


class TestTimeline:
    def test_timeline_mentions_all_event_kinds(self):
        result = simulate(single_disk_example(), Aggressive())
        text = render_timeline(result)
        for keyword in ("serve", "stall", "fetch", "arrive", "evict"):
            assert keyword in text
        assert "stall=3" in text

    def test_timeline_limit(self):
        result = simulate(single_disk_example(), Aggressive())
        text = render_timeline(result, limit=2)
        assert "more events" in text

    def test_cache_occupancy_trace_peak_matches_metrics(self):
        result = simulate(single_disk_example(), Aggressive())
        trace = cache_occupancy_trace(result)
        assert max(level for _, level in trace) == result.metrics.peak_cache_used
        assert trace[0] == (0, 4)
