"""Integration tests: the paper's quantitative claims at small scale.

These mirror the benchmark experiments (E0–E8) with parameters small enough
for the regular test run; EXPERIMENTS.md records the full-size results.
"""

from __future__ import annotations

import math

import pytest

from repro.algorithms import (
    Aggressive,
    Combination,
    Conservative,
    Delay,
    DemandFetch,
    ParallelAggressive,
)
from repro.analysis import brute_force_optimal_stall, measure_ratios
from repro.core.bounds import (
    aggressive_bound_refined,
    best_delay_parameter,
    combination_bound,
    delay_bound,
)
from repro.disksim import ProblemInstance, simulate
from repro.lp import optimal_parallel_schedule, optimal_single_disk
from repro.workloads import (
    parallel_disk_example,
    single_disk_example,
    theorem2_sequence,
    uniform_random,
    zipf,
)
from repro.workloads.multidisk import striped_instance


def _ratio_instances():
    """Single-disk instances used by the theorem-level ratio checks."""
    instances = []
    for seed in range(4):
        sequence = (
            zipf(40, 12, seed=seed, prefix=f"iz{seed}_")
            if seed % 2 == 0
            else uniform_random(40, 12, seed=seed, prefix=f"iu{seed}_")
        )
        instances.append(
            ProblemInstance.single_disk(sequence, cache_size=6 + seed, fetch_time=3 + seed % 3)
        )
    instances.append(single_disk_example())
    instances.append(theorem2_sequence(k=7, fetch_time=4, num_phases=4).instance)
    return instances


class TestE0PaperExamples:
    def test_all_headline_numbers(self):
        single = single_disk_example()
        assert simulate(single, Aggressive()).elapsed_time == 13
        assert optimal_single_disk(single).elapsed_time == 11
        parallel = parallel_disk_example()
        assert brute_force_optimal_stall(parallel).stall_time <= 3


class TestE1AggressiveUpperBound:
    def test_measured_ratio_never_exceeds_theorem1(self):
        for instance in _ratio_instances():
            optimum = optimal_single_disk(instance).elapsed_time
            measured = simulate(instance, Aggressive()).elapsed_time / optimum
            bound = aggressive_bound_refined(instance.cache_size, instance.fetch_time)
            assert measured <= bound + 1e-9


class TestE2LowerBound:
    def test_construction_forces_ratio_close_to_bound(self):
        construction = theorem2_sequence(k=13, fetch_time=4, num_phases=8)
        instance = construction.instance
        aggressive = simulate(instance, Aggressive()).elapsed_time
        optimum = optimal_single_disk(instance).elapsed_time
        measured = aggressive / optimum
        # The measured ratio approaches the per-phase prediction from below
        # (boundary effects at the first/last phase) and stays within Theorem 1.
        assert measured > 1.05
        assert measured <= aggressive_bound_refined(13, 4) + 1e-9
        assert optimum <= construction.num_phases * construction.optimal_time_per_phase


class TestE3E4DelayAndCombination:
    def test_delay_ratio_within_theorem3(self):
        for instance in _ratio_instances()[:3]:
            optimum = optimal_single_disk(instance).elapsed_time
            for d in (0, 1, 2, instance.fetch_time):
                measured = simulate(instance, Delay(d)).elapsed_time / optimum
                assert measured <= max(delay_bound(d, instance.fetch_time), 2.0) + 1e-9

    def test_best_delay_parameter_is_near_half_f(self):
        for fetch_time in (4, 8, 16, 64):
            d0 = best_delay_parameter(fetch_time)
            assert 0 < d0 <= fetch_time
            assert d0 == math.ceil((math.sqrt(3) - 1) / 2 * fetch_time)

    def test_combination_never_worse_than_both_classics(self):
        for instance in _ratio_instances():
            combo = simulate(instance, Combination()).elapsed_time
            aggressive = simulate(instance, Aggressive()).elapsed_time
            conservative = simulate(instance, Conservative()).elapsed_time
            optimum = optimal_single_disk(instance).elapsed_time
            assert combo / optimum <= combination_bound(
                instance.cache_size, instance.fetch_time
            ) + 1e-9
            # Combination runs one of the two strategies, so it can never be
            # worse than the worse of them and its proven bound is the min.
            assert combo <= max(aggressive, conservative)


class TestE5Conservative:
    def test_two_approximation(self):
        for instance in _ratio_instances():
            optimum = optimal_single_disk(instance).elapsed_time
            conservative = simulate(instance, Conservative()).elapsed_time
            assert conservative / optimum <= 2.0 + 1e-9


class TestE6E7ParallelOptimal:
    def test_theorem4_stall_and_memory_guarantees(self, small_parallel_instance):
        optimum = optimal_parallel_schedule(small_parallel_instance)
        unrestricted = brute_force_optimal_stall(small_parallel_instance)
        assert optimum.stall_time <= unrestricted.stall_time
        assert optimum.extra_cache_used <= 2 * (small_parallel_instance.num_disks - 1)

    @pytest.mark.parametrize("num_disks", [2, 3])
    def test_lp_schedule_beats_parallel_aggressive(self, num_disks):
        sequence = uniform_random(30, 10, seed=10 + num_disks, prefix=f"e6_{num_disks}_")
        instance = striped_instance(sequence, 5, 4, num_disks)
        optimum = optimal_parallel_schedule(instance)
        baseline = simulate(instance, ParallelAggressive())
        assert optimum.stall_time <= baseline.stall_time


class TestE8ParallelBaselines:
    def test_prefetching_still_beats_demand_on_parallel_disks(self):
        sequence = uniform_random(36, 14, seed=21, prefix="e8_")
        instance = striped_instance(sequence, 6, 4, 3)
        demand = simulate(instance, DemandFetch()).elapsed_time
        aggressive = simulate(instance, ParallelAggressive()).elapsed_time
        assert aggressive <= demand


class TestRatioHarnessEndToEnd:
    def test_measure_ratios_reports_bounds_next_to_measurements(self):
        report = measure_ratios(
            single_disk_example(),
            [Aggressive(), Conservative(), Combination(), DemandFetch()],
        )
        assert report.bounds is not None
        assert report.measurement("aggressive").elapsed_ratio <= report.bounds.aggressive_refined
        assert report.measurement("conservative").elapsed_ratio <= 2.0
