"""Tests for the typed workload-spec registry.

The registry-driven property test walks :data:`WORKLOAD_REGISTRY` so every
workload added later is automatically held to the same contract: builds from
its defaults, accepts each documented parameter, rejects unknown keys, and
round-trips through :func:`with_spec_params`.  The regression classes pin
the three historical parsing bugs (silently ignored unknown keys, leaked
``ValueError`` on bad values, comma-truncated trace paths).
"""

from __future__ import annotations

import pytest

from repro.disksim import ProblemInstance, RequestSequence, simulate
from repro.algorithms import make_algorithm
from repro.errors import ConfigurationError
from repro.workloads import save_trace, zipf
from repro.workloads.spec import (
    LAYOUT_BUILDERS,
    WORKLOAD_REGISTRY,
    build_workload_instance,
    format_workload_catalog,
    parse_workload,
    split_spec,
    with_spec_params,
    workload_accepts,
)

ALL_WORKLOADS = sorted(WORKLOAD_REGISTRY)


@pytest.fixture
def base_spec(request, tmp_path):
    """A buildable base spec for the given workload name.

    ``trace`` is the one workload with a required parameter; it gets a real
    file on disk.  Everything else builds from its schema defaults.
    """
    name = request.param
    if name == "trace":
        path = tmp_path / "trace.txt"
        save_trace(zipf(20, 6, seed=1), path)
        return f"trace:path={path}"
    return name


class TestRegistryContract:
    """Every registered workload satisfies the same parse/build contract."""

    @pytest.mark.parametrize("base_spec", ALL_WORKLOADS, indirect=True)
    def test_builds_from_defaults(self, base_spec):
        sequence = parse_workload(base_spec)
        assert isinstance(sequence, RequestSequence)
        assert len(sequence) >= 1

    @pytest.mark.parametrize("base_spec", ALL_WORKLOADS, indirect=True)
    def test_accepts_every_documented_parameter(self, base_spec):
        name, _ = split_spec(base_spec)
        definition = WORKLOAD_REGISTRY[name]
        defaults = {p.name: p.default for p in definition.params if not p.required}
        spec = with_spec_params(base_spec, **defaults)
        assert isinstance(parse_workload(spec), RequestSequence)

    @pytest.mark.parametrize("base_spec", ALL_WORKLOADS, indirect=True)
    def test_rejects_unknown_parameter(self, base_spec):
        spec = with_spec_params(base_spec, definitely_not_a_parameter=1)
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            parse_workload(spec)

    @pytest.mark.parametrize("base_spec", ALL_WORKLOADS, indirect=True)
    def test_round_trips_through_with_spec_params(self, base_spec):
        # Rewriting with no overrides is the identity on parameterised specs...
        assert with_spec_params(with_spec_params(base_spec)) == with_spec_params(base_spec)
        # ...and the rewritten spec regenerates the same sequence.
        assert list(parse_workload(with_spec_params(base_spec))) == list(
            parse_workload(base_spec)
        )

    @pytest.mark.parametrize("base_spec", ALL_WORKLOADS, indirect=True)
    def test_seeded_workloads_are_deterministic(self, base_spec):
        if not workload_accepts(base_spec, "seed"):
            pytest.skip("deterministic workload")
        a = parse_workload(with_spec_params(base_spec, seed=1))
        b = parse_workload(with_spec_params(base_spec, seed=1))
        assert list(a) == list(b)

    @pytest.mark.parametrize("base_spec", ALL_WORKLOADS, indirect=True)
    def test_builds_instances_and_simulates(self, base_spec):
        # k=13, F=4 satisfies every construction's constraints (thm2 needs
        # (F-1) | (k-1)).
        instance = build_workload_instance(base_spec, cache_size=13, fetch_time=4)
        assert isinstance(instance, ProblemInstance)
        result = simulate(instance, make_algorithm("demand"))
        assert result.elapsed_time >= result.metrics.num_requests


class TestUnknownAndDuplicateKeys:
    """Regression: a typo used to silently fall back to the default value."""

    def test_misspelled_parameter_rejected_with_valid_list(self):
        with pytest.raises(ConfigurationError) as excinfo:
            parse_workload("zipf:blocs=10")
        message = str(excinfo.value)
        assert "blocs" in message
        assert "blocks" in message  # the valid parameters are listed

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate parameter"):
            parse_workload("zipf:n=10,n=20")

    def test_unknown_workload_lists_catalog(self):
        with pytest.raises(ConfigurationError, match="available:"):
            parse_workload("nope:n=3")


class TestCoercionErrors:
    """Regression: bad values used to leak raw ValueError tracebacks."""

    @pytest.mark.parametrize("spec", ["zipf:n=abc", "zipf:seed=None", "zipf:skew=big"])
    def test_uncoercible_value_raises_configuration_error(self, spec):
        with pytest.raises(ConfigurationError) as excinfo:
            parse_workload(spec)
        assert spec in str(excinfo.value)  # the offending spec is named

    def test_generator_validation_still_configuration_error(self):
        with pytest.raises(ConfigurationError):
            parse_workload("zipf:skew=-1")

    def test_missing_required_parameter(self):
        with pytest.raises(ConfigurationError, match="required"):
            parse_workload("trace")


class TestSpecGrammar:
    """Regression: '=' in values round-trips; ',' in values errors, not truncates."""

    def test_trace_path_with_equals_round_trips(self, tmp_path):
        path = tmp_path / "odd=name.txt"
        save_trace(zipf(10, 4, seed=0), path)
        spec = f"trace:path={path}"
        assert with_spec_params(spec) == spec
        assert len(parse_workload(spec)) == 10

    def test_comma_in_value_rejected_on_parse(self):
        with pytest.raises(ConfigurationError, match="cannot contain ','"):
            parse_workload("trace:path=/tmp/a,b.txt")

    def test_comma_in_value_rejected_on_rewrite(self):
        with pytest.raises(ConfigurationError, match="cannot contain ','"):
            with_spec_params("trace", path="/tmp/a,b.txt")

    def test_empty_item_rejected(self):
        with pytest.raises(ConfigurationError, match="empty parameter item"):
            parse_workload("zipf:n=10,")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError, match="empty workload name"):
            parse_workload(":n=10")

    def test_override_applies_in_place(self):
        assert with_spec_params("zipf:n=100", seed=3) == "zipf:n=100,seed=3"
        assert with_spec_params("zipf:n=100,seed=1", seed=3) == "zipf:n=100,seed=3"


class TestInstanceKindWorkloads:
    def test_thm2_takes_caller_cache_and_fetch(self):
        instance = build_workload_instance("thm2:phases=3", cache_size=13, fetch_time=4)
        assert instance.cache_size == 13 and instance.fetch_time == 4
        assert len(instance.initial_cache) == 13  # the warm set survives

    def test_spec_pinned_parameters_win(self):
        instance = build_workload_instance(
            "thm2:k=7,F=4,phases=2", cache_size=99, fetch_time=99
        )
        assert instance.cache_size == 7 and instance.fetch_time == 4

    def test_invalid_construction_parameters_are_configuration_errors(self):
        with pytest.raises(ConfigurationError):  # (F-1) does not divide (k-1)
            build_workload_instance("thm2:phases=2", cache_size=11, fetch_time=4)

    def test_multi_disk_placement_rejected(self):
        with pytest.raises(ConfigurationError, match="single-disk"):
            build_workload_instance("cao:cycles=2", cache_size=4, fetch_time=6, disks=2)

    def test_parse_workload_returns_the_sequence(self):
        sequence = parse_workload("cao:k=4,F=6,cycles=3")
        assert isinstance(sequence, RequestSequence)
        assert len(sequence) == 3 * 5


class TestLayouts:
    @pytest.mark.parametrize("layout", sorted(LAYOUT_BUILDERS))
    def test_every_layout_builds_multi_disk_instances(self, layout):
        instance = build_workload_instance(
            "scan:blocks=12", cache_size=4, fetch_time=3, disks=3, layout=layout
        )
        assert instance.num_disks == 3
        used = {instance.disk_of(b) for b in instance.sequence.distinct_blocks}
        assert used == {0, 1, 2}

    def test_unknown_layout_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown layout"):
            build_workload_instance(
                "scan:blocks=12", cache_size=4, fetch_time=3, disks=2, layout="raid5"
            )

    def test_single_disk_ignores_layout(self):
        instance = build_workload_instance(
            "scan:blocks=12", cache_size=4, fetch_time=3, disks=1, layout="partitioned"
        )
        assert instance.num_disks == 1

    def test_partitioned_layout_is_contiguous(self):
        instance = build_workload_instance(
            "stream:streams=2,blocks=10", cache_size=4, fetch_time=3,
            disks=2, layout="partitioned",
        )
        # Sorted-name chunks keep each stream's blocks on one disk.
        disks_of_stream0 = {instance.disk_of(b) for b in instance.sequence.distinct_blocks
                            if str(b).startswith("st0_")}
        assert len(disks_of_stream0) == 1


class TestCatalog:
    def test_catalog_lists_every_workload_and_layout(self):
        catalog = format_workload_catalog()
        for name in ALL_WORKLOADS:
            assert name in catalog
        for layout in LAYOUT_BUILDERS:
            assert layout in catalog

    def test_single_workload_view_shows_parameter_help(self):
        view = format_workload_catalog("zipf")
        assert "skew" in view and "default" in view

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            format_workload_catalog("nope")

    def test_docs_match_the_registry(self):
        """README/DESIGN document every registered workload and layout."""
        from pathlib import Path

        from repro.workloads.spec import workload_catalog_rows

        root = Path(__file__).resolve().parents[2]
        readme = (root / "README.md").read_text(encoding="utf8")
        design = (root / "DESIGN.md").read_text(encoding="utf8")
        for row in workload_catalog_rows():
            assert f"`{row['name']}`" in readme, f"README table misses {row['name']}"
            assert f"`{row['example']}`" in readme, f"README table example drifted for {row['name']}"
            assert row["params"] in readme, f"README table schema drifted for {row['name']}"
        for layout in LAYOUT_BUILDERS:
            assert layout in readme and layout in design
