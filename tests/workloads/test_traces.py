"""Tests for the trace generators and the on-disk trace format.

Covers the three synthetic trace-shaped generators (determinism under fixed
seeds), the ``save_trace``/``load_trace`` round-trip, and the registry path
(``trace:path=...``) including its strict configuration errors.
"""

from __future__ import annotations

import pytest

from repro.disksim.sequence import RequestSequence
from repro.errors import ConfigurationError, InvalidSequenceError
from repro.workloads.traces import (
    database_join_trace,
    file_scan_trace,
    load_trace,
    multimedia_stream_trace,
    save_trace,
)
from repro.workloads.spec import build_workload_instance


class TestGeneratorDeterminism:
    def test_same_seed_reproduces_the_same_sequence(self):
        a = file_scan_trace(3, 10, rescans=2, hot_block_accesses=20, seed=7)
        b = file_scan_trace(3, 10, rescans=2, hot_block_accesses=20, seed=7)
        assert list(a) == list(b)

    def test_different_seeds_differ_when_randomness_is_in_play(self):
        # hot_block_accesses sprinkles RNG-placed metadata reads; two seeds
        # must interleave them differently (the scan skeleton is shared).
        # Keep the insertion probability below 1 (hot < files*blocks) so the
        # placement actually depends on the RNG draws.
        a = file_scan_trace(4, 10, rescans=2, hot_block_accesses=20, seed=0)
        b = file_scan_trace(4, 10, rescans=2, hot_block_accesses=20, seed=1)
        assert list(a) != list(b)

    def test_deterministic_generators_ignore_the_seed(self):
        assert list(database_join_trace(4, 6, seed=0)) == list(
            database_join_trace(4, 6, seed=99)
        )
        assert list(multimedia_stream_trace(3, 5, seed=0)) == list(
            multimedia_stream_trace(3, 5, seed=99)
        )

    def test_join_shape_rescans_inner_per_outer_block(self):
        seq = list(database_join_trace(2, 3, inner_passes_per_outer=2))
        inner = [f"inner{i}" for i in range(3)]
        assert seq == ["outer0"] + inner * 2 + ["outer1"] + inner * 2

    def test_stream_shape_is_round_robin(self):
        assert list(multimedia_stream_trace(2, 2)) == [
            "st0_0", "st1_0", "st0_1", "st1_1"
        ]

    def test_bad_parameters_raise_configuration_errors(self):
        with pytest.raises(ConfigurationError, match="positive"):
            file_scan_trace(0, 10)
        with pytest.raises(ConfigurationError, match="positive"):
            database_join_trace(3, 0)
        with pytest.raises(ConfigurationError, match="positive"):
            multimedia_stream_trace(1, 0)


class TestTraceFileRoundTrip:
    def test_sequence_round_trips_through_the_text_format(self, tmp_path):
        path = tmp_path / "trace.txt"
        original = file_scan_trace(2, 8, rescans=2, hot_block_accesses=10, seed=3)
        save_trace(original, path)
        assert list(load_trace(path)) == list(original)

    def test_plain_block_lists_are_accepted(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace(["a", "b", "a", "c"], path)
        loaded = load_trace(path)
        assert isinstance(loaded, RequestSequence)
        assert list(loaded) == ["a", "b", "a", "c"]

    def test_comments_and_blank_lines_are_ignored(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\na\n  # indented comment\nb\n\n", encoding="utf8")
        assert list(load_trace(path)) == ["a", "b"]

    def test_missing_file_is_a_configuration_error_naming_the_path(self, tmp_path):
        missing = tmp_path / "nope.txt"
        with pytest.raises(ConfigurationError, match="nope.txt"):
            load_trace(missing)

    def test_empty_file_is_an_invalid_sequence(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# only a comment\n", encoding="utf8")
        with pytest.raises(InvalidSequenceError, match="no requests"):
            load_trace(path)


class TestRegistryReachability:
    def test_saved_trace_is_reachable_via_the_trace_spec(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace(multimedia_stream_trace(2, 6), path)
        instance = build_workload_instance(
            f"trace:path={path}", cache_size=4, fetch_time=3
        )
        assert list(instance.sequence) == list(multimedia_stream_trace(2, 6))
        assert instance.cache_size == 4

    def test_trace_spec_with_missing_file_fails_strictly(self, tmp_path):
        with pytest.raises(ConfigurationError, match="gone.txt"):
            build_workload_instance(
                f"trace:path={tmp_path / 'gone.txt'}", cache_size=4, fetch_time=3
            )

    def test_generator_specs_are_registry_reachable(self):
        instance = build_workload_instance(
            "filescan:files=2,blocks=6,rescans=1,hot=0,seed=0",
            cache_size=4,
            fetch_time=3,
        )
        assert list(instance.sequence) == list(file_scan_trace(2, 6, seed=0))
        for spec in ("join:outer=3,inner=4", "stream:streams=2,blocks=5"):
            assert build_workload_instance(spec, cache_size=4, fetch_time=3)
