"""Tests for the workload generators."""

from __future__ import annotations

import pytest

from repro.algorithms import Aggressive
from repro.disksim import RequestSequence, execute_interval_schedule, simulate
from repro.errors import ConfigurationError, InvalidSequenceError
from repro.workloads import (
    cao_f_ge_k_sequence,
    contiguous_partitioned_instance,
    database_join_trace,
    file_scan_trace,
    first_seen_round_robin_instance,
    hashed_instance,
    load_trace,
    looping_scan,
    markov_phases,
    mixed_phases,
    multiclient_streams,
    multimedia_stream_trace,
    parallel_disk_example,
    parallel_disk_example_schedule,
    partitioned_instance,
    save_trace,
    sequential_scan,
    single_disk_example,
    single_disk_example_good_schedule,
    single_disk_example_greedy_schedule,
    strided_scan,
    striped_instance,
    theorem2_parameters,
    theorem2_sequence,
    uniform_random,
    working_set_shift,
    zipf,
)


class TestPaperExamples:
    def test_single_disk_numbers(self):
        instance = single_disk_example()
        assert instance.num_requests == 10
        good = execute_interval_schedule(instance, single_disk_example_good_schedule())
        greedy = execute_interval_schedule(instance, single_disk_example_greedy_schedule())
        assert good.elapsed_time == 11 and good.stall_time == 1
        assert greedy.elapsed_time == 13 and greedy.stall_time == 3

    def test_parallel_disk_numbers(self):
        instance = parallel_disk_example()
        result = execute_interval_schedule(instance, parallel_disk_example_schedule())
        assert result.stall_time == 3
        assert instance.num_disks == 2


class TestAdversarial:
    def test_theorem2_structure(self):
        construction = theorem2_sequence(k=13, fetch_time=4, num_phases=3)
        instance = construction.instance
        l = (13 - 1) // (4 - 1)
        assert construction.blocks_per_phase == l
        assert construction.phase_length == 13 + l
        assert instance.num_requests == 3 * (13 + l)
        assert len(instance.initial_cache) == 13
        assert construction.aggressive_time_per_phase == 13 + l + 4
        assert construction.optimal_time_per_phase == 13 + l + 2
        assert 1.0 < construction.predicted_ratio < 2.0
        assert construction.asymptotic_ratio == pytest.approx(1 + 4 / (13 + 12 / 3))

    def test_theorem2_aggressive_behaviour(self):
        """Aggressive pays about F - 2 extra time units per phase, as the proof predicts."""
        construction = theorem2_sequence(k=13, fetch_time=4, num_phases=6)
        result = simulate(construction.instance, Aggressive())
        predicted = construction.num_phases * construction.aggressive_time_per_phase
        # The last phase needs no trailing refetch, so allow a slack of one phase.
        assert predicted - construction.aggressive_time_per_phase <= result.elapsed_time
        assert result.elapsed_time <= predicted

    def test_theorem2_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            theorem2_sequence(k=11, fetch_time=4, num_phases=2)  # (F-1) does not divide (k-1)
        with pytest.raises(ConfigurationError):
            theorem2_sequence(k=4, fetch_time=8, num_phases=2)  # F > k
        with pytest.raises(ConfigurationError):
            theorem2_sequence(k=13, fetch_time=4, num_phases=0)

    def test_theorem2_parameters_generator(self):
        pairs = list(theorem2_parameters(max_cache=13, max_fetch=5))
        assert (13, 4) in pairs
        assert all((k - 1) % (f - 1) == 0 and f <= k for k, f in pairs)

    def test_cao_cycle_misses_everything(self):
        instance = cao_f_ge_k_sequence(k=4, fetch_time=6, num_cycles=3)
        assert instance.num_requests == 3 * 5
        result = simulate(instance, Aggressive())
        # With F >= k and a cyclic scan of k+1 blocks no fetch can be fully hidden.
        assert result.stall_time > 0


class TestSynthetic:
    def test_deterministic_with_seed(self):
        assert list(zipf(50, 10, seed=3)) == list(zipf(50, 10, seed=3))
        assert list(uniform_random(50, 10, seed=3)) != list(uniform_random(50, 10, seed=4))

    def test_sizes(self):
        assert len(uniform_random(33, 7)) == 33
        assert len(zipf(20, 5)) == 20
        assert len(sequential_scan(9, repeats_per_block=2)) == 18
        assert len(strided_scan(10, 3, 25)) == 25
        assert len(looping_scan(6, 4)) == 24
        assert len(working_set_shift(3, 5, 10)) == 30

    def test_zipf_skew_concentrates_references(self):
        skewed = zipf(2000, 50, skew=1.5, seed=0)
        flat = zipf(2000, 50, skew=0.0, seed=0)
        top_block = max(skewed.distinct_blocks, key=lambda b: len(skewed.positions(b)))
        share_skewed = len(skewed.positions(top_block)) / 2000
        top_block_flat = max(flat.distinct_blocks, key=lambda b: len(flat.positions(b)))
        share_flat = len(flat.positions(top_block_flat)) / 2000
        assert share_skewed > share_flat

    def test_looping_scan_repeats_blocks(self):
        scan = looping_scan(5, 3)
        assert scan.num_distinct == 5
        assert scan.positions(scan[0]) == (0, 5, 10)

    def test_working_set_shift_overlap(self):
        shifted = working_set_shift(2, 4, 20, overlap=2, seed=1)
        assert shifted.num_distinct <= 6  # 4 + (4 - 2)

    def test_mixed_phases_concat_and_interleave(self):
        a = sequential_scan(5, prefix="a")
        b = sequential_scan(5, prefix="b")
        concat = mixed_phases([a, b])
        assert len(concat) == 10 and list(concat)[:5] == list(a)
        interleaved = mixed_phases([a, b], interleave=True, seed=0)
        assert len(interleaved) == 10
        assert [x for x in interleaved if str(x).startswith("a")] == list(a)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            uniform_random(0, 5)
        with pytest.raises(ConfigurationError):
            zipf(10, 5, skew=-1)
        with pytest.raises(ConfigurationError):
            working_set_shift(1, 3, 5, overlap=3)
        with pytest.raises(ConfigurationError):
            mixed_phases([])


class TestMarkovPhases:
    def test_deterministic_and_sized(self):
        assert list(markov_phases(80, 30, seed=5)) == list(markov_phases(80, 30, seed=5))
        assert list(markov_phases(80, 30, seed=5)) != list(markov_phases(80, 30, seed=6))
        assert len(markov_phases(123, 40)) == 123

    def test_frozen_window_bounds_working_set(self):
        # With no jumps and full locality, references never leave one window.
        stuck = markov_phases(200, 100, window=8, locality=1.0, switch=0.0, seed=2)
        assert stuck.num_distinct <= 8

    def test_switching_widens_working_set(self):
        stable = markov_phases(400, 100, window=8, locality=1.0, switch=0.0, seed=3)
        jumpy = markov_phases(400, 100, window=8, locality=1.0, switch=0.2, seed=3)
        assert jumpy.num_distinct > stable.num_distinct

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            markov_phases(10, 5, window=6)  # window > blocks
        with pytest.raises(ConfigurationError):
            markov_phases(10, 5, locality=1.5)
        with pytest.raises(ConfigurationError):
            markov_phases(0, 5)


class TestMulticlientStreams:
    def test_deterministic_and_sized(self):
        a = multiclient_streams(4, 100, seed=1)
        assert list(a) == list(multiclient_streams(4, 100, seed=1))
        assert len(a) == 100

    def test_private_regions_are_per_client(self):
        sequence = multiclient_streams(3, 300, blocks_per_client=5, shared_fraction=0.0,
                                       shared_blocks=0, seed=2)
        prefixes = {str(b).split("_")[0] for b in sequence.distinct_blocks}
        assert prefixes <= {"mc0", "mc1", "mc2"}

    def test_shared_hot_set_appears(self):
        sequence = multiclient_streams(4, 400, shared_blocks=5, shared_fraction=0.5, seed=3)
        shared = [b for b in sequence if str(b).startswith("mc_sh")]
        assert len(shared) > 100  # about half the requests

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            multiclient_streams(0, 10)
        with pytest.raises(ConfigurationError):
            multiclient_streams(2, 10, shared_blocks=0, shared_fraction=0.5)
        with pytest.raises(ConfigurationError):
            multiclient_streams(2, 10, shared_fraction=1.5)


class TestTraces:
    def test_generators_shapes(self):
        assert len(file_scan_trace(3, 4)) >= 12
        join = database_join_trace(3, 5)
        assert len(join) == 3 * (1 + 5)
        stream = multimedia_stream_trace(2, 6)
        assert len(stream) == 12
        # streams are interleaved round-robin
        assert str(stream[0]).startswith("st0_") and str(stream[1]).startswith("st1_")

    def test_save_and_load_round_trip(self, tmp_path):
        sequence = zipf(30, 8, seed=2)
        path = tmp_path / "trace.txt"
        save_trace(sequence, path)
        loaded = load_trace(path)
        assert [str(b) for b in sequence] == list(loaded)

    def test_load_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# only a comment\n")
        with pytest.raises(InvalidSequenceError):
            load_trace(path)


class TestMultidisk:
    def test_striped_instance_covers_all_blocks(self):
        sequence = uniform_random(40, 12, seed=1)
        instance = striped_instance(sequence, 6, 4, 3)
        assert instance.num_disks == 3
        disks_used = {instance.disk_of(b) for b in sequence.distinct_blocks}
        assert disks_used == {0, 1, 2}

    def test_first_seen_round_robin_alternates(self):
        sequence = RequestSequence(["a", "b", "c", "d"])
        instance = first_seen_round_robin_instance(sequence, 2, 2, 2)
        assert instance.disk_of("a") == 0
        assert instance.disk_of("b") == 1
        assert instance.disk_of("c") == 0

    def test_hashed_instance_deterministic(self):
        sequence = uniform_random(30, 10, seed=0)
        a = hashed_instance(sequence, 4, 2, 2)
        b = hashed_instance(sequence, 4, 2, 2)
        assert all(a.disk_of(x) == b.disk_of(x) for x in sequence.distinct_blocks)

    def test_partitioned_instance_requires_full_coverage(self):
        sequence = RequestSequence(["a", "b", "c"])
        with pytest.raises(ConfigurationError):
            partitioned_instance(sequence, 2, 2, [["a"], ["b"]])
        instance = partitioned_instance(sequence, 2, 2, [["a", "c"], ["b"]])
        assert instance.disk_of("c") == 0

    def test_contiguous_partitioned_splits_sorted_blocks(self):
        sequence = RequestSequence(["a", "b", "c", "d", "e", "f"])
        instance = contiguous_partitioned_instance(sequence, 2, 2, 3)
        assert instance.num_disks == 3
        assert instance.disk_of("a") == instance.disk_of("b") == 0
        assert instance.disk_of("c") == instance.disk_of("d") == 1
        assert instance.disk_of("e") == instance.disk_of("f") == 2

    def test_contiguous_partitioned_tolerates_fewer_blocks_than_disks(self):
        instance = contiguous_partitioned_instance(RequestSequence(["a", "b"]), 2, 2, 4)
        assert instance.num_disks == 4
        assert {instance.disk_of("a"), instance.disk_of("b")} == {0, 1}
