"""The stepped kernel vs the batch engine: byte-identical trajectories.

:class:`~repro.disksim.stepped.SteppedSimulation` claims a prefix-of-batch
invariant: feeding a sequence incrementally (any chunking, with snapshot /
restore round-trips at arbitrary points) and closing the stream must produce
exactly the schedule, metrics and event log of a batch run over the complete
sequence.  These tests sweep the randomized instance battery the
engine-equivalence suite uses, plus targeted unit tests of the stream
lifecycle, the pause/defer/budget statuses and the snapshot envelope.
"""

from __future__ import annotations

import json

import pytest

from helpers import random_instance
from repro.algorithms import make_algorithm
from repro.disksim import (
    ProblemInstance,
    RequestSequence,
    SteppedSimulation,
    StreamSequence,
    simulate,
)
from repro.errors import ConfigurationError, InvalidSequenceError

SINGLE_DISK_SPECS = (
    "aggressive",
    "conservative",
    "delay:d=3",
    "combination",
    "demand",
    "demand:evict=lru",
    "demand:evict=fifo",
)

PARALLEL_SPECS = (
    "parallel-aggressive",
    "parallel-conservative",
    "demand:evict=lru",
)


def _stream_result(instance, spec, *, chunk, snapshot_every=None):
    """Run ``instance`` through an open stream fed ``chunk`` requests at a time.

    With ``snapshot_every`` set, the simulation is additionally torn down and
    revived through a JSON-serialised snapshot after every that-many chunks —
    the daemon-restart path exercised mid-run.
    """
    sim = SteppedSimulation.open_stream(
        make_algorithm(spec),
        cache_size=instance.cache_size,
        fetch_time=instance.fetch_time,
        layout=instance.layout,
        initial_cache=instance.initial_cache,
    )
    requests = list(instance.sequence.requests)
    for index, start in enumerate(range(0, len(requests), chunk)):
        sim.feed(requests[start : start + chunk])
        sim.advance()
        if snapshot_every is not None and index % snapshot_every == snapshot_every - 1:
            payload = json.loads(json.dumps(sim.snapshot()))
            sim = SteppedSimulation.restore(payload)
    sim.close()
    assert sim.advance() == SteppedSimulation.COMPLETE
    return sim.result()


def _assert_matches_batch(instance, spec, *, chunk, snapshot_every=None):
    streamed = _stream_result(instance, spec, chunk=chunk, snapshot_every=snapshot_every)
    batch = simulate(instance, make_algorithm(spec))
    assert streamed.schedule == batch.schedule
    assert streamed.metrics == batch.metrics
    assert list(streamed.events) == list(batch.events)


@pytest.mark.parametrize("seed", range(28))
def test_single_disk_stream_equals_batch(seed):
    """Single-disk battery, one request at a time, rotating policy specs."""
    instance = random_instance(seed)
    _assert_matches_batch(instance, SINGLE_DISK_SPECS[seed % len(SINGLE_DISK_SPECS)], chunk=1)


@pytest.mark.parametrize("seed", range(28))
def test_single_disk_chunked_with_snapshots(seed):
    """Chunked feeds with a JSON snapshot/restore round-trip every 2 chunks."""
    instance = random_instance(seed)
    spec = SINGLE_DISK_SPECS[(seed + 3) % len(SINGLE_DISK_SPECS)]
    _assert_matches_batch(instance, spec, chunk=5, snapshot_every=2)


@pytest.mark.parametrize("seed", range(150, 166))
def test_parallel_disk_stream_equals_batch(seed):
    """Parallel-disk battery with mid-run snapshot round-trips."""
    instance = random_instance(seed, parallel=True)
    spec = PARALLEL_SPECS[seed % len(PARALLEL_SPECS)]
    _assert_matches_batch(instance, spec, chunk=4, snapshot_every=3)


@pytest.mark.parametrize("seed", (0, 5, 11, 17))
@pytest.mark.parametrize("spec", ("aggressive", "conservative", "demand:evict=lru"))
def test_project_equals_batch_over_fed_prefix(seed, spec):
    """``project()`` is the batch oracle of exactly the requests fed so far."""
    instance = random_instance(seed)
    requests = list(instance.sequence.requests)
    prefix = requests[: max(1, len(requests) // 2)]
    sim = SteppedSimulation.open_stream(
        make_algorithm(spec),
        cache_size=instance.cache_size,
        fetch_time=instance.fetch_time,
        initial_cache=instance.initial_cache,
    )
    sim.feed(prefix)
    sim.advance()
    cursor_before, time_before = sim.cursor, sim.time
    projected = sim.project()
    # The projection must not disturb the live simulation.
    assert (sim.cursor, sim.time) == (cursor_before, time_before)
    assert not sim.closed
    oracle_instance = ProblemInstance.single_disk(
        RequestSequence(prefix),
        cache_size=instance.cache_size,
        fetch_time=instance.fetch_time,
        initial_cache=instance.initial_cache,
    )
    oracle = simulate(oracle_instance, make_algorithm(spec))
    assert projected.schedule == oracle.schedule
    assert projected.metrics == oracle.metrics


def _open(spec="aggressive", **kwargs):
    defaults = dict(cache_size=3, fetch_time=2)
    defaults.update(kwargs)
    return SteppedSimulation.open_stream(make_algorithm(spec), **defaults)


def test_advance_statuses():
    """paused / deferred / budget / complete are reported as documented."""
    sim = _open()
    assert sim.streaming
    sim.feed(["a", "b", "a"])
    assert sim.advance() == SteppedSimulation.PAUSED
    assert sim.advance(max_events=0) == SteppedSimulation.BUDGET

    deferred = _open("conservative")
    assert not deferred.streaming
    deferred.feed(["a", "b"])
    assert deferred.advance() == SteppedSimulation.DEFERRED
    assert deferred.cursor == 0  # nothing ran while open
    deferred.close()
    assert deferred.advance() == SteppedSimulation.COMPLETE
    assert deferred.finished

    sim.close()
    assert sim.advance(max_events=1) == SteppedSimulation.BUDGET
    assert sim.advance() == SteppedSimulation.COMPLETE
    assert sim.advance() == SteppedSimulation.COMPLETE  # idempotent


def test_time_never_advances_while_paused():
    """A starved stream pauses at the horizon instead of idling the clock."""
    sim = _open()
    sim.feed(["a"])
    sim.advance()
    stamp = sim.time
    for _ in range(3):
        assert sim.advance() == SteppedSimulation.PAUSED
        assert sim.time == stamp


def test_feed_after_close_and_batch_feed_are_errors():
    sim = _open()
    sim.feed(["a"])
    sim.close()
    with pytest.raises(InvalidSequenceError):
        sim.feed(["b"])

    batch = SteppedSimulation.from_instance(
        ProblemInstance.single_disk(RequestSequence(["a", "b"]), cache_size=2, fetch_time=1),
        make_algorithm("aggressive"),
    )
    with pytest.raises(ConfigurationError):
        batch.feed(["c"])


def test_snapshot_rejects_unknown_version():
    sim = _open()
    sim.feed(["a", "b"])
    payload = sim.snapshot()
    payload["version"] = 99
    with pytest.raises(ConfigurationError):
        SteppedSimulation.restore(payload)


def test_snapshot_is_json_serialisable_and_resumes_in_flight_fetches():
    sim = _open()
    sim.feed(["a", "b", "c", "a", "b"])
    sim.advance()
    payload = sim.snapshot()
    revived = SteppedSimulation.restore(json.loads(json.dumps(payload)))
    assert revived.cursor == sim.cursor
    assert revived.time == sim.time
    assert revived.horizon == sim.horizon
    assert list(revived.fetches_so_far()) == list(sim.fetches_so_far())
    assert revived.metrics_so_far() == sim.metrics_so_far()


class TestStreamSequence:
    def test_extend_patches_next_use_links(self):
        stream = StreamSequence(["a", "b"])
        assert stream.next_use_from(0, "a") == 0
        added = stream.extend(["a", "c"])
        assert added == 2
        assert stream.next_use_from(1, "a") == 2
        assert len(stream) == 4
        assert tuple(stream.requests) == ("a", "b", "a", "c")

    def test_equality_with_plain_sequence_is_symmetric(self):
        stream = StreamSequence(["a", "b", "a"])
        plain = RequestSequence(["a", "b", "a"])
        assert stream == plain
        assert plain == stream
        assert hash(stream) == hash(plain)

    def test_extend_after_close_raises(self):
        stream = StreamSequence(["a"])
        stream.close()
        assert stream.closed
        with pytest.raises(InvalidSequenceError):
            stream.extend(["b"])

    def test_none_block_rejected(self):
        stream = StreamSequence([])
        with pytest.raises(InvalidSequenceError):
            stream.extend([None])
