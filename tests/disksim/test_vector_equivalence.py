"""Vector engine vs the loop engine: byte-identical results.

The struct-of-arrays batch engine (``engine="vector"``) must be a pure
performance transformation of the loop engine, exactly as the loop engine is
of the scan engine: on every covered instance and policy the
:class:`SimMetrics` and the :class:`Schedule` — every fetch, start time,
block and victim — must match exactly, and a :class:`RunRecord` produced
through the vector path must serialize to the same bytes as the loop path
(the ``engine`` provenance field is the one permitted difference; these
tests normalize it before comparing).  Mirrors the 225-instance
indexed-vs-scan oracle in ``test_engine_equivalence.py``.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import random_instance
from repro.algorithms import (
    Aggressive,
    Combination,
    Conservative,
    Delay,
    DemandFetch,
    ParallelAggressive,
)
from repro.algorithms.registry import make_algorithm
from repro.analysis.runner import evaluate_instances
from repro.disksim import (
    ProblemInstance,
    RequestSequence,
    numpy_available,
    run_batch,
    simulate,
    simulate_batch,
    simulate_vector,
    simulate_with_engine,
)

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy unavailable: vector engine cannot run"
)

# The same five single-disk families as the indexed-vs-scan oracle: the
# kernel natively covers Aggressive/Delay/Combination and must *fall back*
# (not diverge) on Conservative/DemandFetch.
SINGLE_DISK_FACTORIES = (
    lambda seed: Aggressive(),
    lambda seed: Conservative(),
    lambda seed: Delay(seed % 11),
    lambda seed: Combination(),
    lambda seed: DemandFetch(),
)

#: Every registered single-disk-capable algorithm spec (both Aggressive
#: tie-breaks, two Delay depths, Combination and the two fallback families).
ALL_SPECS = (
    "aggressive",
    "aggressive:tiebreak=low",
    "delay:d=2",
    "delay:d=7",
    "combination",
    "conservative",
    "demand",
)


def _assert_fetches_identical(left, right, context):
    """Schedule equality plus per-fetch block/victim (TimedFetch.__eq__ skips them)."""
    assert left.schedule == right.schedule, f"schedules diverge ({context})"
    for ours, theirs in zip(left.schedule.fetches, right.schedule.fetches):
        assert ours.block == theirs.block, f"fetched blocks diverge ({context})"
        assert ours.victim == theirs.victim, f"victims diverge ({context})"


def _assert_equivalent(instance, policy_factory, seed):
    loop = simulate(instance, policy_factory(seed), engine="loop")
    vector, engine = simulate_with_engine(instance, policy_factory(seed), engine="vector")
    _assert_fetches_identical(vector, loop, f"seed {seed}, engine {engine}")
    assert vector.metrics == loop.metrics, f"metrics diverge (seed {seed})"


@pytest.mark.parametrize("seed", range(150))
def test_single_disk_equivalence(seed):
    """150 single-disk instances, two policy families each (rotating)."""
    instance = random_instance(seed)
    _assert_equivalent(instance, SINGLE_DISK_FACTORIES[seed % 5], seed)
    _assert_equivalent(instance, SINGLE_DISK_FACTORIES[(seed + 2) % 5], seed)


@pytest.mark.parametrize("seed", range(150, 225, 3))
def test_parallel_disk_instances_fall_back(seed):
    """The kernel never claims parallel-disk instances; the fallback matches."""
    instance = random_instance(seed, parallel=True)
    assert simulate_vector(instance, ParallelAggressive()) is None
    result, engine = simulate_with_engine(instance, ParallelAggressive(), engine="vector")
    assert engine == "loop"
    reference = simulate(instance, ParallelAggressive(), engine="loop")
    _assert_fetches_identical(result, reference, f"seed {seed}")
    assert result.metrics == reference.metrics


def test_simulate_batch_matches_serial_simulation():
    """One stacked pass over many same-shape instances == one-by-one loop runs."""
    instances = [random_instance(seed) for seed in (3, 9, 21, 33)]
    for spec in ("aggressive", "delay:d=4"):
        outcomes = simulate_batch(instances, spec, schedules=True)
        assert [o.engine for o in outcomes] == ["vector"] * len(instances)
        for instance, outcome in zip(instances, outcomes):
            reference = simulate(instance, make_algorithm(spec), engine="loop")
            assert outcome.metrics == reference.metrics
            _assert_fetches_identical(outcome, reference, instance.sequence[0])


def test_run_batch_mixes_covered_and_fallback_pairs():
    """Per-pair fallback inside one batch: covered rows vector, the rest loop."""
    instance = random_instance(5)
    pairs = [
        (instance, Aggressive()),
        (instance, Conservative()),
        (instance, Delay(3)),
        (instance, DemandFetch()),
    ]
    outcomes = run_batch(pairs)
    assert [o.engine for o in outcomes] == ["vector", "loop", "vector", "loop"]
    for (inst, policy), outcome in zip(
        [(instance, Aggressive()), (instance, Conservative()),
         (instance, Delay(3)), (instance, DemandFetch())],
        outcomes,
    ):
        assert outcome.metrics == simulate(inst, policy, engine="loop").metrics


def _normalized_json(result_set):
    """Sorted-key record dumps with the engine provenance field normalized."""
    dumps = []
    for record in result_set.records:
        payload = record.to_json_dict()
        payload["engine"] = "<engine>"
        dumps.append(json.dumps(payload, sort_keys=True))
    return dumps


@pytest.mark.parametrize("warm", [False, True], ids=["cold", "warm"])
def test_run_records_byte_identical_across_engines(warm):
    """Acceptance: vector RunRecords == loop RunRecords, byte for byte.

    All seven algorithm specs over warm- and cold-cache instances; the
    ``engine`` field is the one permitted difference and is normalized on
    both sides before comparing.
    """
    labeled = []
    for seed in (2, 4, 11):
        instance = random_instance(seed if warm else seed + 1)
        if not warm:
            instance = ProblemInstance.single_disk(
                instance.sequence,
                cache_size=instance.cache_size,
                fetch_time=instance.fetch_time,
            )
        labeled.append((f"inst{seed}", instance))
    loop = evaluate_instances(labeled, ALL_SPECS, engine="loop")
    vector = evaluate_instances(labeled, ALL_SPECS, engine="vector")
    assert _normalized_json(vector) == _normalized_json(loop)
    engines = {record.engine for record in vector.records}
    assert "vector" in engines  # the covered families really took the kernel
    assert {record.engine for record in loop.records} == {"loop"}


@settings(max_examples=40, deadline=None)
@given(
    blocks=st.lists(st.integers(min_value=0, max_value=9), min_size=3, max_size=40),
    cache_size=st.integers(min_value=2, max_value=6),
    fetch_time=st.integers(min_value=1, max_value=7),
    delay=st.integers(min_value=0, max_value=9),
)
def test_property_equivalence_on_arbitrary_sequences(blocks, cache_size, fetch_time, delay):
    instance = ProblemInstance.single_disk(
        RequestSequence(blocks), cache_size=cache_size, fetch_time=fetch_time
    )
    for policy_factory in (
        lambda s: Aggressive(),
        lambda s: Aggressive(tiebreak="low"),
        lambda s: Delay(delay),
        lambda s: Combination(),
    ):
        _assert_equivalent(instance, policy_factory, delay)
