"""Unit tests for the engine's runtime indices (SequenceIndex & friends)."""

from __future__ import annotations

from repro._typing import INFINITY
from repro.disksim import DiskLayout, EvictionHeap, MissTracker, RequestSequence, SequenceIndex


def _tracker(sequence, present=(), layout=None):
    return SequenceIndex(sequence, layout).make_miss_tracker(present)


class TestSequenceIndex:
    def test_partitions_blocks_by_disk(self):
        layout = DiskLayout.partitioned([["a", "b"], ["x"]])
        index = SequenceIndex(RequestSequence(["a", "x", "b", "a"]), layout)
        assert sorted(index.blocks_by_disk[0]) == ["a", "b"]
        assert sorted(index.blocks_by_disk[1]) == ["x"]

    def test_single_disk_collapses_to_one_partition(self):
        index = SequenceIndex(RequestSequence(["a", "b", "a"]))
        assert len(index.blocks_by_disk) == 1
        assert sorted(index.blocks_by_disk[0]) == ["a", "b"]

    def test_empty_sequence(self):
        index = SequenceIndex(RequestSequence([], allow_empty=True))
        tracker = index.make_miss_tracker(())
        assert tracker.next_missing(0) is None

    def test_for_parts_caches_per_identity(self):
        seq = RequestSequence(["a", "b"])
        layout = DiskLayout.single()
        assert SequenceIndex.for_parts(seq, layout) is SequenceIndex.for_parts(seq, layout)


class TestMissTracker:
    def test_initial_miss_is_first_use(self):
        tracker = _tracker(RequestSequence(["a", "b", "a", "c"]), present=["a"])
        # 'a' is present; the first absent block is b at position 1.
        assert tracker.next_missing(0) == 1

    def test_repeated_blocks_report_first_occurrence_only(self):
        tracker = _tracker(RequestSequence(["a", "a", "a", "b", "b"]))
        assert tracker.next_missing(0) == 0
        tracker.mark_present("a")
        assert tracker.next_missing(0) == 3

    def test_eviction_rekeys_at_next_occurrence(self):
        seq = RequestSequence(["a", "b", "a", "b", "a"])
        tracker = _tracker(seq, present=["a", "b"])
        assert tracker.next_missing(0) is None
        tracker.mark_absent("a", 1)  # evicted once the cursor reached 1
        assert tracker.next_missing(1) == 2

    def test_never_reused_block_eviction_is_invisible(self):
        seq = RequestSequence(["a", "b"])
        tracker = _tracker(seq, present=["a", "b"])
        tracker.mark_absent("a", 2)  # after its last (only) use
        assert tracker.next_missing(2) is None

    def test_stale_entries_from_earlier_absence_are_dropped(self):
        seq = RequestSequence(["a", "b", "a", "b", "a", "b"])
        tracker = _tracker(seq, present=["a"])
        assert tracker.next_missing(0) == 1  # b missing at 1
        tracker.mark_present("b")            # fetched
        tracker.mark_absent("b", 4)          # evicted again later
        # The old entry (position 1) must not resurface at cursor 4.
        assert tracker.next_missing(4) == 5

    def test_exclude_skips_promised_blocks(self):
        seq = RequestSequence(["a", "b", "c"])
        tracker = _tracker(seq)
        assert tracker.next_missing(0) == 0
        assert tracker.next_missing(0, exclude={"a"}) == 1
        assert tracker.next_missing(0, exclude={"a", "b", "c"}) is None
        # Exclusion must not consume the stashed entries.
        assert tracker.next_missing(0) == 0

    def test_per_disk_queries(self):
        layout = DiskLayout.partitioned([["a", "b"], ["x", "y"]])
        seq = RequestSequence(["a", "x", "b", "y"])
        tracker = _tracker(seq, layout=layout)
        assert tracker.next_missing(0, on_disk=0) == 0
        assert tracker.next_missing(0, on_disk=1) == 1
        tracker.mark_present("x")
        assert tracker.next_missing(0, on_disk=1) == 3


class TestEvictionHeap:
    def test_best_is_furthest_next_use(self):
        seq = RequestSequence(["a", "b", "c", "a", "b", "c"])
        heap = EvictionHeap(seq)
        for block in ("a", "b", "c"):
            heap.add(block, 0)
        # Next uses from 0: a->0, b->1, c->2; furthest is c.
        assert heap.best(0) == "c"

    def test_ties_break_by_string_repr(self):
        seq = RequestSequence(["a", "b"])  # both then never reused
        heap = EvictionHeap(seq)
        heap.add("a", 2)
        heap.add("b", 2)
        # Both have next use INFINITY; max str wins, matching the scan engine.
        assert heap.best(2) == "b"

    def test_on_serve_refreshes_key(self):
        seq = RequestSequence(["a", "b", "a", "b"])
        heap = EvictionHeap(seq)
        heap.add("a", 0)
        heap.add("b", 0)
        assert heap.best(0) == "b"  # a->0, b->1
        heap.on_serve(0)            # serve a; its next use jumps to 2
        assert heap.best(1) == "a"  # a->2 beats b->1

    def test_discard_removes_block(self):
        seq = RequestSequence(["a", "b"])
        heap = EvictionHeap(seq)
        heap.add("a", 0)
        heap.add("b", 0)
        heap.discard("b")
        assert heap.best(0) == "a"
        heap.discard("a")
        assert heap.best(0) is None

    def test_exclude_preserves_entries(self):
        seq = RequestSequence(["a", "b", "a", "b"])
        heap = EvictionHeap(seq)
        heap.add("a", 0)
        heap.add("b", 0)
        assert heap.best(0, exclude={"b"}) == "a"
        assert heap.best(0) == "b"

    def test_never_reused_block_has_infinite_key(self):
        seq = RequestSequence(["a", "b", "a"])
        heap = EvictionHeap(seq)
        heap.add("b", 2)  # added after its only use: next use is INFINITY
        assert heap.best(2) == "b"
        assert heap.next_use_of_best(2) == INFINITY
