"""Tests for repro.disksim.sequence."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._typing import INFINITY
from repro.disksim import RequestSequence
from repro.errors import InvalidSequenceError

SEQ = RequestSequence(["a", "b", "a", "c", "b", "a"])


class TestBasics:
    def test_length_and_indexing(self):
        assert len(SEQ) == 6
        assert SEQ[0] == "a"
        assert SEQ[-1] == "a"

    def test_slicing_returns_sequence(self):
        part = SEQ[1:4]
        assert isinstance(part, RequestSequence)
        assert list(part) == ["b", "a", "c"]

    def test_equality_with_list_and_sequence(self):
        assert SEQ == ["a", "b", "a", "c", "b", "a"]
        assert SEQ == RequestSequence(["a", "b", "a", "c", "b", "a"])
        assert SEQ != RequestSequence(["a", "b"])

    def test_hashable(self):
        assert hash(SEQ) == hash(RequestSequence(list(SEQ)))

    def test_empty_rejected_by_default(self):
        with pytest.raises(InvalidSequenceError):
            RequestSequence([])

    def test_empty_allowed_when_requested(self):
        assert len(RequestSequence([], allow_empty=True)) == 0

    def test_none_request_rejected(self):
        with pytest.raises(InvalidSequenceError):
            RequestSequence(["a", None])

    def test_distinct_blocks(self):
        assert SEQ.distinct_blocks == {"a", "b", "c"}
        assert SEQ.num_distinct == 3


class TestQueries:
    def test_positions(self):
        assert SEQ.positions("a") == (0, 2, 5)
        assert SEQ.positions("missing") == ()

    def test_first_and_last_use(self):
        assert SEQ.first_use("b") == 1
        assert SEQ.last_use("b") == 4
        assert SEQ.first_use("zz") == INFINITY
        assert SEQ.last_use("zz") == -1

    def test_next_use_from(self):
        assert SEQ.next_use_from(0, "a") == 0
        assert SEQ.next_use_from(1, "a") == 2
        assert SEQ.next_use_from(3, "a") == 5
        assert SEQ.next_use_from(6, "a") == INFINITY

    def test_next_use_after(self):
        assert SEQ.next_use_after(0, "a") == 2
        assert SEQ.next_use_after(5, "a") == INFINITY

    def test_previous_use_before(self):
        assert SEQ.previous_use_before(5, "a") == 2
        assert SEQ.previous_use_before(0, "a") == -1

    def test_next_use_chain_matches_next_use_after(self):
        for pos in range(len(SEQ)):
            assert SEQ.next_use_chain(pos) == SEQ.next_use_after(pos, SEQ[pos])

    def test_uses_between(self):
        assert SEQ.uses_between("a", 0, 6) == 3
        assert SEQ.uses_between("a", 1, 5) == 1
        assert SEQ.uses_between("c", 0, 3) == 0

    def test_is_requested_in(self):
        assert SEQ.is_requested_in("c", 2, 5)
        assert not SEQ.is_requested_in("c", 4, 6)

    def test_distinct_in_window(self):
        assert SEQ.distinct_in_window(1, 4) == {"b", "a", "c"}
        assert SEQ.distinct_in_window(-5, 2) == {"a", "b"}


class TestCombinators:
    def test_reversed(self):
        assert list(SEQ.reversed()) == ["a", "b", "c", "a", "b", "a"]

    def test_concat(self):
        combined = SEQ.concat(["x", "y"])
        assert len(combined) == 8
        assert combined[-1] == "y"

    def test_repeat(self):
        assert len(SEQ.repeat(3)) == 18
        with pytest.raises(InvalidSequenceError):
            SEQ.repeat(-1)

    def test_relabelled(self):
        renamed = SEQ.relabelled({"a": "A"})
        assert renamed.positions("A") == (0, 2, 5)
        assert not renamed.contains_block("a")
        assert renamed.positions("b") == (1, 4)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=40))
def test_next_use_matches_linear_scan(blocks):
    """next_use_from agrees with a naive linear scan on arbitrary sequences."""
    seq = RequestSequence(blocks)
    for pos in range(len(seq) + 1):
        for block in set(blocks):
            expected = INFINITY
            for j in range(pos, len(blocks)):
                if blocks[j] == block:
                    expected = j
                    break
            assert seq.next_use_from(pos, block) == expected


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=30))
def test_positions_partition_the_sequence(blocks):
    """Every request position appears in exactly one block's position list."""
    seq = RequestSequence(blocks)
    all_positions = sorted(p for b in seq.distinct_blocks for p in seq.positions(b))
    assert all_positions == list(range(len(seq)))
