"""Tests for repro.disksim.instance."""

from __future__ import annotations

import pytest

from repro.disksim import DiskLayout, ProblemInstance, RequestSequence
from repro.errors import ConfigurationError


class TestConstruction:
    def test_single_disk_constructor(self):
        inst = ProblemInstance.single_disk(["a", "b", "a"], cache_size=2, fetch_time=3)
        assert inst.num_disks == 1
        assert inst.num_requests == 3
        assert inst.requested_blocks == {"a", "b"}
        assert isinstance(inst.sequence, RequestSequence)

    def test_parallel_disk_constructor(self):
        layout = DiskLayout.partitioned([["a"], ["b"]])
        inst = ProblemInstance.parallel_disk(["a", "b"], 2, 2, layout)
        assert inst.num_disks == 2
        assert inst.disk_of("b") == 1

    def test_plain_sequence_coerced(self):
        inst = ProblemInstance(sequence=["a", "b"], cache_size=1, fetch_time=1)
        assert isinstance(inst.sequence, RequestSequence)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cache_size": 0, "fetch_time": 1},
            {"cache_size": 1, "fetch_time": 0},
            {"cache_size": 1, "fetch_time": 1, "initial_cache": ["x", "y"]},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            ProblemInstance.single_disk(["a"], **kwargs)


class TestDerived:
    def test_cold_misses(self):
        inst = ProblemInstance.single_disk(
            ["a", "b", "c", "a"], cache_size=3, fetch_time=2, initial_cache=["a", "x"]
        )
        assert inst.cold_misses() == 2  # b and c

    def test_with_cache_size_and_extra(self):
        inst = ProblemInstance.single_disk(["a"], cache_size=2, fetch_time=2)
        assert inst.with_cache_size(5).cache_size == 5
        assert inst.with_extra_cache(3).cache_size == 5
        with pytest.raises(ConfigurationError):
            inst.with_extra_cache(-1)

    def test_with_initial_cache(self):
        inst = ProblemInstance.single_disk(["a", "b"], cache_size=2, fetch_time=2)
        warm = inst.with_initial_cache(["a"])
        assert warm.initial_cache == frozenset({"a"})
        assert inst.initial_cache == frozenset()

    def test_describe_mentions_key_parameters(self):
        inst = ProblemInstance.single_disk(["a", "b"], cache_size=7, fetch_time=5)
        text = inst.describe()
        assert "k=7" in text and "F=5" in text and "n=2" in text
