"""Engine auto-selection is explainable: the fallback reason is reported.

When ``engine="auto"``/``"vector"`` falls back to the loop engine, the
result's ``engine_reason`` (and :func:`~repro.disksim.vector.
ineligibility_reason`) must say why — the runner logs it, so a sweep that
silently ran 10x slower than expected is diagnosable from the debug log.
"""

from __future__ import annotations

import pytest

from helpers import random_instance
from repro.algorithms import make_algorithm
from repro.disksim import ineligibility_reason, numpy_available, simulate_with_engine


def test_loop_engine_sets_no_reason():
    result, engine = simulate_with_engine(
        random_instance(0), make_algorithm("aggressive"), engine="loop"
    )
    assert engine == "loop"
    assert result.engine_reason is None


def test_auto_on_parallel_instance_reports_reason():
    instance = random_instance(151, parallel=True)
    result, engine = simulate_with_engine(
        instance, make_algorithm("parallel-aggressive"), engine="auto"
    )
    assert engine == "loop"
    assert result.engine_reason is not None
    if numpy_available():
        assert result.engine_reason == "parallel-disk instance"
    else:
        assert result.engine_reason == "numpy not importable"


@pytest.mark.skipif(not numpy_available(), reason="needs numpy")
def test_ineligibility_reason_matches_plan_coverage():
    instance = random_instance(0)
    # Conservative has no vector kernel plan; Aggressive does.
    reason = ineligibility_reason(instance, make_algorithm("conservative"))
    assert reason is not None and "no vector kernel plan" in reason
    assert ineligibility_reason(instance, make_algorithm("aggressive")) is None

    parallel = random_instance(151, parallel=True)
    assert (
        ineligibility_reason(parallel, make_algorithm("parallel-aggressive"))
        == "parallel-disk instance"
    )


@pytest.mark.skipif(not numpy_available(), reason="needs numpy")
def test_vector_covered_run_sets_no_reason():
    instance = random_instance(0)
    result, engine = simulate_with_engine(
        instance, make_algorithm("aggressive"), engine="auto"
    )
    if engine == "vector":
        assert result.engine_reason is None
    else:  # pragma: no cover - only without a vector-covered plan
        assert result.engine_reason is not None
