"""Tests for repro.disksim.cache."""

from __future__ import annotations

import pytest

from repro.disksim import CacheState
from repro.errors import CacheError, ConfigurationError


class TestConstruction:
    def test_initial_contents(self):
        cache = CacheState(3, ["a", "b"])
        assert cache.contains("a")
        assert cache.contains("b")
        assert not cache.contains("c")
        assert cache.capacity == 3
        assert cache.free_slots == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheState(0)

    def test_overfull_initial_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheState(1, ["a", "b"])


class TestFetchLifecycle:
    def test_start_and_complete_fetch_with_victim(self):
        cache = CacheState(2, ["a", "b"])
        cache.start_fetch("c", "a")
        assert not cache.contains("a")
        assert cache.is_incoming("c")
        assert not cache.contains("c")
        assert cache.used_slots == 2
        cache.complete_fetch("c")
        assert cache.contains("c")
        assert not cache.is_incoming("c")

    def test_start_fetch_into_free_slot(self):
        cache = CacheState(2, ["a"])
        cache.start_fetch("b", None)
        assert cache.free_slots == 0
        cache.complete_fetch("b")
        assert cache.contains("b")

    def test_fetch_requires_free_slot_when_no_victim(self):
        cache = CacheState(1, ["a"])
        with pytest.raises(CacheError):
            cache.start_fetch("b", None)

    def test_fetch_of_resident_block_rejected(self):
        cache = CacheState(2, ["a"])
        with pytest.raises(CacheError):
            cache.start_fetch("a", None)

    def test_duplicate_inflight_fetch_rejected(self):
        cache = CacheState(3, ["a"])
        cache.start_fetch("b", None)
        with pytest.raises(CacheError):
            cache.start_fetch("b", None)

    def test_victim_must_be_resident(self):
        cache = CacheState(2, ["a"])
        with pytest.raises(CacheError):
            cache.start_fetch("b", "zzz")

    def test_victim_cannot_equal_block(self):
        cache = CacheState(2, ["a"])
        with pytest.raises(CacheError):
            cache.start_fetch("a", "a")

    def test_complete_without_fetch_rejected(self):
        cache = CacheState(2, ["a"])
        with pytest.raises(CacheError):
            cache.complete_fetch("b")


class TestOtherTransitions:
    def test_evict(self):
        cache = CacheState(2, ["a", "b"])
        cache.evict("a")
        assert not cache.contains("a")
        with pytest.raises(CacheError):
            cache.evict("a")

    def test_insert(self):
        cache = CacheState(2, ["a"])
        cache.insert("b")
        assert cache.contains("b")
        with pytest.raises(CacheError):
            cache.insert("b")

    def test_insert_requires_space(self):
        cache = CacheState(1, ["a"])
        with pytest.raises(CacheError):
            cache.insert("b")

    def test_copy_is_independent(self):
        cache = CacheState(3, ["a"])
        cache.start_fetch("b", None)
        clone = cache.copy()
        clone.complete_fetch("b")
        assert clone.contains("b")
        assert not cache.contains("b")
        assert cache.is_incoming("b")

    def test_len_and_contains_protocols(self):
        cache = CacheState(3, ["a", "b"])
        assert len(cache) == 2
        assert "a" in cache
        assert "z" not in cache
