"""Tests for repro.disksim.metrics and repro.disksim.events."""

from __future__ import annotations

from repro.disksim import Event, EventKind, EventLog, SimMetrics


class TestSimMetrics:
    def test_elapsed_and_rates(self):
        metrics = SimMetrics(
            num_requests=10,
            stall_time=4,
            num_fetches=3,
            cache_hits=7,
            cache_misses=3,
            peak_cache_used=5,
        )
        assert metrics.elapsed_time == 14
        assert metrics.hit_rate == 0.7
        assert metrics.average_stall_per_request == 0.4
        assert metrics.extra_cache_used(4) == 1
        assert metrics.extra_cache_used(6) == 0

    def test_ratios(self):
        a = SimMetrics(num_requests=10, stall_time=6, num_fetches=2)
        b = SimMetrics(num_requests=10, stall_time=3, num_fetches=2)
        zero = SimMetrics(num_requests=10, stall_time=0, num_fetches=0)
        assert a.stall_ratio_to(b) == 2.0
        assert a.elapsed_ratio_to(b) == 16 / 13
        assert a.stall_ratio_to(zero) == float("inf")
        assert zero.stall_ratio_to(zero) == 1.0

    def test_as_dict_round_trip(self):
        metrics = SimMetrics(num_requests=5, stall_time=1, num_fetches=2,
                             fetches_per_disk={0: 2})
        payload = metrics.as_dict()
        assert payload["elapsed_time"] == 6
        assert payload["fetches_per_disk"] == {0: 2}


class TestEventLog:
    def test_record_and_query(self):
        log = EventLog()
        log.record(Event(0, EventKind.FETCH_START, block="a", disk=0))
        log.record(Event(0, EventKind.STALL, block="a", duration=3))
        log.record(Event(3, EventKind.SERVE, block="a", request_index=0, duration=1))
        assert len(log) == 3
        assert log.total_stall() == 3
        assert len(log.fetch_starts()) == 1
        assert len(log.serves()) == 1
        assert log.last_time() == 4
        assert log[0].kind is EventKind.FETCH_START

    def test_empty_log(self):
        log = EventLog()
        assert log.total_stall() == 0
        assert log.last_time() == 0
        assert list(log) == []
