"""Indexed engine vs the scan reference: byte-identical results.

The indexed engine (``engine="indexed"``, the default) must be a pure
performance transformation of the seed's scan engine: on every instance and
policy the :class:`Schedule` (every fetch, start time, disk, victim) and the
:class:`SimMetrics` must match exactly.  These tests sweep well over 200
deterministic randomized instances — single- and parallel-disk — across all
policy families, plus a hypothesis property for free-form sequences.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import random_instance
from repro.algorithms import (
    Aggressive,
    Combination,
    Conservative,
    Delay,
    DemandFetch,
    ParallelAggressive,
    ParallelConservative,
)
from repro.disksim import (
    FetchDecision,
    ProblemInstance,
    RequestSequence,
    execute_schedule,
    simulate,
)

SINGLE_DISK_FACTORIES = (
    lambda seed: Aggressive(),
    lambda seed: Conservative(),
    lambda seed: Delay(seed % 11),
    lambda seed: Combination(),
    lambda seed: DemandFetch(),
)

PARALLEL_FACTORIES = (
    lambda seed: ParallelAggressive(),
    lambda seed: ParallelConservative(),
    lambda seed: DemandFetch(),
)


def _assert_equivalent(instance, policy_factory, seed):
    scan = simulate(instance, policy_factory(seed), engine="scan")
    indexed = simulate(instance, policy_factory(seed), engine="indexed")
    assert indexed.schedule == scan.schedule, f"schedules diverge (seed {seed})"
    assert indexed.metrics == scan.metrics, f"metrics diverge (seed {seed})"


@pytest.mark.parametrize("seed", range(150))
def test_single_disk_equivalence(seed):
    """150 single-disk instances, two policy families each (rotating)."""
    instance = random_instance(seed)
    _assert_equivalent(instance, SINGLE_DISK_FACTORIES[seed % 5], seed)
    _assert_equivalent(instance, SINGLE_DISK_FACTORIES[(seed + 2) % 5], seed)


@pytest.mark.parametrize("seed", range(150, 225))
def test_parallel_disk_equivalence(seed):
    """75 parallel-disk instances, two policy families each (rotating)."""
    instance = random_instance(seed, parallel=True)
    _assert_equivalent(instance, PARALLEL_FACTORIES[seed % 3], seed)
    _assert_equivalent(instance, PARALLEL_FACTORIES[(seed + 1) % 3], seed)


class _PastJudgingPolicy:
    """Calls furthest_resident with a from_position *behind* the cursor.

    No shipped policy does this, but the PolicyView contract places no
    precondition on from_position, so both engines must agree on it too.
    """

    name = "past-judging"

    def reset(self, instance):
        pass

    def decide(self, view):
        if not view.is_idle(0):
            return []
        target = view.next_missing_position()
        if target is None or view.free_slots > 0:
            return []
        victim = view.furthest_resident(from_position=max(0, view.cursor - 2))
        if victim is None or view.next_use(victim) <= target:
            return []
        return [FetchDecision(disk=0, block=view.instance.sequence[target], victim=victim)]


@pytest.mark.parametrize("seed", range(0, 40, 5))
def test_past_from_position_equivalence(seed):
    instance = random_instance(seed)
    _assert_equivalent(instance, lambda s: _PastJudgingPolicy(), seed)


@pytest.mark.parametrize("seed", range(0, 60, 7))
def test_replay_equivalence(seed):
    """Replaying an indexed schedule through both engines matches too."""
    instance = random_instance(seed)
    result = simulate(instance, Aggressive())
    replay_scan = execute_schedule(instance, result.schedule, engine="scan")
    replay_indexed = execute_schedule(instance, result.schedule, engine="indexed")
    assert replay_indexed.schedule == replay_scan.schedule
    assert replay_indexed.metrics == replay_scan.metrics
    assert replay_indexed.metrics.stall_time == result.metrics.stall_time


@settings(max_examples=40, deadline=None)
@given(
    blocks=st.lists(st.integers(min_value=0, max_value=9), min_size=3, max_size=40),
    cache_size=st.integers(min_value=2, max_value=6),
    fetch_time=st.integers(min_value=1, max_value=7),
    delay=st.integers(min_value=0, max_value=9),
)
def test_property_equivalence_on_arbitrary_sequences(blocks, cache_size, fetch_time, delay):
    instance = ProblemInstance.single_disk(
        RequestSequence(blocks), cache_size=cache_size, fetch_time=fetch_time
    )
    for policy_factory in (lambda s: Aggressive(), lambda s: Delay(delay), lambda s: DemandFetch()):
        _assert_equivalent(instance, policy_factory, delay)
