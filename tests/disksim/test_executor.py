"""Tests for the simulation engine and the schedule replay validator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import Aggressive, Conservative, DemandFetch
from repro.disksim import (
    EventKind,
    FetchDecision,
    IntervalFetch,
    IntervalSchedule,
    ProblemInstance,
    RequestSequence,
    execute_interval_schedule,
    execute_schedule,
    simulate,
)
from repro.errors import InvalidScheduleError, PolicyError
from repro.workloads import single_disk_example


class _NoOpPolicy:
    """A policy that never prefetches: every miss becomes a forced demand fetch."""

    name = "noop"

    def reset(self, instance):
        pass

    def decide(self, view):
        return []


class _BadDiskPolicy:
    name = "bad-disk"

    def reset(self, instance):
        pass

    def decide(self, view):
        return [FetchDecision(disk=5, block="a", victim=None)]


class TestSimulate:
    def test_paper_example_aggressive(self, paper_single):
        result = simulate(paper_single, Aggressive())
        assert result.elapsed_time == 13
        assert result.stall_time == 3
        assert result.metrics.num_fetches == 2

    def test_elapsed_equals_requests_plus_stall(self, small_cold_instance):
        for algorithm in (Aggressive(), Conservative(), DemandFetch()):
            result = simulate(small_cold_instance, algorithm)
            assert result.elapsed_time == small_cold_instance.num_requests + result.stall_time

    def test_event_log_consistency(self, small_warm_instance):
        result = simulate(small_warm_instance, Aggressive())
        serves = result.events.serves()
        assert len(serves) == small_warm_instance.num_requests
        assert result.events.total_stall() == result.stall_time
        # Serve events must appear in request order.
        assert [e.request_index for e in serves] == list(range(small_warm_instance.num_requests))

    def test_forced_demand_fetch_for_lazy_policy(self, small_cold_instance):
        result = simulate(small_cold_instance, _NoOpPolicy())
        # The engine fetched every distinct block despite the policy doing nothing.
        assert result.metrics.num_fetches >= small_cold_instance.cold_misses()
        assert result.metrics.num_demand_fetches == result.metrics.num_fetches
        # Demand fetching pays the full fetch time for each forced fetch.
        assert result.stall_time >= small_cold_instance.cold_misses() * (
            small_cold_instance.fetch_time - 1
        )

    def test_invalid_policy_decision_raises(self, small_cold_instance):
        with pytest.raises(PolicyError):
            simulate(small_cold_instance, _BadDiskPolicy())

    def test_hits_plus_misses_equals_requests(self, small_warm_instance):
        result = simulate(small_warm_instance, Aggressive())
        metrics = result.metrics
        assert metrics.cache_hits + metrics.cache_misses == small_warm_instance.num_requests

    def test_peak_cache_never_exceeds_capacity(self, small_cold_instance):
        result = simulate(small_cold_instance, Aggressive())
        assert result.metrics.peak_cache_used <= small_cold_instance.cache_size


class TestExecuteSchedule:
    def test_round_trip_matches_simulation(self, paper_single):
        for algorithm in (Aggressive(), Conservative(), DemandFetch()):
            result = simulate(paper_single, algorithm)
            replay = execute_schedule(paper_single, result.schedule)
            assert replay.stall_time == result.stall_time
            assert replay.elapsed_time == result.elapsed_time
            assert replay.metrics.num_fetches == result.metrics.num_fetches

    def test_infeasible_schedule_detected(self, small_cold_instance):
        # An empty schedule cannot serve a cold-start instance.
        from repro.disksim import Schedule

        empty = Schedule(
            fetch_time=small_cold_instance.fetch_time, num_disks=1, fetches=()
        )
        with pytest.raises(InvalidScheduleError):
            execute_schedule(small_cold_instance, empty)


class TestExecuteIntervalSchedule:
    def test_paper_good_schedule(self):
        from repro.workloads import single_disk_example_good_schedule

        inst = single_disk_example()
        result = execute_interval_schedule(inst, single_disk_example_good_schedule())
        assert result.elapsed_time == 11
        assert result.stall_time == 1

    def test_actual_stall_never_exceeds_charged(self):
        from repro.workloads import single_disk_example_greedy_schedule

        inst = single_disk_example()
        schedule = single_disk_example_greedy_schedule()
        result = execute_interval_schedule(inst, schedule)
        assert result.stall_time <= schedule.charged_stall()

    def test_missing_fetch_detected(self):
        inst = ProblemInstance.single_disk(["a", "b"], cache_size=1, fetch_time=2)
        schedule = IntervalSchedule(
            fetch_time=2,
            num_disks=1,
            num_requests=2,
            fetches=(IntervalFetch(start_pos=0, end_pos=1, disk=0, block="a"),),
        )
        with pytest.raises(InvalidScheduleError):
            execute_interval_schedule(inst, schedule)

    def test_capacity_override(self):
        inst = ProblemInstance.single_disk(
            ["a", "b", "c"], cache_size=1, fetch_time=1, initial_cache=["a"]
        )
        schedule = IntervalSchedule(
            fetch_time=1,
            num_disks=1,
            num_requests=3,
            fetches=(
                IntervalFetch(start_pos=0, end_pos=2, disk=0, block="b", victim=None),
                IntervalFetch(start_pos=1, end_pos=3, disk=0, block="c", victim=None),
            ),
            initial_cache=frozenset({"a"}),
        )
        result = execute_interval_schedule(inst, schedule, capacity_override=3)
        assert result.metrics.peak_cache_used == 3


@settings(max_examples=25, deadline=None)
@given(
    blocks=st.lists(st.integers(min_value=0, max_value=6), min_size=4, max_size=25),
    cache_size=st.integers(min_value=2, max_value=5),
    fetch_time=st.integers(min_value=1, max_value=5),
)
def test_property_simulation_invariants(blocks, cache_size, fetch_time):
    """Structural invariants hold for every algorithm on arbitrary instances."""
    instance = ProblemInstance.single_disk(
        RequestSequence(blocks), cache_size=cache_size, fetch_time=fetch_time
    )
    for algorithm in (Aggressive(), Conservative(), DemandFetch()):
        result = simulate(instance, algorithm)
        # 1. elapsed = n + stall
        assert result.elapsed_time == len(blocks) + result.stall_time
        # 2. the schedule replays to identical metrics (no self-mis-accounting)
        replay = execute_schedule(instance, result.schedule)
        assert replay.stall_time == result.stall_time
        # 3. capacity respected
        assert result.metrics.peak_cache_used <= cache_size
        # 4. every distinct block missing from the initial cache is fetched
        assert result.metrics.num_fetches >= instance.cold_misses()
