"""Tests for repro.disksim.schedule."""

from __future__ import annotations

import pytest

from repro.disksim import IntervalFetch, IntervalSchedule, Schedule, TimedFetch
from repro.errors import InvalidScheduleError


class TestTimedSchedule:
    def test_sorted_and_counts(self):
        schedule = Schedule(
            fetch_time=3,
            num_disks=1,
            fetches=(
                TimedFetch(start_time=5, disk=0, block="b"),
                TimedFetch(start_time=0, disk=0, block="a", victim="x"),
            ),
        )
        assert schedule.num_fetches == 2
        assert [op.block for op in schedule.fetches] == ["a", "b"]
        assert schedule.blocks_fetched() == {"a", "b"}
        assert schedule.fetches_starting_at(5)[0].block == "b"

    def test_overlap_on_same_disk_rejected(self):
        with pytest.raises(InvalidScheduleError):
            Schedule(
                fetch_time=4,
                num_disks=1,
                fetches=(
                    TimedFetch(start_time=0, disk=0, block="a"),
                    TimedFetch(start_time=2, disk=0, block="b"),
                ),
            )

    def test_overlap_on_different_disks_allowed(self):
        schedule = Schedule(
            fetch_time=4,
            num_disks=2,
            fetches=(
                TimedFetch(start_time=0, disk=0, block="a"),
                TimedFetch(start_time=2, disk=1, block="b"),
            ),
        )
        assert schedule.num_fetches == 2
        assert not schedule.is_synchronized()

    def test_synchronized_detection(self):
        schedule = Schedule(
            fetch_time=4,
            num_disks=2,
            fetches=(
                TimedFetch(start_time=0, disk=0, block="a"),
                TimedFetch(start_time=0, disk=1, block="b"),
                TimedFetch(start_time=6, disk=0, block="c"),
            ),
        )
        assert schedule.is_synchronized()

    def test_unknown_disk_rejected(self):
        with pytest.raises(InvalidScheduleError):
            Schedule(
                fetch_time=2,
                num_disks=1,
                fetches=(TimedFetch(start_time=0, disk=1, block="a"),),
            )

    def test_extra_cache_structural_bound(self):
        schedule = Schedule(
            fetch_time=2,
            num_disks=1,
            fetches=(
                TimedFetch(start_time=0, disk=0, block="a", victim=None),
                TimedFetch(start_time=3, disk=0, block="b", victim="a"),
            ),
            initial_cache=frozenset({"x", "y"}),
        )
        assert schedule.extra_cache_used(base_capacity=2) == 1
        assert schedule.extra_cache_used(base_capacity=3) == 0

    def test_finish_time(self):
        op = TimedFetch(start_time=7, disk=0, block="a")
        assert op.finish_time(4) == 11


class TestIntervalSchedule:
    def test_interval_lengths_and_stall(self):
        op = IntervalFetch(start_pos=2, end_pos=6, disk=0, block="b5", victim="b2")
        assert op.length == 3
        assert op.charged_stall(4) == 1
        assert op.charged_stall(2) == 0

    def test_empty_interval_rejected(self):
        with pytest.raises(InvalidScheduleError):
            IntervalFetch(start_pos=3, end_pos=3, disk=0, block="a")

    def test_schedule_validation(self):
        with pytest.raises(InvalidScheduleError):
            IntervalSchedule(
                fetch_time=4,
                num_disks=1,
                num_requests=5,
                fetches=(IntervalFetch(start_pos=0, end_pos=9, disk=0, block="a"),),
            )
        with pytest.raises(InvalidScheduleError):
            IntervalSchedule(
                fetch_time=4,
                num_disks=1,
                num_requests=5,
                fetches=(IntervalFetch(start_pos=0, end_pos=2, disk=3, block="a"),),
            )

    def test_charged_stall_counts_distinct_intervals_once(self):
        schedule = IntervalSchedule(
            fetch_time=4,
            num_disks=2,
            num_requests=10,
            fetches=(
                IntervalFetch(start_pos=1, end_pos=4, disk=0, block="a"),
                IntervalFetch(start_pos=1, end_pos=4, disk=1, block="b"),
                IntervalFetch(start_pos=5, end_pos=10, disk=0, block="c"),
            ),
        )
        # interval (1,4) charged 2 once (not twice), interval (5,10) charged 0.
        assert schedule.charged_stall() == 2
        assert schedule.start_positions() == (1, 5)

    def test_fetches_sorted_canonically(self):
        schedule = IntervalSchedule(
            fetch_time=2,
            num_disks=1,
            num_requests=6,
            fetches=(
                IntervalFetch(start_pos=3, end_pos=5, disk=0, block="b"),
                IntervalFetch(start_pos=0, end_pos=2, disk=0, block="a"),
            ),
        )
        assert [op.block for op in schedule.fetches] == ["a", "b"]
        assert schedule.fetches_starting_at(3)[0].block == "b"
