"""Tests for repro.disksim.disk (DiskLayout)."""

from __future__ import annotations

import pytest

from repro.disksim import DiskLayout
from repro.errors import ConfigurationError


class TestConstruction:
    def test_single(self):
        layout = DiskLayout.single()
        assert layout.num_disks == 1
        assert layout.disk_of("anything") == 0

    def test_from_mapping(self):
        layout = DiskLayout.from_mapping({"a": 0, "b": 2})
        assert layout.num_disks == 3
        assert layout.disk_of("b") == 2

    def test_invalid_disk_in_mapping(self):
        with pytest.raises(ConfigurationError):
            DiskLayout(2, {"a": 5})

    def test_invalid_num_disks(self):
        with pytest.raises(ConfigurationError):
            DiskLayout(0)

    def test_invalid_default_disk(self):
        with pytest.raises(ConfigurationError):
            DiskLayout(2, {}, default_disk=3)


class TestPlacements:
    def test_striped_round_robin(self):
        layout = DiskLayout.striped(["a", "b", "c", "d", "e"], 2)
        assert layout.disk_of("a") == 0
        assert layout.disk_of("b") == 1
        assert layout.disk_of("c") == 0
        assert len(layout.blocks_on(0)) == 3
        assert len(layout.blocks_on(1)) == 2

    def test_hashed_is_deterministic_and_in_range(self):
        blocks = [f"b{i}" for i in range(50)]
        layout1 = DiskLayout.hashed(blocks, 4)
        layout2 = DiskLayout.hashed(blocks, 4)
        for block in blocks:
            assert layout1.disk_of(block) == layout2.disk_of(block)
            assert 0 <= layout1.disk_of(block) < 4

    def test_hashed_uses_every_disk_for_many_blocks(self):
        blocks = [f"b{i}" for i in range(200)]
        layout = DiskLayout.hashed(blocks, 4)
        used = {layout.disk_of(b) for b in blocks}
        assert used == {0, 1, 2, 3}

    def test_partitioned(self):
        layout = DiskLayout.partitioned([["a", "b"], ["c"]])
        assert layout.num_disks == 2
        assert layout.disk_of("c") == 1
        assert layout.blocks_on(0) == {"a", "b"}

    def test_partitioned_conflict_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskLayout.partitioned([["a"], ["a"]])

    def test_partitioned_empty_is_single(self):
        assert DiskLayout.partitioned([]).num_disks == 1


class TestQueries:
    def test_partition_groups_blocks(self):
        layout = DiskLayout.striped(["a", "b", "c"], 2)
        parts = layout.partition(["a", "b", "c", "unmapped"])
        assert parts[0] == {"a", "c", "unmapped"}
        assert parts[1] == {"b"}

    def test_blocks_on_invalid_disk(self):
        with pytest.raises(ConfigurationError):
            DiskLayout.single().blocks_on(3)

    def test_equality(self):
        assert DiskLayout.from_mapping({"a": 1}) == DiskLayout.from_mapping({"a": 1})
        assert DiskLayout.single() != DiskLayout(2)
