"""The HTTP front end: routes, error mapping, and restart over real sockets.

The server binds port 0 (a free ephemeral port) and runs in a daemon thread;
requests go through :mod:`urllib` so the whole stack — routing, JSON bodies,
status codes, content-length framing — is exercised the way a real client
sees it.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.algorithms import make_algorithm
from repro.disksim.executor import simulate
from repro.service import PrefetchService, make_server
from repro.workloads.spec import build_workload_instance


@pytest.fixture
def http_service():
    """A served PrefetchService; yields (call, service), then shuts down."""
    service = PrefetchService()
    server = make_server(service, port=0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def call(method, path, body=None):
        data = None if body is None else json.dumps(body).encode()
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}", data=data, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    try:
        yield call, service
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def test_full_session_round_trip(http_service):
    call, _service = http_service
    code, health = call("GET", "/health")
    assert code == 200 and health["ok"] and health["sessions"] == 0

    code, created = call(
        "POST", "/session", {"algorithm": "aggressive", "cache_size": 8, "fetch_time": 4}
    )
    assert code == 201
    session_id = created["session"]

    instance = build_workload_instance(
        "zipf:n=120,blocks=40,seed=3", cache_size=8, fetch_time=4, disks=1, layout="striped"
    )
    requests = list(instance.sequence.requests)
    code, fed = call("POST", f"/session/{session_id}/requests", {"requests": requests})
    assert code == 200
    assert fed["horizon"] == len(requests)
    assert fed["accepted"] == len(requests)

    code, plan = call("GET", f"/session/{session_id}/plan")
    assert code == 200
    offline = simulate(instance, make_algorithm("aggressive"))
    assert plan["projected"]["stall_time"] == offline.metrics.stall_time
    assert plan["projected"]["elapsed_time"] == offline.metrics.elapsed_time

    code, limited = call("GET", f"/session/{session_id}/plan?limit=1")
    assert code == 200
    assert limited["upcoming"] == plan["upcoming"][:1]

    code, listing = call("GET", "/sessions")
    assert code == 200
    assert [s["session"] for s in listing["sessions"]] == [session_id]
    code, status = call("GET", f"/session/{session_id}")
    assert code == 200 and status["cursor"] == fed["cursor"]


def test_error_mapping(http_service):
    call, _service = http_service
    assert call("GET", "/session/s404/plan")[0] == 404
    assert call("POST", "/session/s404/requests", {"requests": ["a"]})[0] == 404
    code, error = call("POST", "/session", {"algorithm": "definitely-not-registered"})
    assert code == 400 and "definitely-not-registered" in error["error"]
    code, error = call(
        "POST",
        "/session",
        {"algorithm": "aggressive", "cache_size": 4, "fetch_time": 2},
    )
    assert code == 201
    code, error = call("POST", "/session/s1/requests", {"requests": "not-a-list"})
    assert code == 400 and "requests" in error["error"]
    assert call("GET", "/nope")[0] == 404
    assert call("POST", "/nope")[0] == 404


def test_restart_resumes_sessions_over_http(tmp_path):
    state_dir = tmp_path / "state"

    def run_server(fn):
        service = PrefetchService(state_dir=state_dir)
        service.load_all()
        server = make_server(service, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()

        def call(method, path, body=None):
            data = None if body is None else json.dumps(body).encode()
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}{path}", data=data, method=method
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                return json.loads(response.read())

        try:
            return fn(call)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            service.save_all()
            service.close()

    def first(call):
        created = call("POST", "/session", {"algorithm": "demand:evict=lru",
                                            "cache_size": 4, "fetch_time": 3})
        fed = call("POST", f"/session/{created['session']}/requests",
                   {"requests": [f"b{i % 11}" for i in range(60)]})
        return created["session"], fed, call("GET", f"/session/{created['session']}/plan")

    session_id, fed, plan = run_server(first)

    def second(call):
        listing = call("GET", "/sessions")["sessions"]
        return listing, call("GET", f"/session/{session_id}/plan")

    listing, plan_after = run_server(second)
    assert [s["session"] for s in listing] == [session_id]
    assert listing[0]["cursor"] == fed["cursor"]
    assert listing[0]["time"] == fed["time"]
    assert plan_after["projected"] == plan["projected"]
    assert plan_after["upcoming"] == plan["upcoming"]
