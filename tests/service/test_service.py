"""The prefetch service: sessions, persistence, and the replay property.

Covers the transport-free layers of :mod:`repro.service`: session lifecycle
and plan projection, the JSONL journal, snapshot-based restart with zero
recompute, and the satellite property that a ``multiclient:`` workload fed
through a session one request at a time produces a :class:`RunRecord` JSON
document byte-identical to the batch runner's.
"""

from __future__ import annotations

import json

import pytest

from repro.algorithms import make_algorithm
from repro.analysis.results import RunRecord
from repro.disksim.executor import simulate
from repro.errors import ConfigurationError
from repro.service import PrefetchService, SessionRecorder, replay_workload
from repro.workloads.spec import build_workload_instance

MULTICLIENT = "multiclient:clients=6,n=240,shared=10,shared_frac=0.35"


def _instance(spec=MULTICLIENT, cache_size=8, fetch_time=4):
    return build_workload_instance(
        spec, cache_size=cache_size, fetch_time=fetch_time, disks=1, layout="striped"
    )


class TestSessionLifecycle:
    def test_feed_and_plan_match_batch_oracle(self):
        instance = _instance()
        service = PrefetchService()
        session = service.create_session("aggressive", cache_size=8, fetch_time=4)
        assert session.session_id == "s1"
        summary = service.feed("s1", list(instance.sequence.requests))
        assert summary["horizon"] == instance.num_requests
        plan = service.plan("s1")
        offline = simulate(instance, make_algorithm("aggressive"))
        assert plan["projected"]["stall_time"] == offline.metrics.stall_time
        assert plan["projected"]["metrics"] == offline.metrics.as_dict()
        committed = {(f["start_time"], f["disk"], f["block"]) for f in plan["committed"]}
        upcoming = {(f["start_time"], f["disk"], f["block"]) for f in plan["upcoming"]}
        batch = {(f.start_time, f.disk, f.block) for f in offline.schedule.fetches}
        assert committed | upcoming == batch
        assert not committed & upcoming

    def test_empty_session_plan_is_empty(self):
        service = PrefetchService()
        service.create_session("aggressive", cache_size=4, fetch_time=2)
        plan = service.plan("s1")
        assert plan["committed"] == [] and plan["upcoming"] == []
        assert plan["projected"] is None

    def test_unknown_session_is_strict(self):
        service = PrefetchService()
        with pytest.raises(ConfigurationError, match="unknown session"):
            service.feed("s404", ["a"])

    def test_plan_limit_caps_upcoming(self):
        service = PrefetchService()
        session = service.create_session("conservative", cache_size=4, fetch_time=3)
        session.feed([f"b{i % 9}" for i in range(40)])
        full = service.plan("s1")
        capped = service.plan("s1", limit=2)
        assert capped["upcoming"] == full["upcoming"][:2]


class TestPersistence:
    def test_restart_resumes_every_session_with_zero_recompute(self, tmp_path):
        instance = _instance()
        requests = list(instance.sequence.requests)
        service = PrefetchService(state_dir=tmp_path)
        service.create_session("aggressive", cache_size=8, fetch_time=4)
        service.create_session("demand:evict=lru", cache_size=8, fetch_time=4)
        service.feed("s1", requests[:150])
        service.feed("s2", requests[:150])
        before = {sid: service.get(sid).describe() for sid in ("s1", "s2")}
        service.save_all()
        service.close()

        revived = PrefetchService(state_dir=tmp_path)
        assert revived.load_all() == ["s1", "s2"]
        for sid, summary in before.items():
            after = revived.get(sid).describe()
            # Zero recompute: the revived cursor/clock equal the saved ones.
            assert after == summary
        # Ids allocated after a restart never collide with revived sessions.
        assert revived.create_session("aggressive", cache_size=4, fetch_time=2).session_id == "s3"

        # Feeding the rest and finishing equals the uninterrupted batch run.
        revived.feed("s1", requests[150:])
        result = revived.get("s1").finish()
        offline = simulate(instance, make_algorithm("aggressive"))
        assert result.schedule == offline.schedule
        assert result.metrics == offline.metrics

    def test_save_without_state_dir_is_an_error(self):
        with pytest.raises(ConfigurationError):
            PrefetchService().save_all()

    def test_journal_continues_across_restart(self, tmp_path):
        service = PrefetchService(state_dir=tmp_path)
        service.create_session("aggressive", cache_size=4, fetch_time=2)
        service.feed("s1", ["a", "b"])
        service.save_all()
        service.close()

        revived = PrefetchService(state_dir=tmp_path)
        revived.load_all()
        revived.feed("s1", ["c"])
        entries = SessionRecorder.read(tmp_path / "s1.events.jsonl")
        assert [entry["seq"] for entry in entries] == list(range(len(entries)))
        assert [entry["event"] for entry in entries] == [
            "create", "feed", "snapshot", "restore", "feed",
        ]


class TestRecorder:
    def test_appends_are_sequenced_and_deterministic(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with SessionRecorder(path) as recorder:
            assert recorder.append("create", session="s1") == 0
            assert recorder.append("feed", accepted=3) == 1
        reopened = SessionRecorder(path)
        assert reopened.next_seq == 2
        reopened.append("feed", accepted=1)
        reopened.close()
        entries = SessionRecorder.read(path)
        assert [e["seq"] for e in entries] == [0, 1, 2]
        # Journals carry no wall-clock fields — replays are byte-identical.
        assert all("time" not in e or isinstance(e["time"], int) for e in entries)


class TestReplayProperty:
    @pytest.mark.parametrize("spec", ("aggressive", "delay:d=2", "conservative", "demand:evict=lru"))
    def test_one_at_a_time_equals_batch_run_record(self, spec):
        """Satellite property: per-request feed == batch RunRecord, byte for byte."""
        instance = _instance()
        service = PrefetchService()
        session = service.create_session(spec, cache_size=8, fetch_time=4)
        for block in instance.sequence.requests:
            session.feed([block])
        streamed = session.finish()
        batch = simulate(instance, make_algorithm(spec))
        make_record = lambda result: RunRecord.from_simulation(
            result, point=MULTICLIENT, algorithm_spec=spec,
            workload=MULTICLIENT, engine="loop",
        )
        streamed_json = json.dumps(make_record(streamed).to_json_dict(), sort_keys=True)
        batch_json = json.dumps(make_record(batch).to_json_dict(), sort_keys=True)
        assert streamed_json == batch_json

    def test_replay_driver_reports_match(self, tmp_path):
        report = replay_workload(
            MULTICLIENT, algorithm="aggressive", cache_size=8, fetch_time=4, chunk=50
        )
        assert report.match
        assert report.num_requests == 240
        assert report.chunks_fed == 5
        assert report.streaming
        assert "matches offline batch run" in report.describe()

    def test_replay_driver_deferred_policy(self):
        report = replay_workload(
            MULTICLIENT, algorithm="conservative", cache_size=8, fetch_time=4, chunk=60
        )
        assert report.match
        assert not report.streaming
        assert set(report.statuses) == {"deferred"}
