"""The gate itself: the tree is clean, and the CLI enforces exit codes.

``test_repro_source_tree_is_clean`` is the meta-test the whole subsystem
exists for: the shipped package must pass its own invariant lint with an
empty baseline.  If a rule change or a source change makes this fail, either
fix the violation or carry a justified inline pragma — do not grow the
committed baseline casually (see docs/architecture.md).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.checks import Baseline, run_checks
from repro.checks.runner import default_check_root
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSelfClean:
    def test_repro_source_tree_is_clean(self):
        report = run_checks()
        assert report.ok, "\n" + report.format_text()
        assert report.files_checked > 50
        assert len(report.rules_run) == 7

    def test_default_root_is_the_package(self):
        assert default_check_root().name == "repro"

    def test_committed_baseline_is_empty(self):
        baseline = Baseline.load(REPO_ROOT / "checks-baseline.json")
        assert baseline.entries == {}


class TestCliCheck:
    def _violation_tree(self, tmp_path):
        target = tmp_path / "disksim"
        target.mkdir()
        (target / "bad.py").write_text("import random\nx = random.random()\n")
        return tmp_path

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["check", str(tmp_path)]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_violation_exits_one_and_writes_json(self, tmp_path, capsys):
        tree = self._violation_tree(tmp_path)
        artifact = tmp_path / "findings.json"
        assert main(["check", str(tree), "--json", str(artifact)]) == 1
        out = capsys.readouterr().out
        assert "determinism-rng" in out
        payload = json.loads(artifact.read_text())
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "determinism-rng"

    def test_update_baseline_then_gate_passes(self, tmp_path, capsys):
        tree = self._violation_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(
            ["check", str(tree), "--baseline", str(baseline), "--update-baseline"]
        ) == 0
        assert baseline.exists()
        assert main(["check", str(tree), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_update_baseline_requires_baseline_path(self, capsys):
        assert main(["check", "--update-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_disable_rule_passes_violating_tree(self, tmp_path):
        tree = self._violation_tree(tmp_path)
        assert main(["check", str(tree), "--disable", "determinism-rng"]) == 0

    def test_unknown_rule_is_configuration_error(self, capsys):
        assert main(["check", "--only", "no-such-rule"]) == 2
        assert "no-such-rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "determinism-rng" in out
        assert "engine-parity" in out

    def test_default_target_is_own_source(self, capsys):
        assert main(["check"]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out
