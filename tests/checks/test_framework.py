"""Framework tests: findings, config, pragmas, the report and the registry."""

from __future__ import annotations

import json

import pytest

from repro.checks import (
    CHECKER_REGISTRY,
    CheckConfig,
    CheckReport,
    Finding,
    all_checkers,
    run_checks,
)
from repro.checks.base import parse_module
from repro.errors import ConfigurationError


class TestFinding:
    def test_render(self):
        finding = Finding(path="a/b.py", line=3, rule="r", message="m")
        assert finding.render() == "a/b.py:3: error: [r] m"

    def test_sort_order_is_path_line_rule(self):
        findings = [
            Finding(path="b.py", line=1, rule="r", message="m"),
            Finding(path="a.py", line=9, rule="r", message="m"),
            Finding(path="a.py", line=2, rule="z", message="m"),
            Finding(path="a.py", line=2, rule="a", message="m"),
        ]
        ordered = sorted(findings)
        assert [(f.path, f.line, f.rule) for f in ordered] == [
            ("a.py", 2, "a"),
            ("a.py", 2, "z"),
            ("a.py", 9, "r"),
            ("b.py", 1, "r"),
        ]

    def test_json_round_trip(self):
        finding = Finding(path="a.py", line=3, rule="r", message="m", severity="warning")
        assert Finding.from_json_dict(finding.to_json_dict()) == finding

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Finding(path="a.py", line=1, rule="r", message="m", severity="fatal")

    def test_baseline_key_excludes_line(self):
        one = Finding(path="a.py", line=3, rule="r", message="m")
        two = Finding(path="a.py", line=30, rule="r", message="m")
        assert one.baseline_key == two.baseline_key


class TestCheckConfig:
    def test_default_enables_everything(self):
        config = CheckConfig()
        assert config.is_enabled("determinism-rng")

    def test_disable(self):
        config = CheckConfig(disabled=frozenset({"float-equality"}))
        assert not config.is_enabled("float-equality")
        assert config.is_enabled("determinism-rng")

    def test_only_restricts(self):
        config = CheckConfig(only=frozenset({"engine-parity"}))
        assert config.is_enabled("engine-parity")
        assert not config.is_enabled("determinism-rng")

    def test_unknown_rule_rejected(self):
        config = CheckConfig.from_option_strings(disable="no-such-rule")
        with pytest.raises(ConfigurationError, match="no-such-rule"):
            config.validate(CHECKER_REGISTRY)

    def test_from_option_strings_splits_commas(self):
        config = CheckConfig.from_option_strings(
            only="a, b", disable="c"
        )
        assert config.only == frozenset({"a", "b"})
        assert config.disabled == frozenset({"c"})

    def test_run_checks_respects_only(self, tmp_path):
        target = tmp_path / "disksim"
        target.mkdir()
        (target / "bad.py").write_text("import random\nx = random.random()\n")
        report = run_checks(
            [tmp_path], config=CheckConfig(only=frozenset({"determinism-clock"}))
        )
        assert report.ok
        assert report.rules_run == ("determinism-clock",)


class TestPragmas:
    def test_pragma_parsing_same_and_previous_line(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text(
            "x = 1  # repro: allow(rule-a, rule-b)\n"
            "y = 2\n"
        )
        module = parse_module(path, "m.py")
        assert module.is_suppressed("rule-a", 1)
        assert module.is_suppressed("rule-b", 2)  # line below the pragma
        assert not module.is_suppressed("rule-a", 3)
        assert not module.is_suppressed("rule-c", 1)

    def test_pragma_suppresses_finding_end_to_end(self, tmp_path):
        target = tmp_path / "disksim"
        target.mkdir()
        (target / "bad.py").write_text(
            "import random\n"
            "x = random.random()  # repro: allow(determinism-rng)\n"
        )
        assert run_checks([tmp_path]).ok


class TestCheckReport:
    def test_format_text_and_json(self):
        finding = Finding(path="a.py", line=1, rule="r", message="m")
        report = CheckReport(
            findings=(finding,), baselined=(), files_checked=2, rules_run=("r",)
        )
        text = report.format_text()
        assert "a.py:1: error: [r] m" in text
        assert "1 new finding(s), 0 baselined, 2 file(s), 1 rule(s)" in text
        payload = json.loads(json.dumps(report.to_json_dict()))
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "r"

    def test_ok_iff_no_new_findings(self):
        clean = CheckReport(findings=(), baselined=(), files_checked=1)
        assert clean.ok
        grandfathered = CheckReport(
            findings=(),
            baselined=(Finding(path="a.py", line=1, rule="r", message="m"),),
            files_checked=1,
        )
        assert grandfathered.ok


class TestRegistry:
    def test_battery_is_complete(self):
        expected = {
            "determinism-rng",
            "determinism-clock",
            "fingerprint-order",
            "spec-error-discipline",
            "engine-parity",
            "registry-hygiene",
            "float-equality",
        }
        assert expected == set(CHECKER_REGISTRY)

    def test_all_checkers_sorted_and_described(self):
        checkers = all_checkers()
        ids = [c.rule_id for c in checkers]
        assert ids == sorted(ids)
        for checker in checkers:
            assert checker.description
            assert checker.severity in ("error", "warning")

    def test_missing_target_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            run_checks([tmp_path / "nope"])

    def test_unparseable_target_rejected(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        with pytest.raises(ConfigurationError, match="not parseable"):
            run_checks([tmp_path])
