"""Per-rule fixture tests: each rule flags its seeded violation, passes the fix.

Every test writes a tiny source fixture, parses it at the package-relative
path the rule scopes on, and asserts the rule's verdict — one violating
form, one corrected form.  The fixtures are the executable definition of
what each rule means; keep them in sync with the rule catalog in
docs/architecture.md.
"""

from __future__ import annotations

import textwrap
from typing import List

from repro.checks import Finding, ModuleUnderCheck
from repro.checks.base import CHECKER_REGISTRY, ProjectChecker, parse_module


def check_source(rule_id: str, pkgpath: str, source: str, tmp_path) -> List[Finding]:
    """Run one registered rule over a source fixture at ``pkgpath``."""
    path = tmp_path / pkgpath.replace("/", "__")
    path.write_text(textwrap.dedent(source))
    module = parse_module(path, pkgpath)
    checker = CHECKER_REGISTRY[rule_id]()
    assert not isinstance(checker, ProjectChecker)
    return checker.run(module)


def check_project(rule_id: str, fixtures, tmp_path) -> List[Finding]:
    """Run one project-level rule over ``{pkgpath: source}`` fixtures."""
    modules: List[ModuleUnderCheck] = []
    for pkgpath, source in fixtures.items():
        path = tmp_path / pkgpath.replace("/", "__")
        path.write_text(textwrap.dedent(source))
        modules.append(parse_module(path, pkgpath))
    checker = CHECKER_REGISTRY[rule_id]()
    assert isinstance(checker, ProjectChecker)
    return checker.run_project(modules)


class TestDeterminismRng:
    def test_module_state_call_flagged(self, tmp_path):
        findings = check_source(
            "determinism-rng",
            "disksim/bad.py",
            """
            import random

            def f():
                return random.random()
            """,
            tmp_path,
        )
        assert [f.rule for f in findings] == ["determinism-rng"]
        assert "module-level random state" in findings[0].message
        assert findings[0].line == 5

    def test_from_import_flagged(self, tmp_path):
        findings = check_source(
            "determinism-rng",
            "workloads/bad.py",
            "from random import shuffle, randint\n",
            tmp_path,
        )
        assert len(findings) == 1
        assert "shuffle, randint" in findings[0].message

    def test_numpy_module_state_flagged(self, tmp_path):
        findings = check_source(
            "determinism-rng",
            "workloads/bad.py",
            """
            import numpy as np

            def f():
                return np.random.rand(3)
            """,
            tmp_path,
        )
        assert len(findings) == 1
        assert "numpy's module-level random state" in findings[0].message

    def test_unseeded_generator_flagged(self, tmp_path):
        findings = check_source(
            "determinism-rng",
            "workloads/gen.py",
            """
            import numpy as np

            def f():
                return np.random.default_rng()
            """,
            tmp_path,
        )
        assert len(findings) == 1
        assert "without a seed" in findings[0].message

    def test_optional_seed_parameter_flagged(self, tmp_path):
        findings = check_source(
            "determinism-rng",
            "workloads/gen.py",
            """
            from typing import Optional

            import numpy as np

            def make(seed: Optional[int] = 0):
                return np.random.default_rng(seed)
            """,
            tmp_path,
        )
        assert len(findings) == 1
        assert "may be unseeded" in findings[0].message

    def test_required_int_seed_passes(self, tmp_path):
        findings = check_source(
            "determinism-rng",
            "workloads/gen.py",
            """
            import numpy as np

            def make(seed: int = 0):
                return np.random.default_rng(seed)
            """,
            tmp_path,
        )
        assert findings == []

    def test_out_of_scope_module_ignored(self, tmp_path):
        findings = check_source(
            "determinism-rng",
            "viz/free.py",
            "import random\nx = random.random()\n",
            tmp_path,
        )
        assert findings == []


class TestDeterminismClock:
    def test_wall_clock_flagged(self, tmp_path):
        findings = check_source(
            "determinism-clock",
            "disksim/bad.py",
            """
            import time

            def stamp():
                return time.time()
            """,
            tmp_path,
        )
        assert len(findings) == 1
        assert "wall clock" in findings[0].message

    def test_datetime_now_flagged(self, tmp_path):
        findings = check_source(
            "determinism-clock",
            "lp/bad.py",
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """,
            tmp_path,
        )
        assert len(findings) == 1

    def test_perf_counter_exempt(self, tmp_path):
        findings = check_source(
            "determinism-clock",
            "lp/timing.py",
            """
            import time

            def measure():
                return time.perf_counter()
            """,
            tmp_path,
        )
        assert findings == []


class TestFingerprintOrder:
    def test_set_iteration_flagged(self, tmp_path):
        findings = check_source(
            "fingerprint-order",
            "analysis/keys.py",
            """
            def cache_key(items):
                out = []
                for item in set(items):
                    out.append(item)
                return tuple(out)
            """,
            tmp_path,
        )
        assert len(findings) == 1
        assert "unordered set" in findings[0].message

    def test_sorted_set_iteration_passes(self, tmp_path):
        findings = check_source(
            "fingerprint-order",
            "analysis/keys.py",
            """
            def cache_key(items):
                return tuple(x for x in sorted(set(items)))
            """,
            tmp_path,
        )
        assert findings == []

    def test_builtin_hash_flagged(self, tmp_path):
        findings = check_source(
            "fingerprint-order",
            "analysis/keys.py",
            """
            def fingerprint(payload):
                return hash(payload)
            """,
            tmp_path,
        )
        assert len(findings) == 1
        assert "PYTHONHASHSEED" in findings[0].message

    def test_unsorted_dumps_flagged_sorted_passes(self, tmp_path):
        bad = check_source(
            "fingerprint-order",
            "analysis/keys.py",
            """
            import json

            def canonical_payload(d):
                return json.dumps(d)
            """,
            tmp_path,
        )
        assert len(bad) == 1
        good = check_source(
            "fingerprint-order",
            "analysis/keys2.py",
            """
            import json

            def canonical_payload(d):
                return json.dumps(d, sort_keys=True)
            """,
            tmp_path,
        )
        assert good == []

    def test_only_fingerprint_shaped_functions_checked(self, tmp_path):
        findings = check_source(
            "fingerprint-order",
            "analysis/free.py",
            """
            def summarise(items):
                return hash(tuple(items))
            """,
            tmp_path,
        )
        assert findings == []


class TestSpecErrorDiscipline:
    def test_bare_value_error_flagged(self, tmp_path):
        findings = check_source(
            "spec-error-discipline",
            "workloads/spec.py",
            """
            def parse(spec):
                raise ValueError(f"bad spec {spec!r}")
            """,
            tmp_path,
        )
        assert len(findings) == 1
        assert "ValueError" in findings[0].message

    def test_static_message_flagged(self, tmp_path):
        findings = check_source(
            "spec-error-discipline",
            "specs.py",
            """
            from repro.errors import ConfigurationError

            def parse(spec):
                raise ConfigurationError("bad spec")
            """,
            tmp_path,
        )
        assert len(findings) == 1
        assert "f-string" in findings[0].message

    def test_spec_naming_configuration_error_passes(self, tmp_path):
        findings = check_source(
            "spec-error-discipline",
            "algorithms/registry.py",
            """
            from repro.errors import ConfigurationError

            def parse(spec):
                raise ConfigurationError(f"unknown algorithm in spec {spec!r}")
            """,
            tmp_path,
        )
        assert findings == []

    def test_bare_reraise_allowed(self, tmp_path):
        findings = check_source(
            "spec-error-discipline",
            "specs.py",
            """
            def forward(spec):
                try:
                    return int(spec)
                except ValueError:
                    raise
            """,
            tmp_path,
        )
        assert findings == []

    def test_pragma_suppresses_protocol_raise(self, tmp_path):
        findings = check_source(
            "spec-error-discipline",
            "specs.py",
            """
            def coerce(text):
                # protocol raise  # repro: allow(spec-error-discipline)
                raise ValueError(f"not a boolean: {text!r}")
            """,
            tmp_path,
        )
        assert findings == []


class TestEngineParity:
    RUNNER_OK = """
        _VECTOR_FAMILIES = frozenset({"aggressive", "delay"})
    """
    VECTOR_OK = """
        def _resolve_plan(instance, policy):
            if type(policy) is Aggressive:
                return "aggressive"
            if type(policy) is Delay:
                return "delay"
            return None
    """

    def test_matching_sets_pass(self, tmp_path):
        findings = check_project(
            "engine-parity",
            {"analysis/runner.py": self.RUNNER_OK, "disksim/vector.py": self.VECTOR_OK},
            tmp_path,
        )
        assert findings == []

    def test_drift_flagged_both_directions(self, tmp_path):
        findings = check_project(
            "engine-parity",
            {
                "analysis/runner.py": '_VECTOR_FAMILIES = frozenset({"aggressive", "conservative"})',
                "disksim/vector.py": self.VECTOR_OK,
            },
            tmp_path,
        )
        assert len(findings) == 1
        message = findings[0].message
        assert "delay" in message and "conservative" in message

    def test_missing_anchor_flagged(self, tmp_path):
        findings = check_project(
            "engine-parity",
            {"analysis/runner.py": "x = 1", "disksim/vector.py": self.VECTOR_OK},
            tmp_path,
        )
        assert len(findings) == 1
        assert "_VECTOR_FAMILIES" in findings[0].message

    def test_partial_scan_silent(self, tmp_path):
        findings = check_project(
            "engine-parity",
            {"analysis/runner.py": self.RUNNER_OK},
            tmp_path,
        )
        assert findings == []


class TestRegistryHygiene:
    def test_lambda_schema_mismatch_flagged(self, tmp_path):
        findings = check_project(
            "registry-hygiene",
            {
                "workloads/spec.py": """
                def _def(name, summary, factory, params):
                    pass

                class ParamSpec:
                    pass

                _def("zipf", "zipf workload", lambda n, skew: None,
                     [ParamSpec("n"), ParamSpec("blocks")])
                """
            },
            tmp_path,
        )
        assert len(findings) == 1
        assert "lambda builder" in findings[0].message

    def test_missing_summary_flagged(self, tmp_path):
        findings = check_project(
            "registry-hygiene",
            {
                "workloads/spec.py": """
                def _def(name, summary, factory, params):
                    pass

                _def("zipf", "", lambda: None, [])
                """
            },
            tmp_path,
        )
        assert len(findings) == 1
        assert "summary" in findings[0].message

    def test_factory_signature_mismatch_flagged(self, tmp_path):
        findings = check_project(
            "registry-hygiene",
            {
                "algorithms/registry.py": """
                class ParamSpec:
                    pass

                def register_algorithm(name, factory, *, summary="", params=()):
                    pass

                class Delay:
                    \"\"\"Delay policy.\"\"\"

                    def __init__(self, d):
                        pass

                register_algorithm("delay", Delay, summary="delay d steps",
                                   params=[ParamSpec("d"), ParamSpec("window")])
                """
            },
            tmp_path,
        )
        assert len(findings) == 1
        assert "'window'" in findings[0].message

    def test_consistent_registration_passes(self, tmp_path):
        findings = check_project(
            "registry-hygiene",
            {
                "algorithms/registry.py": """
                class ParamSpec:
                    pass

                def register_algorithm(name, factory, *, summary="", params=()):
                    pass

                class Delay:
                    \"\"\"Delay policy.\"\"\"

                    def __init__(self, d):
                        pass

                register_algorithm("delay", Delay, summary="delay d steps",
                                   params=[ParamSpec("d")])
                """
            },
            tmp_path,
        )
        assert findings == []

    def test_dynamic_forwarding_call_skipped(self, tmp_path):
        findings = check_project(
            "registry-hygiene",
            {
                "algorithms/registry.py": """
                def register_algorithm(name, factory, *, summary="", params=()):
                    pass

                def _def(name, summary, factory, params):
                    register_algorithm(name, factory, summary=summary, params=params)
                """
            },
            tmp_path,
        )
        assert findings == []


class TestFloatEquality:
    def test_nonintegral_literal_flagged(self, tmp_path):
        findings = check_source(
            "float-equality",
            "analysis/gate.py",
            """
            def gate(ratio):
                return ratio == 1.5
            """,
            tmp_path,
        )
        assert len(findings) == 1
        assert findings[0].severity == "warning"

    def test_division_result_flagged(self, tmp_path):
        findings = check_source(
            "float-equality",
            "analysis/gate.py",
            """
            def gate(a, b, c):
                return a / b == c
            """,
            tmp_path,
        )
        assert len(findings) == 1

    def test_integral_literal_and_inf_pass(self, tmp_path):
        findings = check_source(
            "float-equality",
            "analysis/gate.py",
            """
            def gate(ratio):
                return ratio == 1.0 or ratio == float("inf")
            """,
            tmp_path,
        )
        assert findings == []

    def test_allowlisted_helper_exempt(self, tmp_path):
        findings = check_source(
            "float-equality",
            "analysis/gate.py",
            """
            def safe_ratio(a, b):
                return a / b == 0.5
            """,
            tmp_path,
        )
        assert findings == []

    def test_nan_comparison_flagged(self, tmp_path):
        findings = check_source(
            "float-equality",
            "analysis/gate.py",
            """
            def gate(x):
                return x != float("nan")
            """,
            tmp_path,
        )
        assert len(findings) == 1
        assert "nan" in findings[0].message
