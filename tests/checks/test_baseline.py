"""Baseline tests: round-trip, count-aware matching, strict loading."""

from __future__ import annotations

import json

import pytest

from repro.checks import Baseline, Finding
from repro.errors import ConfigurationError


def _finding(line: int = 1, message: str = "m") -> Finding:
    return Finding(path="a.py", line=line, rule="r", message=message)


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        baseline = Baseline.from_findings([_finding(), _finding(line=9)])
        path = tmp_path / "baseline.json"
        baseline.save(path)
        assert Baseline.load(path) == baseline

    def test_save_is_deterministic(self, tmp_path):
        findings = [_finding(message="b"), _finding(message="a")]
        one, two = tmp_path / "one.json", tmp_path / "two.json"
        Baseline.from_findings(findings).save(one)
        Baseline.from_findings(list(reversed(findings))).save(two)
        assert one.read_text() == two.read_text()

    def test_empty_baseline_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline().save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == {}
        payload = json.loads(path.read_text())
        assert payload == {"version": 1, "findings": []}


class TestSplit:
    def test_line_moves_still_match(self):
        baseline = Baseline.from_findings([_finding(line=5)])
        new, accepted = baseline.split([_finding(line=50)])
        assert new == []
        assert len(accepted) == 1

    def test_count_aware_absorption(self):
        baseline = Baseline.from_findings([_finding(line=1)])
        new, accepted = baseline.split([_finding(line=1), _finding(line=2)])
        assert len(accepted) == 1
        assert len(new) == 1

    def test_message_change_goes_new(self):
        baseline = Baseline.from_findings([_finding(message="old wording")])
        new, accepted = baseline.split([_finding(message="new wording")])
        assert len(new) == 1
        assert accepted == []


class TestLoad:
    def test_unreadable_file_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="cannot read baseline"):
            Baseline.load(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ConfigurationError, match="version-1"):
            Baseline.load(path)
