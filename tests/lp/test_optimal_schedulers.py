"""Tests for the optimal schedulers (single disk, Theorem 4 parallel, rounding)."""

from __future__ import annotations

import pytest

from repro.algorithms import Aggressive, Conservative, Delay, DemandFetch, ParallelAggressive
from repro.analysis import brute_force_optimal_stall
from repro.disksim import DiskLayout, ProblemInstance, RequestSequence, simulate
from repro.errors import ConfigurationError
from repro.lp import (
    SynchronizedLPModel,
    normalize_integral_solution,
    optimal_parallel_schedule,
    optimal_single_disk,
    solve_integral,
    solve_relaxation,
)
from repro.workloads import (
    parallel_disk_example,
    single_disk_example,
    uniform_random,
    zipf,
)
from repro.workloads.multidisk import striped_instance


class TestSingleDiskOptimum:
    def test_paper_example(self):
        optimum = optimal_single_disk(single_disk_example())
        assert optimum.elapsed_time == 11
        assert optimum.stall_time == 1
        assert optimum.charged_stall == optimum.stall_time

    def test_rejects_parallel_instances(self):
        with pytest.raises(ConfigurationError):
            optimal_single_disk(parallel_disk_example())

    def test_matches_brute_force_on_tiny_instances(self, small_cold_instance, small_warm_instance):
        for instance in (small_cold_instance, small_warm_instance):
            optimum = optimal_single_disk(instance)
            brute = brute_force_optimal_stall(instance)
            assert optimum.stall_time == brute.stall_time

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_never_worse_than_any_algorithm(self, seed):
        sequence = (
            zipf(36, 10, seed=seed, prefix=f"s{seed}_")
            if seed % 2 == 0
            else uniform_random(36, 10, seed=seed, prefix=f"s{seed}_")
        )
        instance = ProblemInstance.single_disk(sequence, cache_size=5, fetch_time=3)
        optimum = optimal_single_disk(instance)
        assert optimum.stall_time <= optimum.charged_stall
        for algorithm in (Aggressive(), Conservative(), Delay(2), DemandFetch()):
            assert optimum.elapsed_time <= simulate(instance, algorithm).elapsed_time

    def test_zero_stall_when_everything_fits(self):
        instance = ProblemInstance.single_disk(
            ["a", "b", "a", "b"], cache_size=2, fetch_time=2, initial_cache=["a", "b"]
        )
        assert optimal_single_disk(instance).stall_time == 0


class TestParallelOptimum:
    def test_paper_example_beats_the_narrated_schedule(self):
        optimum = optimal_parallel_schedule(parallel_disk_example())
        # The schedule described in the paper has stall 3; with D-1 extra cache
        # locations the LP can do at least as well.
        assert optimum.stall_time <= 3
        assert optimum.extra_cache_used <= 2 * (2 - 1)

    def test_theorem4_guarantee_on_tiny_instances(self, small_parallel_instance):
        optimum = optimal_parallel_schedule(small_parallel_instance)
        brute = brute_force_optimal_stall(small_parallel_instance)
        assert optimum.stall_time <= brute.stall_time
        assert optimum.extra_cache_used <= 2 * (small_parallel_instance.num_disks - 1)

    @pytest.mark.parametrize("num_disks", [2, 3])
    def test_never_worse_than_parallel_aggressive(self, num_disks):
        sequence = uniform_random(28, 10, seed=num_disks, prefix=f"d{num_disks}_")
        instance = striped_instance(sequence, 5, 3, num_disks)
        optimum = optimal_parallel_schedule(instance)
        baseline = simulate(instance, ParallelAggressive())
        assert optimum.stall_time <= baseline.stall_time
        assert optimum.stall_time <= optimum.charged_stall

    def test_lp_rounding_path(self):
        instance = striped_instance(uniform_random(24, 8, seed=9), 5, 3, 2)
        rounded = optimal_parallel_schedule(instance, method="lp-rounding")
        exact = optimal_parallel_schedule(instance, method="milp")
        assert rounded.stall_time <= exact.charged_stall
        assert rounded.extra_cache_used <= 2  # 2(D-1) with D=2
        assert rounded.method_used.startswith("lp-rounding") or rounded.method_used == "milp"

    def test_single_disk_instance_accepted(self):
        instance = ProblemInstance.single_disk(
            ["a", "b", "c", "a"], cache_size=2, fetch_time=2
        )
        optimum = optimal_parallel_schedule(instance)
        assert optimum.stall_time == optimal_single_disk(instance).stall_time

    def test_lower_bound_reported(self):
        optimum = optimal_parallel_schedule(parallel_disk_example())
        assert optimum.lp_lower_bound <= optimum.charged_stall + 1e-6


class TestNormalization:
    def test_nested_intervals_get_common_endpoints(self):
        instance = ProblemInstance.single_disk(
            zipf(40, 12, seed=0, prefix="nrm_"), cache_size=6, fetch_time=4
        )
        model = SynchronizedLPModel(instance, extra_cache=0)
        relaxation = solve_relaxation(model)
        solution = relaxation if relaxation.is_integral else solve_integral(model)
        normalized = normalize_integral_solution(solution)
        assert normalized.objective == pytest.approx(solution.objective)
        selected = normalized.selected_intervals()
        for outer_idx, outer in enumerate(selected):
            for inner in selected[outer_idx + 1 :]:
                strictly_nested = (
                    outer.start < inner.start and inner.end < outer.end
                )
                assert not strictly_nested

    def test_charged_stall_preserved(self):
        instance = ProblemInstance.single_disk(
            uniform_random(30, 9, seed=4, prefix="nrm2_"), cache_size=5, fetch_time=3
        )
        model = SynchronizedLPModel(instance, extra_cache=0)
        relaxation = solve_relaxation(model)
        solution = relaxation if relaxation.is_integral else solve_integral(model)
        normalized = normalize_integral_solution(solution)
        assert normalized.charged_stall(instance.fetch_time) == solution.charged_stall(
            instance.fetch_time
        )


class TestExecutedStallWithinCharged:
    """The extracted schedule's measured stall never exceeds the LP objective."""

    @pytest.mark.parametrize(
        "n,blocks,k,fetch_time,seed",
        [(40, 10, 6, 3, 1), (30, 8, 5, 4, 3), (36, 12, 7, 5, 5), (44, 11, 4, 6, 7)],
    )
    def test_single_disk(self, n, blocks, k, fetch_time, seed):
        sequence = uniform_random(n, blocks, seed=seed, prefix=f"x{seed}_")
        instance = ProblemInstance.single_disk(sequence, cache_size=k, fetch_time=fetch_time)
        optimum = optimal_single_disk(instance)
        assert optimum.stall_time <= optimum.charged_stall
        assert optimum.stall_time >= optimum.lp_lower_bound - 1e-6

    @pytest.mark.parametrize("num_disks,seed", [(2, 1), (3, 2)])
    def test_parallel(self, num_disks, seed):
        sequence = uniform_random(26, 9, seed=seed, prefix=f"y{seed}_")
        instance = striped_instance(sequence, 5, 3, num_disks)
        optimum = optimal_parallel_schedule(instance)
        assert optimum.stall_time <= optimum.charged_stall
        assert optimum.extra_cache_used <= 2 * (num_disks - 1)
