"""Tests for the LP interval structure and model construction."""

from __future__ import annotations

import pytest

from repro.disksim import ProblemInstance
from repro.errors import ConfigurationError
from repro.lp import (
    Interval,
    SynchronizedLPModel,
    enumerate_intervals,
    solve_relaxation,
    validate_solution,
)
from repro.lp.intervals import intervals_covering_slot, intervals_within
from repro.workloads import parallel_disk_example, single_disk_example


class TestInterval:
    def test_length_and_stall(self):
        interval = Interval(2, 6)
        assert interval.length == 3
        assert interval.charged_stall(4) == 1
        assert interval.charged_stall(3) == 0

    def test_containment_and_slots(self):
        outer, inner = Interval(1, 6), Interval(2, 4)
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert inner.contained_in(1, 6)
        assert outer.covers_slot(3)
        assert not outer.covers_slot(1)
        assert not outer.covers_slot(6)
        assert not Interval(2, 3).covers_slot(2)  # zero-length: no slots

    def test_invalid_interval(self):
        with pytest.raises(ConfigurationError):
            Interval(3, 3)


class TestEnumeration:
    def test_counts_small_case(self):
        intervals = enumerate_intervals(num_requests=3, fetch_time=2)
        # i=0: (0,1),(0,2),(0,3); i=1: (1,2),(1,3); i=2: (2,3) -> 6 intervals.
        assert len(intervals) == 6
        assert all(i.length <= 2 for i in intervals)

    def test_lengths_capped_by_fetch_time(self):
        intervals = enumerate_intervals(num_requests=20, fetch_time=3)
        assert max(i.length for i in intervals) == 3

    def test_helpers(self):
        intervals = enumerate_intervals(5, 2)
        inside = list(intervals_within(intervals, 1, 4))
        assert all(i.contained_in(1, 4) for i in inside)
        covering = list(intervals_covering_slot(intervals, 2))
        assert all(i.covers_slot(2) for i in covering)
        assert covering


class TestModelConstruction:
    def test_model_dimensions_single_disk(self):
        model = SynchronizedLPModel(single_disk_example(), extra_cache=0)
        assert model.capacity == 4
        assert model.num_intervals == len(enumerate_intervals(10, 4))
        assert model.num_variables > model.num_intervals
        assert "variables" in model.describe()

    def test_dummy_blocks_fill_capacity(self):
        inst = ProblemInstance.single_disk(["a", "b", "c"], cache_size=3, fetch_time=2)
        model = SynchronizedLPModel(inst, extra_cache=0)
        assert len(model.dummy_blocks) == 3
        assert len(model.augmented_instance.initial_cache) == 3

    def test_parallel_model_padding_only_in_strict_mode(self):
        relaxed = SynchronizedLPModel(parallel_disk_example(), require_all_disks=False)
        strict = SynchronizedLPModel(parallel_disk_example(), require_all_disks=True)
        assert not relaxed.padding_blocks
        assert set(strict.padding_blocks) == {0, 1}
        assert strict.num_variables > relaxed.num_variables

    def test_negative_extra_cache_rejected(self):
        with pytest.raises(ConfigurationError):
            SynchronizedLPModel(single_disk_example(), extra_cache=-1)

    def test_relaxation_solution_is_feasible_for_model(self):
        model = SynchronizedLPModel(single_disk_example(), extra_cache=0)
        solution = solve_relaxation(model)
        report = validate_solution(model, solution)
        assert report.is_feasible
        assert report.objective == pytest.approx(solution.objective)

    def test_relaxation_lower_bounds_paper_example(self):
        model = SynchronizedLPModel(single_disk_example(), extra_cache=0)
        solution = solve_relaxation(model)
        # The paper's best option needs exactly 1 unit of stall.
        assert solution.objective <= 1.0 + 1e-6
        assert solution.objective >= 0.0
