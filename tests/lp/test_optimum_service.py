"""Tests for the optimum service: canonical identity, caching, reduced model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.lp.service as service_module
from repro.disksim import DiskLayout, ProblemInstance
from repro.errors import ConfigurationError
from repro.lp import (
    OptimumService,
    SolverConfig,
    SynchronizedLPModel,
    canonical_payload,
    instance_fingerprint,
    normalize_instance,
    optimal_parallel_schedule,
    optimal_single_disk,
)
from repro.workloads import uniform_random, zipf
from repro.workloads.multidisk import striped_instance


def _instance(seed: int = 0, *, warm=(), n: int = 24, blocks: int = 8, k: int = 4):
    return ProblemInstance.single_disk(
        uniform_random(n, blocks, seed=seed, prefix=f"os{seed}_"),
        cache_size=k,
        fetch_time=3,
        initial_cache=warm,
    )


class TestCanonical:
    def test_normalize_is_identity_on_cold_instances(self):
        instance = _instance()
        assert normalize_instance(instance) is instance

    def test_normalize_renames_only_never_requested_warm_blocks(self):
        instance = _instance(1)
        requested = sorted(instance.requested_blocks, key=str)[:2]
        warm = instance.with_initial_cache(requested + ["ghost_a", "ghost_b"])
        normalized = normalize_instance(warm)
        assert set(requested) <= set(normalized.initial_cache)
        renamed = set(normalized.initial_cache) - set(requested)
        assert renamed == {"__nr0", "__nr1"}
        assert normalized.sequence is warm.sequence
        for block in requested:
            assert normalized.disk_of(block) == warm.disk_of(block)

    def test_equivalent_instances_share_fingerprints(self):
        base = _instance(2)
        requested = sorted(base.requested_blocks, key=str)[:1]
        a = base.with_initial_cache(requested + ["spare_x"])
        b = base.with_initial_cache(requested + ["completely_different_name"])
        assert instance_fingerprint(a) == instance_fingerprint(b)
        assert canonical_payload(a) == canonical_payload(b)

    def test_fingerprint_covers_content_and_solver_config(self):
        instance = _instance(3)
        assert instance_fingerprint(instance) != instance_fingerprint(
            instance.with_cache_size(5)
        )
        assert instance_fingerprint(instance, SolverConfig().key()) != (
            instance_fingerprint(instance, SolverConfig(method="milp").key())
        )

    def test_normalized_optimum_is_unchanged(self):
        """Renaming never-requested warm blocks cannot move the optimum."""
        base = _instance(4, n=18, blocks=6, k=3)
        requested = sorted(base.requested_blocks, key=str)[:1]
        original = base.with_initial_cache(requested + ["ghost_1", "ghost_2"])
        normalized = normalize_instance(original)
        assert (
            optimal_single_disk(original).stall_time
            == optimal_single_disk(normalized).stall_time
        )


class TestSolverConfig:
    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            SolverConfig(method="simplex")

    def test_key_is_canonical(self):
        assert SolverConfig().key() == SolverConfig().key()
        assert SolverConfig(method="milp").key() != SolverConfig().key()
        assert SolverConfig(time_limit=2).key() == SolverConfig(time_limit=2.0).key()


class TestServiceCaching:
    def test_memory_cache_deduplicates_solves(self):
        service = OptimumService()
        instance = _instance(5, n=16, blocks=6, k=3)
        first = service.optimum(instance)
        second = service.optimum(instance)
        assert service.solves == 1
        assert first == second

    def test_disk_cache_is_shared_across_service_objects(self, tmp_path):
        instance = _instance(6, n=16, blocks=6, k=3)
        writer = OptimumService(tmp_path)
        record = writer.optimum(instance)
        assert writer.solves == 1

        reader = OptimumService(tmp_path)
        hit = reader.optimum(instance)
        assert reader.solves == 0
        assert hit == record

    def test_warmed_cache_never_resolves(self, tmp_path, monkeypatch):
        instance = _instance(7, n=16, blocks=6, k=3)
        OptimumService(tmp_path).optimum(instance)

        def boom(*_args, **_kwargs):  # pragma: no cover - must not run
            raise AssertionError("warmed cache must not re-solve the LP")

        monkeypatch.setattr(service_module, "compute_optimum_record", boom)
        record = OptimumService(tmp_path).optimum(instance)
        assert record.elapsed_time >= record.num_requests

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        instance = _instance(8, n=16, blocks=6, k=3)
        service = OptimumService(tmp_path)
        record = service.optimum(instance)
        service._path(record.fingerprint).write_text("{not json")
        fresh = OptimumService(tmp_path)
        again = fresh.optimum(instance)
        assert fresh.solves == 1
        assert again.stall_time == record.stall_time

    def test_record_round_trips_through_json(self):
        service = OptimumService()
        record = service.optimum(_instance(9, n=14, blocks=5, k=3))
        rebuilt = type(record).from_json_dict(record.as_json_dict())
        assert rebuilt == record

    def test_equivalent_instances_hit_the_same_entry(self):
        base = _instance(10, n=16, blocks=6, k=3)
        requested = sorted(base.requested_blocks, key=str)[:1]
        service = OptimumService()
        first = service.optimum(base.with_initial_cache(requested + ["ghost_a"]))
        second = service.optimum(base.with_initial_cache(requested + ["ghost_b"]))
        assert service.solves == 1
        assert first == second


class TestParallelThroughService:
    def test_matches_the_theorem4_driver(self):
        instance = striped_instance(
            uniform_random(20, 8, seed=11, prefix="svc_"), 4, 3, 2
        )
        record = OptimumService().optimum(instance)
        direct = optimal_parallel_schedule(instance)
        assert record.stall_time == direct.stall_time
        assert record.elapsed_time == direct.elapsed_time
        assert record.extra_cache_used <= 2 * (instance.num_disks - 1)
        assert record.solve_seconds > 0


class TestReducedModel:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=8, max_value=26),
        blocks=st.integers(min_value=3, max_value=8),
        k=st.integers(min_value=2, max_value=5),
        fetch_time=st.integers(min_value=2, max_value=4),
        warm_count=st.integers(min_value=0, max_value=3),
    )
    def test_reduced_and_full_model_certify_the_same_optimum(
        self, seed, n, blocks, k, fetch_time, warm_count
    ):
        """Property: the dominance-pruned model never changes the optimum."""
        sequence = zipf(n, blocks, seed=seed, prefix=f"rm{seed}_")
        warm = [f"warm{i}" for i in range(min(warm_count, k))]
        instance = ProblemInstance.single_disk(
            sequence, cache_size=k, fetch_time=fetch_time, initial_cache=warm
        )
        full = optimal_single_disk(instance, reduced=False)
        pruned = optimal_single_disk(instance, reduced=True)
        assert pruned.stall_time == full.stall_time
        assert pruned.elapsed_time == full.elapsed_time

    def test_reduced_model_is_smaller_on_cold_instances(self):
        instance = _instance(12, n=30, blocks=10, k=6)
        full = SynchronizedLPModel(instance, extra_cache=0)
        pruned = SynchronizedLPModel(
            instance, extra_cache=0, aggregate_never_requested=True
        )
        assert pruned.num_variables < full.num_variables

    def test_reduced_model_rejected_on_parallel_instances(self):
        instance = striped_instance(
            uniform_random(12, 6, seed=13, prefix="rj_"), 4, 3, 2
        )
        with pytest.raises(ConfigurationError):
            SynchronizedLPModel(instance, aggregate_never_requested=True)
