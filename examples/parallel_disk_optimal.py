#!/usr/bin/env python3
"""Theorem 4 in action: minimum-stall schedules on parallel disks.

Builds a multimedia-streaming workload (several sequential streams sharing
one cache), stripes the blocks over D disks, and compares the Theorem 4
LP-based schedule against the parallel Aggressive/Conservative baselines for
D = 1..4.  The optimal schedule's stall drops as disks are added while the
extra cache it needs stays within 2(D-1).

Run with:  python examples/parallel_disk_optimal.py
"""

from repro.algorithms import ParallelAggressive, ParallelConservative
from repro.analysis import format_table
from repro.disksim import simulate
from repro.lp import optimal_parallel_schedule
from repro.workloads import multimedia_stream_trace
from repro.workloads.multidisk import striped_instance


def main() -> None:
    sequence = multimedia_stream_trace(num_streams=3, blocks_per_stream=12)
    cache_size, fetch_time = 6, 4

    rows = []
    for num_disks in (1, 2, 3, 4):
        instance = striped_instance(sequence, cache_size, fetch_time, num_disks)
        optimum = optimal_parallel_schedule(instance)
        aggressive = simulate(instance, ParallelAggressive())
        conservative = simulate(instance, ParallelConservative())
        rows.append(
            {
                "D": num_disks,
                "optimal_stall": optimum.stall_time,
                "extra_cache_used": optimum.extra_cache_used,
                "allowed_extra (2(D-1))": 2 * (num_disks - 1),
                "parallel_aggressive": aggressive.stall_time,
                "parallel_conservative": conservative.stall_time,
                "method": optimum.method_used,
            }
        )
    print(
        format_table(
            rows,
            title="three interleaved media streams, blocks striped over D disks "
            f"(n={len(sequence)}, k={cache_size}, F={fetch_time})",
        )
    )


if __name__ == "__main__":
    main()
