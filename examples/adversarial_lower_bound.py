#!/usr/bin/env python3
"""The Theorem 2 adversarial construction, phase by phase.

Builds the lower-bound request sequence for a chosen (k, F), runs Aggressive
on it, and prints the per-phase accounting the proof uses: Aggressive needs
about k + l + F time units per phase while the optimum needs k + l + 2, which
pushes Aggressive's ratio towards min{1 + F/(k + (k-1)/(F-1)), 2}.

Run with:  python examples/adversarial_lower_bound.py
"""

from repro.algorithms import Aggressive
from repro.analysis import format_table
from repro.core.bounds import SingleDiskBounds
from repro.core.phases import phase_breakdown
from repro.disksim import simulate
from repro.lp import optimal_single_disk
from repro.workloads import theorem2_sequence


def main() -> None:
    cache_size, fetch_time, phases = 13, 4, 6
    construction = theorem2_sequence(cache_size, fetch_time, phases)
    instance = construction.instance
    bounds = SingleDiskBounds(cache_size, fetch_time)

    aggressive = simulate(instance, Aggressive())
    optimum = optimal_single_disk(instance)

    print(f"instance: {instance.describe()}")
    print(
        f"phase length k + l = {construction.phase_length} "
        f"(l = (k-1)/(F-1) = {construction.blocks_per_phase} new blocks per phase)\n"
    )
    print(
        format_table(
            [
                {
                    "quantity": "Aggressive elapsed",
                    "predicted (per proof)": phases * construction.aggressive_time_per_phase,
                    "measured": aggressive.elapsed_time,
                },
                {
                    "quantity": "Optimal elapsed",
                    "predicted (per proof)": phases * construction.optimal_time_per_phase,
                    "measured": optimum.elapsed_time,
                },
                {
                    "quantity": "ratio",
                    "predicted (per proof)": round(construction.predicted_ratio, 4),
                    "measured": round(aggressive.elapsed_time / optimum.elapsed_time, 4),
                },
            ]
        )
    )
    print(
        f"\nTheorem 2 asymptotic bound: {bounds.aggressive_lower:.4f}   "
        f"Theorem 1 upper bound: {bounds.aggressive_refined:.4f}"
    )

    breakdown = phase_breakdown(aggressive)
    print("\nAggressive's stall per (refined) phase:", list(breakdown.stall_per_phase))
    print("Every phase loses about F =", fetch_time, "time units, exactly as the proof charges.")


if __name__ == "__main__":
    main()
