#!/usr/bin/env python3
"""Quickstart: simulate the paper's worked example and find the optimal schedule.

Run with:  python examples/quickstart.py
"""

from repro import ProblemInstance, simulate
from repro.algorithms import Aggressive, Conservative
from repro.lp import optimal_single_disk
from repro.viz import render_gantt


def main() -> None:
    # The single-disk example from the paper's introduction: cache of 4 blocks,
    # fetches take 4 time units, b1..b4 start out resident.
    instance = ProblemInstance.single_disk(
        ["b1", "b2", "b3", "b4", "b4", "b5", "b1", "b4", "b4", "b2"],
        cache_size=4,
        fetch_time=4,
        initial_cache=["b1", "b2", "b3", "b4"],
    )

    print(f"instance: {instance.describe()}\n")

    for algorithm in (Aggressive(), Conservative()):
        result = simulate(instance, algorithm)
        print(f"{result.policy_name:14s} stall={result.stall_time}  elapsed={result.elapsed_time}")
        print(render_gantt(result))
        print()

    optimum = optimal_single_disk(instance)
    print(
        f"optimal        stall={optimum.stall_time}  elapsed={optimum.elapsed_time} "
        "(the paper's better option: fetch b5 at the request to b3, evicting b2)"
    )
    for fetch in optimum.schedule.fetches:
        print(
            f"  fetch {fetch.block} after request {fetch.start_pos}, "
            f"evicting {fetch.victim}, complete before request {fetch.end_pos}"
        )


if __name__ == "__main__":
    main()
