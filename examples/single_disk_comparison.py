#!/usr/bin/env python3
"""Compare all single-disk strategies on a database-join style workload.

The workload is a block nested-loop join: the inner relation is rescanned for
every outer block, which is exactly the pattern where integrated prefetching
and caching pays off (keep the hot part of the inner relation resident,
stream the rest).  The script measures every algorithm's elapsed-time ratio
against the exact optimum and prints the Section 2 bounds next to them.

Run with:  python examples/single_disk_comparison.py
"""

from repro.algorithms import Aggressive, Combination, Conservative, Delay, DemandFetch
from repro.analysis import format_report, measure_ratios
from repro.core.bounds import best_delay_parameter
from repro.disksim import ProblemInstance
from repro.workloads import database_join_trace


def main() -> None:
    cache_size, fetch_time = 10, 6
    sequence = database_join_trace(outer_blocks=6, inner_blocks=12)
    instance = ProblemInstance.single_disk(sequence, cache_size, fetch_time)

    d0 = best_delay_parameter(fetch_time)
    algorithms = [
        DemandFetch(),
        Aggressive(),
        Conservative(),
        Delay(d0),
        Combination(),
    ]
    report = measure_ratios(instance, algorithms)
    print(format_report(report, title="block nested-loop join, single disk"))
    print()
    print(
        "Reading the table: 'demand' pays the full fetch latency on every miss; "
        "the integrated strategies hide most of it, and none exceeds its proven bound."
    )


if __name__ == "__main__":
    main()
