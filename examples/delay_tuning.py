#!/usr/bin/env python3
"""Tuning the Delay(d) family: from Aggressive (d=0) towards Conservative.

Sweeps the delay parameter on a working-set-shift workload and prints the
measured elapsed-time ratio next to the Theorem 3 bound
max{(d+F)/F, (d+2F)/(d+F), 3(d+F)/(d+2F)}; the bound is minimised at
d0 = ceil((sqrt(3)-1)F/2) where it tends to sqrt(3) ~= 1.73.

Run with:  python examples/delay_tuning.py
"""

from repro.algorithms import Delay
from repro.analysis import format_table
from repro.core.bounds import best_delay_parameter, delay_bound
from repro.disksim import ProblemInstance, simulate
from repro.lp import optimal_single_disk
from repro.workloads import working_set_shift


def main() -> None:
    cache_size, fetch_time = 8, 8
    sequence = working_set_shift(
        num_phases=4, blocks_per_phase=10, requests_per_phase=20, overlap=3, seed=7
    )
    instance = ProblemInstance.single_disk(sequence, cache_size, fetch_time)
    optimum = optimal_single_disk(instance).elapsed_time
    d0 = best_delay_parameter(fetch_time)

    rows = []
    for d in sorted({0, 1, 2, 3, d0, fetch_time // 2, fetch_time, 2 * fetch_time, len(sequence)}):
        elapsed = simulate(instance, Delay(d)).elapsed_time
        rows.append(
            {
                "d": d,
                "note": "d0 (Corollary 1)" if d == d0 else ("Aggressive" if d == 0 else
                        ("Conservative" if d >= len(sequence) else "")),
                "elapsed": elapsed,
                "measured_ratio": round(elapsed / optimum, 4),
                "thm3_bound": round(delay_bound(d, fetch_time), 4),
            }
        )
    print(
        format_table(
            rows,
            title=f"Delay(d) sweep on a shifting working set (n={len(sequence)}, "
            f"k={cache_size}, F={fetch_time}, optimal elapsed={optimum})",
        )
    )


if __name__ == "__main__":
    main()
