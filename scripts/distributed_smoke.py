#!/usr/bin/env python
"""End-to-end smoke test of the distributed sweep fabric (CI's distributed job).

Exercises coordinator + workers over real processes, real HTTP and a real
SIGKILL:

1. start ``repro coordinator`` as a subprocess serving a 16-point grid on a
   free port (short lease timeout so a killed worker's chunks re-issue fast),
2. attach three ``repro worker`` subprocesses — one slowed with
   ``--fault-delay`` so it reliably holds a lease mid-sweep,
3. ``SIGKILL`` the slow worker while the sweep is in flight (poll
   ``/status`` until it holds a lease),
4. wait for the coordinator to finish: zero lost points — the grid
   completes, the surviving workers exit cleanly,
5. warm re-run the same grid through plain ``repro sweep`` against the same
   run store and assert every point is a cache hit (``0 simulated``).

Exits non-zero with a diagnostic on the first violated expectation.
"""

from __future__ import annotations

import json
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

GRID = [
    "-w", "zipf:n=30,blocks=10",
    "-k", "4,6",
    "-F", "3",
    "-a", "aggressive,demand",
    "--seeds", "0,1,2,3",
    "--name", "distributed-smoke",
]
POINTS = 16  # 1 workload x 4 seeds x 2 cache sizes x 1 fetch time x 2 algorithms


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def fail(message: str) -> None:
    print(f"DISTRIBUTED SMOKE FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def expect(condition: bool, message: str) -> None:
    if not condition:
        fail(message)


def get_status(port: int):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/status", timeout=10
    ) as response:
        return json.loads(response.read())


def wait_for_coordinator(port: int, process: subprocess.Popen, attempts: int = 100):
    for _ in range(attempts):
        if process.poll() is not None:
            fail(f"coordinator exited early with code {process.returncode}")
        try:
            return get_status(port)
        except (urllib.error.URLError, ConnectionError):
            time.sleep(0.2)
    fail(f"coordinator on port {port} never became reachable")


def start_coordinator(port: int, cache_dir: Path) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "coordinator", *GRID,
            "--cache-dir", str(cache_dir),
            "--port", str(port),
            "--chunk-size", "2",
            "--lease-timeout", "2",
            "--linger", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def start_worker(port: int, name: str, *extra: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--coordinator", f"http://127.0.0.1:{port}",
            "--id", name,
            "--poll-interval", "0.05",
            "--backoff-base", "0.1",
            "--backoff-cap", "0.5",
            "--max-retries", "4",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def main() -> None:
    cache_dir = Path(tempfile.mkdtemp(prefix="repro-distributed-smoke-"))
    port = free_port()
    coordinator = start_coordinator(port, cache_dir)
    workers = {}
    try:
        wait_for_coordinator(port, coordinator)
        # The victim stalls before every completion POST, so it reliably
        # holds a live lease when the SIGKILL lands.
        workers["w-victim"] = start_worker(port, "w-victim", "--fault-delay", "0.3")
        workers["w-1"] = start_worker(port, "w-1")
        workers["w-2"] = start_worker(port, "w-2")

        # Kill the victim once the sweep is genuinely in flight: it holds a
        # lease (or has completed a chunk) and the grid is not done yet.
        killed = False
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if coordinator.poll() is not None:
                break
            try:
                status = get_status(port)
            except (urllib.error.URLError, ConnectionError):
                break
            victim = status.get("workers", {}).get("w-victim", {})
            in_flight = (
                victim.get("active_chunk") is not None
                or victim.get("completed_chunks", 0) > 0
            )
            if in_flight and status["state"] == "running" and not killed:
                try:
                    workers["w-victim"].send_signal(signal.SIGKILL)
                except ProcessLookupError:
                    pass
                killed = True
                print("killed w-victim mid-sweep")
                break
            time.sleep(0.05)
        expect(killed, "victim worker never held a lease before the sweep finished")

        code = coordinator.wait(timeout=120)
        output = coordinator.stdout.read()
        print(output)
        expect(code == 0, f"coordinator exited {code}")
        expect(
            f"{POINTS} points" in output,
            f"coordinator did not report all {POINTS} points",
        )
        expect(
            f"{POINTS} simulated" in output,
            "first run should simulate every point",
        )

        workers["w-victim"].wait(timeout=10)
        for name in ("w-1", "w-2"):
            worker_code = workers[name].wait(timeout=60)
            worker_out = workers[name].stdout.read()
            print(worker_out.strip())
            expect(
                worker_code == 0,
                f"surviving worker {name} exited {worker_code}: {worker_out}",
            )
    finally:
        for process in [coordinator, *workers.values()]:
            if process.poll() is None:
                process.kill()

    # Zero lost points: the warm re-run of the identical grid is pure cache.
    rerun = subprocess.run(
        [
            sys.executable, "-m", "repro", "sweep", *GRID,
            "--cache-dir", str(cache_dir), "--resume",
        ],
        capture_output=True,
        text=True,
        timeout=120,
    )
    print(rerun.stdout)
    expect(rerun.returncode == 0, f"warm re-run exited {rerun.returncode}: {rerun.stderr}")
    expect("0 remaining" in rerun.stdout, "resume report shows remaining points")
    expect(
        f"({POINTS} cached, 0 simulated, 0 optimum requests" in rerun.stdout,
        "warm re-run was not a pure cache hit — points were lost",
    )
    print("distributed smoke OK")


if __name__ == "__main__":
    main()
