#!/usr/bin/env python
"""End-to-end smoke test of ``repro serve`` (used by the CI service job).

Exercises the full daemon lifecycle over real HTTP and real signals:

1. start ``repro serve`` as a subprocess on a free port,
2. create a session and feed it 100 zipf requests,
3. check ``GET /session/<id>/plan``'s projected outcome against an offline
   batch run of the identical instance (the stepped kernel's
   prefix-of-batch invariant, observed through the whole service stack),
4. ``SIGTERM`` the daemon (graceful shutdown must flush session snapshots),
5. restart it on another port and verify the session resumed exactly —
   same horizon, same cursor, same simulation clock, and an identical plan
   (zero recompute: the restarted cursor may not regress).

Exits non-zero with a diagnostic on the first violated expectation.
"""

from __future__ import annotations

import json
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.algorithms import make_algorithm
from repro.disksim.executor import simulate
from repro.workloads.spec import build_workload_instance

WORKLOAD = "zipf:n=100,blocks=50,skew=0.8,seed=7"
CACHE_SIZE = 8
FETCH_TIME = 4
ALGORITHM = "aggressive"


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def call(port: int, method: str, path: str, body=None):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def wait_for_server(port: int, process: subprocess.Popen, attempts: int = 50):
    for _ in range(attempts):
        if process.poll() is not None:
            fail(f"server exited early with code {process.returncode}")
        try:
            return call(port, "GET", "/health")
        except (urllib.error.URLError, ConnectionError):
            time.sleep(0.2)
    fail(f"server on port {port} never became healthy")


def start_server(port: int, state_dir: Path) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port), "--state-dir", str(state_dir),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )


def stop_server(process: subprocess.Popen) -> None:
    process.send_signal(signal.SIGTERM)
    code = process.wait(timeout=30)
    if code != 0:
        fail(f"server did not shut down cleanly (exit {code})")


def fail(message: str) -> None:
    print(f"SERVICE SMOKE FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def expect(condition: bool, message: str) -> None:
    if not condition:
        fail(message)


def main() -> None:
    instance = build_workload_instance(
        WORKLOAD, cache_size=CACHE_SIZE, fetch_time=FETCH_TIME, disks=1, layout="striped"
    )
    requests = list(instance.sequence.requests)
    offline = simulate(instance, make_algorithm(ALGORITHM))

    state_dir = Path(tempfile.mkdtemp(prefix="repro-service-smoke-"))
    port = free_port()
    server = start_server(port, state_dir)
    try:
        wait_for_server(port, server)
        session = call(port, "POST", "/session", {
            "algorithm": ALGORITHM,
            "cache_size": CACHE_SIZE,
            "fetch_time": FETCH_TIME,
        })["session"]
        fed = call(port, "POST", f"/session/{session}/requests", {"requests": requests})
        expect(fed["horizon"] == len(requests), f"horizon {fed['horizon']} != {len(requests)}")
        plan = call(port, "GET", f"/session/{session}/plan")
        expect(
            plan["projected"]["stall_time"] == offline.metrics.stall_time,
            f"projected stall {plan['projected']['stall_time']} != "
            f"offline {offline.metrics.stall_time}",
        )
        # JSON objects have string keys, so push the offline metrics through
        # the same round-trip the HTTP response went through before comparing.
        offline_metrics = json.loads(json.dumps(offline.metrics.as_dict()))
        expect(
            plan["projected"]["metrics"] == offline_metrics,
            "projected metrics differ from the offline batch run",
        )
        print(f"plan matches batch oracle (stall={offline.metrics.stall_time})")
    finally:
        stop_server(server)
    expect((state_dir / f"{session}.snapshot.json").exists(), "no snapshot flushed on SIGTERM")

    port2 = free_port()
    server = start_server(port2, state_dir)
    try:
        wait_for_server(port2, server)
        sessions = call(port2, "GET", "/sessions")["sessions"]
        expect(
            [s["session"] for s in sessions] == [session],
            f"restart restored {sessions!r}, expected session {session!r}",
        )
        resumed = sessions[0]
        expect(resumed["horizon"] == fed["horizon"], "restored horizon differs")
        expect(resumed["cursor"] == fed["cursor"], "restored cursor differs (recompute!)")
        expect(resumed["time"] == fed["time"], "restored clock differs")
        plan2 = call(port2, "GET", f"/session/{session}/plan")
        expect(plan2["projected"] == plan["projected"], "plan changed across restart")
        expect(plan2["upcoming"] == plan["upcoming"], "upcoming decisions changed across restart")
        print(
            f"restart resumed session {session} at cursor {resumed['cursor']}/"
            f"{resumed['horizon']} with an identical plan"
        )
    finally:
        stop_server(server)
    print("service smoke OK")


if __name__ == "__main__":
    main()
