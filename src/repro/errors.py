"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration problems from infeasible
schedules or solver failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "InvalidSequenceError",
    "InvalidScheduleError",
    "CacheError",
    "PointEvaluationError",
    "PolicyError",
    "SolverError",
    "StoreError",
    "InfeasibleError",
    "CoordinatorShutdown",
    "WorkerTransportError",
]


class ReproError(Exception):
    """Base class for all exceptions raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A simulation or solver was configured with inconsistent parameters.

    Examples: non-positive cache size, fetch time ``F < 1``, a block mapped
    to a disk that does not exist, or an initial cache larger than ``k``.
    """


class InvalidSequenceError(ReproError):
    """A request sequence is malformed (empty request, unknown block, ...)."""


class InvalidScheduleError(ReproError):
    """A prefetching/caching schedule violates the model constraints.

    Raised by the schedule executor when a fetch is issued on a busy disk,
    a victim is not resident, a fetched block is already resident, the cache
    capacity is exceeded, or a request is served while its block is absent.
    """


class CacheError(ReproError):
    """An illegal cache-state transition was attempted."""


class PointEvaluationError(ReproError):
    """Evaluating one experiment grid point failed.

    Raised by the runner's worker entry points with the failing
    ``ExperimentPoint.describe()`` label in the message, so a parallel
    sweep's failure names the exact grid point instead of surfacing a bare
    worker traceback.  Carries only its message string, so it pickles
    cleanly across process-pool boundaries.
    """


class PolicyError(ReproError):
    """A prefetching policy returned an invalid decision."""


class SolverError(ReproError):
    """The LP/MILP backend failed or returned an unusable result."""


class StoreError(ReproError):
    """The run store could not be opened (missing, corrupt, not a database)."""


class CoordinatorShutdown(ReproError):
    """A distributed-sweep coordinator was asked to stop mid-run.

    Raised out of :meth:`repro.analysis.remote.RemoteBackend.map` when a
    shutdown is requested (SIGTERM on ``repro coordinator``) while results
    are still outstanding.  Every result received before the shutdown has
    already been persisted, so catching this and reconciling the sweep
    manifest loses no progress.
    """


class WorkerTransportError(ReproError):
    """A sweep worker exhausted its transport retries against the coordinator.

    Raised by the worker-side HTTP transport after its capped exponential
    backoff schedule ran out; the worker loop treats it as "coordinator
    gone" and exits (leases it held simply expire and are re-issued).
    """


class InfeasibleError(SolverError):
    """The optimisation model has no feasible solution.

    For the integrated prefetching/caching LP this indicates an internal
    modelling bug: the model is always feasible because demand fetching every
    block one request before its use is a feasible (if slow) schedule.
    """
