"""Multi-disk instance builders: block placement strategies.

The parallel-disk experiments need both a request sequence and an assignment
of blocks to the ``D`` disks.  Placement strongly affects how much
parallelism a prefetcher can exploit — striping spreads consecutive blocks
across disks (maximum overlap), partitioning by stream keeps each stream on
one disk (fetches of one stream serialise), and hashing is the neutral
baseline.  These helpers build :class:`~repro.disksim.instance.ProblemInstance`
objects from any request sequence.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Sequence, Tuple

from .._typing import BlockId
from ..disksim.disk import DiskLayout
from ..disksim.instance import ProblemInstance
from ..disksim.sequence import RequestSequence
from ..errors import ConfigurationError

__all__ = [
    "striped_instance",
    "hashed_instance",
    "partitioned_instance",
    "contiguous_partitioned_instance",
    "first_seen_round_robin_instance",
]


def _as_sequence(requests: RequestSequence | Sequence[BlockId]) -> RequestSequence:
    return requests if isinstance(requests, RequestSequence) else RequestSequence(requests)


def striped_instance(
    requests: RequestSequence | Sequence[BlockId],
    cache_size: int,
    fetch_time: int,
    num_disks: int,
    *,
    initial_cache: Iterable[BlockId] = (),
) -> ProblemInstance:
    """Place distinct blocks round-robin over disks in sorted-name order."""
    seq = _as_sequence(requests)
    layout = DiskLayout.striped(sorted(seq.distinct_blocks, key=str), num_disks)
    return ProblemInstance.parallel_disk(seq, cache_size, fetch_time, layout, initial_cache)


def hashed_instance(
    requests: RequestSequence | Sequence[BlockId],
    cache_size: int,
    fetch_time: int,
    num_disks: int,
    *,
    initial_cache: Iterable[BlockId] = (),
) -> ProblemInstance:
    """Place blocks by a stable hash of their identifier."""
    seq = _as_sequence(requests)
    layout = DiskLayout.hashed(sorted(seq.distinct_blocks, key=str), num_disks)
    return ProblemInstance.parallel_disk(seq, cache_size, fetch_time, layout, initial_cache)


def first_seen_round_robin_instance(
    requests: RequestSequence | Sequence[BlockId],
    cache_size: int,
    fetch_time: int,
    num_disks: int,
    *,
    initial_cache: Iterable[BlockId] = (),
) -> ProblemInstance:
    """Assign blocks to disks round-robin in order of first appearance.

    Consecutive *new* blocks land on different disks, which is the placement
    that maximises fetch overlap for scan-like workloads — the favourable case
    for parallel prefetching.
    """
    seq = _as_sequence(requests)
    mapping = {}
    next_disk = 0
    for block in seq:
        if block not in mapping:
            mapping[block] = next_disk
            next_disk = (next_disk + 1) % num_disks
    layout = DiskLayout(num_disks, mapping)
    return ProblemInstance.parallel_disk(seq, cache_size, fetch_time, layout, initial_cache)


def contiguous_partitioned_instance(
    requests: RequestSequence | Sequence[BlockId],
    cache_size: int,
    fetch_time: int,
    num_disks: int,
    *,
    initial_cache: Iterable[BlockId] = (),
) -> ProblemInstance:
    """Split the sorted block list into ``num_disks`` contiguous chunks, one per disk.

    Name-adjacent blocks (a file's extent, one client's region, one stream)
    land on the same disk, so scan-shaped access within a chunk serialises on
    that disk — the unfavourable contrast to striping/round-robin that the
    layout sweeps measure.  This is the spec-addressable form of
    :func:`partitioned_instance` (which needs explicit partitions).
    """
    if num_disks < 1:
        raise ConfigurationError(f"num_disks must be >= 1, got {num_disks}")
    seq = _as_sequence(requests)
    blocks = sorted(seq.distinct_blocks, key=_natural_key)
    chunk = -(-len(blocks) // num_disks)  # ceil division; trailing chunks may be empty
    partitions = [blocks[d * chunk : (d + 1) * chunk] for d in range(num_disks)]
    layout = DiskLayout.partitioned(partitions)
    return ProblemInstance.parallel_disk(seq, cache_size, fetch_time, layout, initial_cache)


def _natural_key(block: BlockId) -> Tuple[object, ...]:
    """Sort key treating digit runs numerically, so ``s2`` precedes ``s10``.

    Plain lexicographic order would scatter the generators' numeric names
    (``s0, s1, s10, s11, ..., s2, ...``) and make the "contiguous" chunks
    interleave in access order, erasing the serialisation behaviour this
    layout exists to exhibit.
    """
    parts: List[object] = []
    for piece in re.split(r"(\d+)", str(block)):
        parts.append((1, int(piece)) if piece.isdigit() else (0, piece))
    return tuple(parts)


def partitioned_instance(
    requests: RequestSequence | Sequence[BlockId],
    cache_size: int,
    fetch_time: int,
    partitions: Sequence[Sequence[BlockId]],
    *,
    initial_cache: Iterable[BlockId] = (),
) -> ProblemInstance:
    """Place blocks on disks according to explicit partitions (one per disk).

    Every block requested by the sequence must appear in exactly one
    partition.
    """
    seq = _as_sequence(requests)
    layout = DiskLayout.partitioned(partitions)
    missing = [b for b in seq.distinct_blocks if b not in layout.mapping]
    if missing:
        raise ConfigurationError(
            f"{len(missing)} requested blocks are not assigned to any partition, "
            f"e.g. {sorted(map(str, missing))[:5]}"
        )
    return ProblemInstance.parallel_disk(seq, cache_size, fetch_time, layout, initial_cache)
