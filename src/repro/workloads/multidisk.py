"""Multi-disk instance builders: block placement strategies.

The parallel-disk experiments need both a request sequence and an assignment
of blocks to the ``D`` disks.  Placement strongly affects how much
parallelism a prefetcher can exploit — striping spreads consecutive blocks
across disks (maximum overlap), partitioning by stream keeps each stream on
one disk (fetches of one stream serialise), and hashing is the neutral
baseline.  These helpers build :class:`~repro.disksim.instance.ProblemInstance`
objects from any request sequence.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .._typing import BlockId
from ..disksim.disk import DiskLayout
from ..disksim.instance import ProblemInstance
from ..disksim.sequence import RequestSequence
from ..errors import ConfigurationError

__all__ = [
    "striped_instance",
    "hashed_instance",
    "partitioned_instance",
    "first_seen_round_robin_instance",
]


def _as_sequence(requests: RequestSequence | Sequence[BlockId]) -> RequestSequence:
    return requests if isinstance(requests, RequestSequence) else RequestSequence(requests)


def striped_instance(
    requests: RequestSequence | Sequence[BlockId],
    cache_size: int,
    fetch_time: int,
    num_disks: int,
    *,
    initial_cache: Iterable[BlockId] = (),
) -> ProblemInstance:
    """Place distinct blocks round-robin over disks in sorted-name order."""
    seq = _as_sequence(requests)
    layout = DiskLayout.striped(sorted(seq.distinct_blocks, key=str), num_disks)
    return ProblemInstance.parallel_disk(seq, cache_size, fetch_time, layout, initial_cache)


def hashed_instance(
    requests: RequestSequence | Sequence[BlockId],
    cache_size: int,
    fetch_time: int,
    num_disks: int,
    *,
    initial_cache: Iterable[BlockId] = (),
) -> ProblemInstance:
    """Place blocks by a stable hash of their identifier."""
    seq = _as_sequence(requests)
    layout = DiskLayout.hashed(sorted(seq.distinct_blocks, key=str), num_disks)
    return ProblemInstance.parallel_disk(seq, cache_size, fetch_time, layout, initial_cache)


def first_seen_round_robin_instance(
    requests: RequestSequence | Sequence[BlockId],
    cache_size: int,
    fetch_time: int,
    num_disks: int,
    *,
    initial_cache: Iterable[BlockId] = (),
) -> ProblemInstance:
    """Assign blocks to disks round-robin in order of first appearance.

    Consecutive *new* blocks land on different disks, which is the placement
    that maximises fetch overlap for scan-like workloads — the favourable case
    for parallel prefetching.
    """
    seq = _as_sequence(requests)
    mapping = {}
    next_disk = 0
    for block in seq:
        if block not in mapping:
            mapping[block] = next_disk
            next_disk = (next_disk + 1) % num_disks
    layout = DiskLayout(num_disks, mapping)
    return ProblemInstance.parallel_disk(seq, cache_size, fetch_time, layout, initial_cache)


def partitioned_instance(
    requests: RequestSequence | Sequence[BlockId],
    cache_size: int,
    fetch_time: int,
    partitions: Sequence[Sequence[BlockId]],
    *,
    initial_cache: Iterable[BlockId] = (),
) -> ProblemInstance:
    """Place blocks on disks according to explicit partitions (one per disk).

    Every block requested by the sequence must appear in exactly one
    partition.
    """
    seq = _as_sequence(requests)
    layout = DiskLayout.partitioned(partitions)
    missing = [b for b in seq.distinct_blocks if b not in layout.mapping]
    if missing:
        raise ConfigurationError(
            f"{len(missing)} requested blocks are not assigned to any partition, "
            f"e.g. {sorted(map(str, missing))[:5]}"
        )
    return ProblemInstance.parallel_disk(seq, cache_size, fetch_time, layout, initial_cache)
