"""Adversarial request sequences from the lower-bound proofs.

Two constructions are implemented:

* :func:`theorem2_sequence` — the phase construction from Theorem 2 of the
  paper, which forces the Aggressive algorithm into a ratio of
  ``1 + (F - 2)/(k + (k-1)/(F-1) + 2)``, i.e. arbitrarily close to
  ``min{1 + F/(k + (k-1)/(F-1)), 2}`` as the number of phases grows.  The
  construction requires ``F - 1`` to divide ``k - 1`` and ``F <= k``; helper
  :func:`theorem2_parameters` enumerates valid ``(k, F)`` pairs.

* :func:`cao_f_ge_k_sequence` — the classical Cao et al. style sequence for
  ``F >= k`` on which no overlap is possible for Aggressive-like strategies
  and the factor-2 regime is approached: a cyclic scan over ``k + 1`` blocks
  (every request misses under any k-block cache, LRU- and MIN-alike).

Both generators also report the *predicted* per-phase costs stated in the
paper so that experiments can check measured behaviour against the proof's
accounting (Aggressive: ``k + l + F`` time units per phase; OPT:
``k + l + 2``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from .._typing import BlockId
from ..disksim.instance import ProblemInstance
from ..disksim.sequence import RequestSequence
from ..errors import ConfigurationError

__all__ = [
    "Theorem2Construction",
    "theorem2_sequence",
    "theorem2_parameters",
    "cao_f_ge_k_sequence",
]


@dataclass(frozen=True)
class Theorem2Construction:
    """The Theorem 2 lower-bound instance plus the proof's predicted accounting."""

    instance: ProblemInstance
    num_phases: int
    phase_length: int
    blocks_per_phase: int
    aggressive_time_per_phase: int
    optimal_time_per_phase: int

    @property
    def predicted_ratio(self) -> float:
        """Per-phase ratio ``(k + l + F)/(k + l + 2)`` the construction forces."""
        return self.aggressive_time_per_phase / self.optimal_time_per_phase

    @property
    def asymptotic_ratio(self) -> float:
        """The Theorem 2 bound ``min{1 + F/(k + (k-1)/(F-1)), 2}``."""
        k = self.instance.cache_size
        fetch_time = self.instance.fetch_time
        return min(1.0 + fetch_time / (k + (k - 1) / (fetch_time - 1)), 2.0)


def theorem2_parameters(
    max_cache: int, max_fetch: int
) -> Iterator[Tuple[int, int]]:
    """Yield ``(k, F)`` pairs valid for the Theorem 2 construction.

    Validity requires ``1 < F <= k`` and ``(F - 1) | (k - 1)``.
    """
    for fetch_time in range(2, max_fetch + 1):
        for k in range(fetch_time, max_cache + 1):
            if (k - 1) % (fetch_time - 1) == 0:
                yield (k, fetch_time)


def theorem2_sequence(k: int, fetch_time: int, num_phases: int) -> Theorem2Construction:
    """Build the Theorem 2 adversarial instance for ``(k, F)`` with ``num_phases`` phases.

    Phase ``i`` requests ``a1``, then the ``l`` new blocks of the *previous*
    phase (``b^{i-1}_1 .. b^{i-1}_l``), then ``a2 .. a_{k-l}``, and finally
    ``l`` brand-new blocks ``b^i_1 .. b^i_l``, where ``l = (k-1)/(F-1)``.
    Aggressive starts fetching the new blocks right after ``a1``, is forced to
    evict ``a1`` and pays ``F - 1`` extra stall units to bring it back; the
    optimum waits one request and evicts the dead blocks of the previous
    phase instead.
    """
    if fetch_time < 2:
        raise ConfigurationError("Theorem 2 construction needs F >= 2")
    if fetch_time > k:
        raise ConfigurationError("Theorem 2 construction needs F <= k")
    if (k - 1) % (fetch_time - 1) != 0:
        raise ConfigurationError(
            f"Theorem 2 construction needs (F - 1) | (k - 1); got k={k}, F={fetch_time}"
        )
    if num_phases < 1:
        raise ConfigurationError("need at least one phase")

    l = (k - 1) // (fetch_time - 1)
    if l >= k:
        raise ConfigurationError(
            f"construction degenerates for k={k}, F={fetch_time}: l={l} >= k"
        )
    a_blocks: List[BlockId] = [f"a{j}" for j in range(1, k - l + 1)]

    def phase_new_blocks(phase: int) -> List[BlockId]:
        return [f"b{phase}_{j}" for j in range(1, l + 1)]

    requests: List[BlockId] = []
    for phase in range(1, num_phases + 1):
        previous = phase_new_blocks(phase - 1)
        current = phase_new_blocks(phase)
        requests.append(a_blocks[0])
        requests.extend(previous)
        requests.extend(a_blocks[1:])
        requests.extend(current)

    initial_cache = list(a_blocks) + phase_new_blocks(0)
    instance = ProblemInstance.single_disk(
        RequestSequence(requests),
        cache_size=k,
        fetch_time=fetch_time,
        initial_cache=initial_cache,
    )
    return Theorem2Construction(
        instance=instance,
        num_phases=num_phases,
        phase_length=k + l,
        blocks_per_phase=l,
        aggressive_time_per_phase=k + l + fetch_time,
        optimal_time_per_phase=k + l + 2,
    )


def cao_f_ge_k_sequence(k: int, fetch_time: int, num_cycles: int) -> ProblemInstance:
    """A cyclic scan over ``k + 1`` distinct blocks, repeated ``num_cycles`` times.

    With only ``k`` cache slots every request to the cycling block set
    eventually misses regardless of the replacement policy, so when
    ``F >= k`` no strategy can hide more than ``k`` of the ``F`` fetch units
    behind computation and all reasonable algorithms approach the factor-2
    regime of the elapsed-time measure.  Used by the E1/E5 experiments as the
    ``F >= k`` stress case.
    """
    if k < 1 or fetch_time < 1:
        raise ConfigurationError("k and F must be positive")
    if num_cycles < 1:
        raise ConfigurationError("need at least one cycle")
    blocks = [f"c{j}" for j in range(k + 1)]
    requests: List[BlockId] = []
    for _ in range(num_cycles):
        requests.extend(blocks)
    return ProblemInstance.single_disk(
        RequestSequence(requests),
        cache_size=k,
        fetch_time=fetch_time,
        initial_cache=blocks[:k],
    )
