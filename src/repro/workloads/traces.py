"""Trace-like workloads and a simple on-disk trace format.

The experimental prefetching literature that motivates the paper (Cao et
al.'s SIGMETRICS studies, Patterson et al.'s informed prefetching, the
Kimbrel et al. trace-driven comparison) evaluates on application I/O traces:
file scans with computation between accesses, database joins that alternate
between relations, and multimedia streams with near-perfect sequentiality.
Those traces are not redistributable, so this module provides synthetic
generators that reproduce their *access-pattern shape* (the property the
algorithms react to), plus a tiny text format so users can plug in their own
traces.

Trace file format: one block identifier per line; blank lines and lines
starting with ``#`` are ignored.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence

import numpy as np

from .._typing import BlockId
from ..disksim.sequence import RequestSequence
from ..errors import ConfigurationError, InvalidSequenceError

__all__ = [
    "file_scan_trace",
    "database_join_trace",
    "multimedia_stream_trace",
    "load_trace",
    "save_trace",
]


def file_scan_trace(
    num_files: int,
    blocks_per_file: int,
    *,
    rescans: int = 1,
    hot_block_accesses: int = 0,
    seed: int = 0,
) -> RequestSequence:
    """Sequential scans over several files with optional hot metadata blocks.

    Each file ``f`` consists of blocks ``f<i>_<j>`` read in order; the whole
    set of files is scanned ``rescans`` times.  ``hot_block_accesses`` extra
    references to a small set of "metadata" blocks are sprinkled in between,
    modelling directory/inode blocks that a caching policy should pin while a
    prefetcher streams the file data past them.
    """
    if num_files < 1 or blocks_per_file < 1 or rescans < 1:
        raise ConfigurationError("num_files, blocks_per_file and rescans must be positive")
    rng = np.random.default_rng(seed)
    hot_blocks = [f"meta{j}" for j in range(max(1, num_files // 2))]
    requests: List[BlockId] = []
    for _ in range(rescans):
        for f in range(num_files):
            for j in range(blocks_per_file):
                requests.append(f"f{f}_{j}")
                if hot_block_accesses and rng.random() < hot_block_accesses / (
                    num_files * blocks_per_file
                ):
                    requests.append(hot_blocks[int(rng.integers(0, len(hot_blocks)))])
    return RequestSequence(requests)


def database_join_trace(
    outer_blocks: int,
    inner_blocks: int,
    *,
    inner_passes_per_outer: int = 1,
    seed: int = 0,
) -> RequestSequence:
    """A block nested-loop join: for each outer block, scan the inner relation.

    The inner relation is rescanned repeatedly, which is the classic pattern
    where the *combination* of caching (keep the inner relation resident if it
    fits) and prefetching (stream it if it does not) matters.
    """
    if outer_blocks < 1 or inner_blocks < 1 or inner_passes_per_outer < 1:
        raise ConfigurationError("relation sizes and passes must be positive")
    requests: List[BlockId] = []
    for o in range(outer_blocks):
        requests.append(f"outer{o}")
        for _ in range(inner_passes_per_outer):
            requests.extend(f"inner{i}" for i in range(inner_blocks))
    return RequestSequence(requests)


def multimedia_stream_trace(
    num_streams: int,
    blocks_per_stream: int,
    *,
    seed: int = 0,
) -> RequestSequence:
    """Several strictly sequential streams consumed in round-robin interleaving.

    Models video/audio playback where each stream is perfectly predictable but
    the cache is shared across streams, so eviction decisions interact with
    per-stream prefetch depth.
    """
    if num_streams < 1 or blocks_per_stream < 1:
        raise ConfigurationError("num_streams and blocks_per_stream must be positive")
    requests: List[BlockId] = []
    for j in range(blocks_per_stream):
        for s in range(num_streams):
            requests.append(f"st{s}_{j}")
    return RequestSequence(requests)


def save_trace(sequence: RequestSequence | Sequence[BlockId], path: str | Path) -> None:
    """Write a request sequence to ``path`` in the one-block-per-line format."""
    seq = sequence if isinstance(sequence, RequestSequence) else RequestSequence(sequence)
    lines = ["# repro trace format: one block identifier per line"]
    lines.extend(str(block) for block in seq)
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf8")


def load_trace(path: str | Path) -> RequestSequence:
    """Read a request sequence from the one-block-per-line text format.

    A missing or unreadable file raises
    :class:`~repro.errors.ConfigurationError` naming the path — the same
    strict-configuration contract the spec registry gives every other bad
    parameter — instead of leaking a raw :class:`OSError`.
    """
    try:
        text = Path(path).read_text(encoding="utf8")
    except OSError as exc:
        raise ConfigurationError(f"cannot read trace file {path}: {exc}") from exc
    requests = [
        line.strip()
        for line in text.splitlines()
        if line.strip() and not line.lstrip().startswith("#")
    ]
    if not requests:
        raise InvalidSequenceError(f"trace file {path} contains no requests")
    return RequestSequence(requests)
