"""The two worked examples from the paper's introduction.

The paper illustrates the model with two tiny instances whose numbers are
stated explicitly; the E0 experiment (and several integration tests)
reproduce them digit for digit:

* **Single-disk example** (Section 1): ``sigma = b1 b2 b3 b4 b4 b5 b1 b4 b4
  b2`` with ``k = 4``, ``F = 4`` and ``b1..b4`` initially in cache.  Fetching
  ``b5`` at the request to ``b2`` (and evicting ``b1``) yields 3 units of
  stall and elapsed time 13; the better option — fetching at the request to
  ``b3`` and evicting ``b2`` — yields 1 unit of stall before ``b5`` and
  elapsed time 11.

* **Two-disk example** (Section 1): ``b1..b4`` on disk 1, ``c1..c3`` on
  disk 2, ``k = 4``, ``F = 4``, initial cache ``{b1, b2, c1, c2}`` and
  ``sigma = b1 b2 c1 c2 b3 c3 b4``.  The schedule described in the paper
  (disk 1 fetches ``b3`` at the request to ``b2`` evicting ``b1``, disk 2
  fetches ``c3`` one request later evicting ``b2``, disk 1 then fetches
  ``b4`` at the request to ``b3``) incurs a total stall time of 3.
"""

from __future__ import annotations

from ..disksim.disk import DiskLayout
from ..disksim.instance import ProblemInstance
from ..disksim.schedule import IntervalFetch, IntervalSchedule

__all__ = [
    "single_disk_example",
    "single_disk_example_good_schedule",
    "single_disk_example_greedy_schedule",
    "parallel_disk_example",
    "parallel_disk_example_schedule",
]


def single_disk_example() -> ProblemInstance:
    """The Section 1 single-disk instance (k=4, F=4, warm cache b1..b4)."""
    return ProblemInstance.single_disk(
        ["b1", "b2", "b3", "b4", "b4", "b5", "b1", "b4", "b4", "b2"],
        cache_size=4,
        fetch_time=4,
        initial_cache=["b1", "b2", "b3", "b4"],
    )


def single_disk_example_greedy_schedule() -> IntervalSchedule:
    """The paper's *first* option: fetch b5 at the request to b2, evicting b1.

    The eviction of ``b1`` forces a second fetch that can only overlap the
    request to ``b5``: 3 units of stall, elapsed time 13.
    """
    inst = single_disk_example()
    fetches = (
        # Fetch b5 while serving b2, b3, b4, b4 (interval (1, 6) in paper
        # notation, fully overlapped); evict b1.
        IntervalFetch(start_pos=1, end_pos=6, disk=0, block="b5", victim="b1"),
        # Fetch b1 back; it can only overlap the request to b5, so 3 units of
        # stall are incurred before b1's reference (interval (5, 7)).
        IntervalFetch(start_pos=5, end_pos=7, disk=0, block="b1", victim="b3"),
    )
    return IntervalSchedule(
        fetch_time=inst.fetch_time,
        num_disks=1,
        num_requests=inst.num_requests,
        fetches=fetches,
        initial_cache=inst.initial_cache,
    )


def single_disk_example_good_schedule() -> IntervalSchedule:
    """The paper's *better* option: fetch b5 at the request to b3, evicting b2.

    One unit of stall before ``b5``; ``b2`` is fetched back completely
    overlapped with computation: elapsed time 11.
    """
    inst = single_disk_example()
    fetches = (
        # Fetch b5 while serving b3, b4, b4 (interval (2, 6): one unit of
        # stall before b5's reference); evict b2.
        IntervalFetch(start_pos=2, end_pos=6, disk=0, block="b5", victim="b2"),
        # Fetch b2 back fully overlapped with serving b5, b1, b4, b4
        # (interval (5, 10), no stall).
        IntervalFetch(start_pos=5, end_pos=10, disk=0, block="b2", victim="b3"),
    )
    return IntervalSchedule(
        fetch_time=inst.fetch_time,
        num_disks=1,
        num_requests=inst.num_requests,
        fetches=fetches,
        initial_cache=inst.initial_cache,
    )


def parallel_disk_example() -> ProblemInstance:
    """The Section 1 two-disk instance (k=4, F=4, warm cache {b1, b2, c1, c2})."""
    layout = DiskLayout.partitioned([["b1", "b2", "b3", "b4"], ["c1", "c2", "c3"]])
    return ProblemInstance.parallel_disk(
        ["b1", "b2", "c1", "c2", "b3", "c3", "b4"],
        cache_size=4,
        fetch_time=4,
        layout=layout,
        initial_cache=["b1", "b2", "c1", "c2"],
    )


def parallel_disk_example_schedule() -> IntervalSchedule:
    """The schedule described in the paper for the two-disk example (stall 3).

    Disk 1 fetches ``b3`` starting at the request to ``b2`` (evicting ``b1``),
    disk 2 fetches ``c3`` one request later (evicting ``b2``), and disk 1
    fetches ``b4`` starting at the request to ``b3``; the total stall time of
    the schedule is 3.
    """
    inst = parallel_disk_example()
    fetches = (
        # Disk 0: fetch b3 while serving b2, c1, c2 (positions 1..3); 1 stall.
        IntervalFetch(start_pos=1, end_pos=5, disk=0, block="b3", victim="b1"),
        # Disk 1: fetch c3 while serving c1, c2 (positions 2..3) plus the
        # stall unit shared with disk 0's fetch; no additional stall.
        IntervalFetch(start_pos=2, end_pos=6, disk=1, block="c3", victim="b2"),
        # Disk 0: fetch b4 starting at the request to b3 (position 4); only
        # b3 and c3 can overlap it, so 2 more units of stall.
        IntervalFetch(start_pos=4, end_pos=7, disk=0, block="b4", victim="c1"),
    )
    return IntervalSchedule(
        fetch_time=inst.fetch_time,
        num_disks=2,
        num_requests=inst.num_requests,
        fetches=fetches,
        initial_cache=inst.initial_cache,
    )
