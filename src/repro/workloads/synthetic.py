"""Synthetic request-sequence generators.

These generators provide the workload variety the experiments sweep over:
uniform random references, Zipf-skewed references (a standard stand-in for
file and buffer-pool popularity distributions), sequential and strided scans,
looping scans (the classic pattern where prefetching shines and pure LRU
caching fails), and mixtures of phases with different locality.  All
generators are deterministic given a seed and return
:class:`~repro.disksim.sequence.RequestSequence` objects.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .._typing import BlockId
from ..disksim.sequence import RequestSequence
from ..errors import ConfigurationError

__all__ = [
    "uniform_random",
    "zipf",
    "sequential_scan",
    "strided_scan",
    "looping_scan",
    "mixed_phases",
    "working_set_shift",
    "markov_phases",
    "multiclient_streams",
]


def _block_names(num_blocks: int, prefix: str = "x") -> List[BlockId]:
    return [f"{prefix}{j}" for j in range(num_blocks)]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _zipf_weights(count: int, skew: float) -> np.ndarray:
    """Normalised Zipf weights: rank ``j`` (1-based) has weight ``1/j^skew``."""
    weights = 1.0 / np.power(np.arange(1, count + 1, dtype=float), skew)
    return weights / weights.sum()


def uniform_random(
    num_requests: int, num_blocks: int, *, seed: int = 0, prefix: str = "u"
) -> RequestSequence:
    """Independent uniform references over ``num_blocks`` distinct blocks."""
    if num_requests < 1 or num_blocks < 1:
        raise ConfigurationError("num_requests and num_blocks must be positive")
    rng = _rng(seed)
    names = _block_names(num_blocks, prefix)
    picks = rng.integers(0, num_blocks, size=num_requests)
    return RequestSequence([names[i] for i in picks])


def zipf(
    num_requests: int,
    num_blocks: int,
    *,
    skew: float = 1.0,
    seed: int = 0,
    prefix: str = "z",
) -> RequestSequence:
    """Zipf-distributed references: block ``j`` has weight ``1/(j+1)^skew``.

    ``skew = 0`` degenerates to uniform; ``skew`` around 1 models typical
    file-popularity skew.
    """
    if num_requests < 1 or num_blocks < 1:
        raise ConfigurationError("num_requests and num_blocks must be positive")
    if skew < 0:
        raise ConfigurationError("skew must be non-negative")
    rng = _rng(seed)
    names = _block_names(num_blocks, prefix)
    picks = rng.choice(num_blocks, size=num_requests, p=_zipf_weights(num_blocks, skew))
    return RequestSequence([names[i] for i in picks])


def sequential_scan(
    num_blocks: int, *, repeats_per_block: int = 1, prefix: str = "s"
) -> RequestSequence:
    """One pass over ``num_blocks`` blocks in order (each block repeated)."""
    if num_blocks < 1 or repeats_per_block < 1:
        raise ConfigurationError("num_blocks and repeats_per_block must be positive")
    names = _block_names(num_blocks, prefix)
    requests: List[BlockId] = []
    for name in names:
        requests.extend([name] * repeats_per_block)
    return RequestSequence(requests)


def strided_scan(
    num_blocks: int, stride: int, num_requests: int, *, prefix: str = "t"
) -> RequestSequence:
    """Visit blocks ``0, stride, 2*stride, ...`` modulo ``num_blocks``."""
    if num_blocks < 1 or stride < 1 or num_requests < 1:
        raise ConfigurationError("num_blocks, stride and num_requests must be positive")
    names = _block_names(num_blocks, prefix)
    return RequestSequence([names[(i * stride) % num_blocks] for i in range(num_requests)])


def looping_scan(
    num_blocks: int, num_loops: int, *, prefix: str = "l"
) -> RequestSequence:
    """Repeatedly scan the same ``num_blocks`` blocks, ``num_loops`` times.

    When the loop is slightly larger than the cache, LRU caching alone keeps
    missing on every request while prefetching can hide most of the latency —
    the canonical motivating pattern for integrated prefetching and caching.
    """
    if num_blocks < 1 or num_loops < 1:
        raise ConfigurationError("num_blocks and num_loops must be positive")
    names = _block_names(num_blocks, prefix)
    return RequestSequence(names * num_loops)


def working_set_shift(
    num_phases: int,
    blocks_per_phase: int,
    requests_per_phase: int,
    *,
    overlap: int = 0,
    seed: int = 0,
    prefix: str = "w",
) -> RequestSequence:
    """Random references within a working set that shifts every phase.

    Each phase draws uniformly from its own window of ``blocks_per_phase``
    blocks; consecutive windows share ``overlap`` blocks.  This mimics an
    application moving between data structures and stresses the eviction side
    of integrated prefetching.
    """
    if num_phases < 1 or blocks_per_phase < 1 or requests_per_phase < 1:
        raise ConfigurationError("phase parameters must be positive")
    if not 0 <= overlap < blocks_per_phase:
        raise ConfigurationError("overlap must lie in [0, blocks_per_phase)")
    rng = _rng(seed)
    requests: List[BlockId] = []
    step = blocks_per_phase - overlap
    for phase in range(num_phases):
        base = phase * step
        names = [f"{prefix}{base + j}" for j in range(blocks_per_phase)]
        picks = rng.integers(0, blocks_per_phase, size=requests_per_phase)
        requests.extend(names[i] for i in picks)
    return RequestSequence(requests)


def markov_phases(
    num_requests: int,
    num_blocks: int,
    *,
    window: int = 12,
    locality: float = 0.9,
    switch: float = 0.05,
    seed: int = 0,
    prefix: str = "m",
) -> RequestSequence:
    """Markov-modulated phase locality: a hot window that jumps at random instants.

    A two-level reference model: at every request the process stays in its
    current locality phase with probability ``1 - switch`` or jumps the hot
    window to a uniformly random position.  Within a phase, a request falls
    inside the ``window``-block hot set with probability ``locality`` and is
    uniform over all ``num_blocks`` otherwise.  Unlike
    :func:`working_set_shift`, phase lengths are geometrically distributed —
    the workload interleaves long stable stretches (where caching wins) with
    bursts of rapid shifts (where prefetching must restock the cache).
    """
    if num_requests < 1 or num_blocks < 1:
        raise ConfigurationError("num_requests and num_blocks must be positive")
    if not 1 <= window <= num_blocks:
        raise ConfigurationError("window must lie in [1, num_blocks]")
    if not 0.0 <= locality <= 1.0 or not 0.0 <= switch <= 1.0:
        raise ConfigurationError("locality and switch must lie in [0, 1]")
    rng = _rng(seed)
    names = _block_names(num_blocks, prefix)
    start = int(rng.integers(0, num_blocks))
    requests: List[BlockId] = []
    for _ in range(num_requests):
        if rng.random() < switch:
            start = int(rng.integers(0, num_blocks))
        if rng.random() < locality:
            requests.append(names[(start + int(rng.integers(0, window))) % num_blocks])
        else:
            requests.append(names[int(rng.integers(0, num_blocks))])
    return RequestSequence(requests)


def multiclient_streams(
    num_clients: int,
    num_requests: int,
    *,
    blocks_per_client: int = 20,
    shared_blocks: int = 10,
    shared_fraction: float = 0.3,
    skew: float = 0.8,
    seed: int = 0,
    prefix: str = "mc",
) -> RequestSequence:
    """Interleaved per-client reference streams emulating many concurrent users.

    Each of ``num_clients`` clients owns a private region of
    ``blocks_per_client`` blocks it references with Zipf popularity ``skew``;
    with probability ``shared_fraction`` a request instead hits a global hot
    set of ``shared_blocks`` blocks (indexes, catalogs).  Requests arrive from
    a uniformly random client, so the streams interleave arbitrarily — the
    shared cache sees per-client locality diluted by the concurrency, the
    regime a production buffer pool actually operates in.
    """
    if num_clients < 1 or num_requests < 1 or blocks_per_client < 1:
        raise ConfigurationError("num_clients, num_requests and blocks_per_client must be positive")
    if shared_blocks < 0:
        raise ConfigurationError("shared_blocks must be non-negative")
    if not 0.0 <= shared_fraction <= 1.0:
        raise ConfigurationError("shared_fraction must lie in [0, 1]")
    if shared_fraction > 0 and shared_blocks == 0:
        raise ConfigurationError("shared_fraction > 0 needs shared_blocks >= 1")
    if skew < 0:
        raise ConfigurationError("skew must be non-negative")
    rng = _rng(seed)
    private_weights = _zipf_weights(blocks_per_client, skew)
    shared_names = [f"{prefix}_sh{j}" for j in range(shared_blocks)]
    shared_weights = _zipf_weights(shared_blocks, skew) if shared_blocks else None
    client_names = [
        [f"{prefix}{c}_{j}" for j in range(blocks_per_client)] for c in range(num_clients)
    ]
    requests: List[BlockId] = []
    for _ in range(num_requests):
        if shared_weights is not None and rng.random() < shared_fraction:
            requests.append(shared_names[int(rng.choice(shared_blocks, p=shared_weights))])
        else:
            client = int(rng.integers(0, num_clients))
            requests.append(
                client_names[client][int(rng.choice(blocks_per_client, p=private_weights))]
            )
    return RequestSequence(requests)


def mixed_phases(
    parts: Sequence[RequestSequence], *, interleave: bool = False, seed: int = 0
) -> RequestSequence:
    """Combine several generated sequences into one workload.

    With ``interleave=False`` the parts are concatenated; with
    ``interleave=True`` requests are merged in random order while preserving
    the relative order within each part (a crude model of concurrent request
    streams sharing one cache).
    """
    if not parts:
        raise ConfigurationError("need at least one part")
    if not interleave:
        combined = parts[0]
        for part in parts[1:]:
            combined = combined.concat(part)
        return combined
    rng = _rng(seed)
    cursors = [0] * len(parts)
    remaining = sum(len(p) for p in parts)
    requests: List[BlockId] = []
    while remaining > 0:
        weights = np.array([len(p) - c for p, c in zip(parts, cursors)], dtype=float)
        weights /= weights.sum()
        idx = int(rng.choice(len(parts), p=weights))
        requests.append(parts[idx][cursors[idx]])
        cursors[idx] += 1
        remaining -= 1
    return RequestSequence(requests)
