"""Workload specification strings.

Workload specs are small strings like ``zipf:n=200,blocks=50,skew=0.8`` or
``trace:path=/tmp/trace.txt``.  They originated in the CLI, but the batched
experiment runner (:mod:`repro.analysis.runner`) uses them as its *portable
instance description*: a spec string pickles trivially, regenerates the same
sequence deterministically in any worker process (all generators take
explicit seeds), and doubles as a human-readable label and cache key.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..disksim.sequence import RequestSequence
from ..errors import ConfigurationError
from .synthetic import looping_scan, sequential_scan, uniform_random, zipf
from .traces import (
    database_join_trace,
    file_scan_trace,
    load_trace,
    multimedia_stream_trace,
)

__all__ = ["WORKLOAD_BUILDERS", "parse_workload", "with_spec_params"]

WORKLOAD_BUILDERS: Dict[str, Callable[[Dict[str, str]], RequestSequence]] = {
    "zipf": lambda p: zipf(
        int(p.get("n", 200)), int(p.get("blocks", 50)), skew=float(p.get("skew", 1.0)),
        seed=int(p.get("seed", 0)),
    ),
    "uniform": lambda p: uniform_random(
        int(p.get("n", 200)), int(p.get("blocks", 50)), seed=int(p.get("seed", 0))
    ),
    "loop": lambda p: looping_scan(int(p.get("blocks", 20)), int(p.get("loops", 5))),
    "scan": lambda p: sequential_scan(int(p.get("blocks", 100))),
    "filescan": lambda p: file_scan_trace(
        int(p.get("files", 4)), int(p.get("blocks", 25)), rescans=int(p.get("rescans", 1))
    ),
    "join": lambda p: database_join_trace(
        int(p.get("outer", 8)), int(p.get("inner", 12)),
    ),
    "stream": lambda p: multimedia_stream_trace(
        int(p.get("streams", 3)), int(p.get("blocks", 40))
    ),
    "trace": lambda p: load_trace(p["path"]),
}


def parse_workload(spec: str) -> RequestSequence:
    """Parse a workload spec string into a request sequence."""
    name, _, params_text = spec.partition(":")
    params: Dict[str, str] = {}
    if params_text:
        for item in params_text.split(","):
            if not item:
                continue
            key, _, value = item.partition("=")
            params[key.strip()] = value.strip()
    builder = WORKLOAD_BUILDERS.get(name.strip().lower())
    if builder is None:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: {', '.join(sorted(WORKLOAD_BUILDERS))}"
        )
    return builder(params)


def with_spec_params(spec: str, **overrides) -> str:
    """Return ``spec`` with the given ``key=value`` parameters set/overridden.

    Used by the runner to expand one workload spec over a seed grid:
    ``with_spec_params("zipf:n=100", seed=3) == "zipf:n=100,seed=3"``.
    """
    name, _, params_text = spec.partition(":")
    params: Dict[str, str] = {}
    if params_text:
        for item in params_text.split(","):
            if not item:
                continue
            key, _, value = item.partition("=")
            params[key.strip()] = value.strip()
    for key, value in overrides.items():
        params[key] = str(value)
    if not params:
        return name
    joined = ",".join(f"{k}={v}" for k, v in params.items())
    return f"{name}:{joined}"
