"""Typed workload-spec registry: strict parsing of portable instance descriptions.

Workload specs are small strings like ``zipf:n=200,blocks=50,skew=0.8`` or
``trace:path=/tmp/trace.txt``.  They originated in the CLI, but the batched
experiment runner (:mod:`repro.analysis.runner`) uses them as its *portable
instance description*: a spec string pickles trivially, regenerates the same
sequence deterministically in any worker process (all generators take
explicit seeds), and doubles as a human-readable label and cache key.

Every workload is declared as a :class:`WorkloadDef` carrying a typed
parameter schema (:class:`ParamSpec`), which makes parsing strict by
construction: unknown keys, duplicate keys, malformed items and uncoercible
values all raise :class:`~repro.errors.ConfigurationError` naming the spec
and the workload's valid parameters.  A misspelled parameter can therefore
never silently fall back to a default and corrupt a sweep.

Grammar
-------
``name[:key=value,key=value,...]`` — the workload name selects a
:data:`WORKLOAD_REGISTRY` entry; parameters are ``key=value`` pairs
separated by ``,``.  A value may contain ``=`` (paths like ``a=b.txt``
round-trip exactly; the split is on the *first* ``=``), but never ``,`` —
the separator is not escapable, and both :func:`parse_workload` and
:func:`with_spec_params` reject embedded commas with a clear error instead
of truncating the value.

Two kinds of workload exist:

* ``sequence`` — the builder produces a
  :class:`~repro.disksim.sequence.RequestSequence`; cache size, fetch time
  and the disk layout come from the caller (the CLI flags or the experiment
  grid axes).
* ``instance`` — adversarial constructions (``thm2``, ``cao``) whose warm
  initial cache is part of the construction; the builder produces a full
  :class:`~repro.disksim.instance.ProblemInstance`.  ``k``/``F`` may be
  pinned in the spec; otherwise the caller's values flow in, so grids can
  sweep them.

Multi-disk layouts are spec-addressable too: :data:`LAYOUT_BUILDERS` maps
``striped | hashed | roundrobin | partitioned`` to the
:mod:`repro.workloads.multidisk` builders, and
:func:`build_workload_instance` combines workload x layout x disk count
into a ready :class:`ProblemInstance`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..disksim.instance import ProblemInstance
from ..disksim.sequence import RequestSequence
from ..errors import ConfigurationError
from ..specs import ParamSpec, coerce_bool, coerce_params
from ..specs import split_spec as _split_spec_generic
from ..specs import with_params as _with_params_generic
from .adversarial import cao_f_ge_k_sequence, theorem2_sequence
from .multidisk import (
    contiguous_partitioned_instance,
    first_seen_round_robin_instance,
    hashed_instance,
    striped_instance,
)
from .synthetic import (
    looping_scan,
    markov_phases,
    mixed_phases,
    multiclient_streams,
    sequential_scan,
    strided_scan,
    uniform_random,
    working_set_shift,
    zipf,
)
from .traces import (
    database_join_trace,
    file_scan_trace,
    load_trace,
    multimedia_stream_trace,
)

__all__ = [
    "ParamSpec",
    "WorkloadDef",
    "WORKLOAD_REGISTRY",
    "LAYOUT_BUILDERS",
    "split_spec",
    "parse_workload",
    "build_workload_instance",
    "with_spec_params",
    "workload_accepts",
    "format_workload_catalog",
]


# ---------------------------------------------------------------------------------
# parameter schema
# ---------------------------------------------------------------------------------

#: Backwards-compatible aliases: the schema machinery now lives in
#: :mod:`repro.specs`, shared with the algorithm registry.
_coerce_bool = coerce_bool


@dataclass(frozen=True)
class WorkloadDef:
    """A registered workload: name, typed parameter schema and builder.

    ``kind == "sequence"`` builders take the coerced parameters as keyword
    arguments and return a :class:`RequestSequence`.  ``kind == "instance"``
    builders additionally receive ``k`` and ``F`` (declared in ``params``
    with construction-appropriate defaults) and return a full
    :class:`ProblemInstance` including its warm initial cache.
    """

    name: str
    summary: str
    builder: Callable
    params: Tuple[ParamSpec, ...] = ()
    kind: str = "sequence"
    example: str = ""

    def __post_init__(self):
        names = [p.name for p in self.params]
        if len(names) != len(set(names)):
            raise ConfigurationError(f"workload {self.name!r} declares duplicate parameters")

    @property
    def param_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def coerce_params(self, raw: Mapping[str, str], spec: str) -> Dict[str, object]:
        """Coerce raw string parameters against the schema, strictly.

        Unknown keys, missing required keys and uncoercible values raise
        :class:`ConfigurationError` naming ``spec`` and the valid parameters.
        """
        return coerce_params(self.name, self.params, raw, spec, role="workload")


# ---------------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------------

WORKLOAD_REGISTRY: Dict[str, WorkloadDef] = {}


def register_workload(definition: WorkloadDef) -> WorkloadDef:
    """Add ``definition`` to :data:`WORKLOAD_REGISTRY` (rejecting duplicates)."""
    if definition.name in WORKLOAD_REGISTRY:
        raise ConfigurationError(f"workload {definition.name!r} is already registered")
    WORKLOAD_REGISTRY[definition.name] = definition
    return definition


def _def(name, summary, builder, params, kind="sequence", example=""):
    register_workload(
        WorkloadDef(
            name=name, summary=summary, builder=builder,
            params=tuple(params), kind=kind, example=example or name,
        )
    )


_def(
    "zipf",
    "Zipf-skewed references over a block population",
    lambda n, blocks, skew, seed: zipf(n, blocks, skew=skew, seed=seed),
    [
        ParamSpec("n", int, 200, "number of requests"),
        ParamSpec("blocks", int, 50, "distinct blocks"),
        ParamSpec("skew", float, 1.0, "Zipf exponent (0 = uniform)"),
        ParamSpec("seed", int, 0, "RNG seed"),
    ],
    example="zipf:n=500,blocks=100,skew=0.8",
)

_def(
    "uniform",
    "Independent uniform references",
    lambda n, blocks, seed: uniform_random(n, blocks, seed=seed),
    [
        ParamSpec("n", int, 200, "number of requests"),
        ParamSpec("blocks", int, 50, "distinct blocks"),
        ParamSpec("seed", int, 0, "RNG seed"),
    ],
    example="uniform:n=300,blocks=40,seed=2",
)

_def(
    "scan",
    "One sequential pass over the blocks",
    lambda blocks, repeats: sequential_scan(blocks, repeats_per_block=repeats),
    [
        ParamSpec("blocks", int, 100, "distinct blocks"),
        ParamSpec("repeats", int, 1, "consecutive repeats per block"),
    ],
    example="scan:blocks=60",
)

_def(
    "strided",
    "Strided scan visiting every stride-th block modulo the population",
    lambda blocks, stride, n: strided_scan(blocks, stride, n),
    [
        ParamSpec("blocks", int, 100, "distinct blocks"),
        ParamSpec("stride", int, 7, "stride between consecutive requests"),
        ParamSpec("n", int, 100, "number of requests"),
    ],
    example="strided:blocks=64,stride=9,n=200",
)

_def(
    "loop",
    "Repeated scans of the same block set (the classic prefetching win)",
    lambda blocks, loops: looping_scan(blocks, loops),
    [
        ParamSpec("blocks", int, 20, "blocks per loop"),
        ParamSpec("loops", int, 5, "number of loop iterations"),
    ],
    example="loop:blocks=30,loops=10",
)

_def(
    "wss",
    "Working-set shift: uniform references in a sliding per-phase window",
    lambda phases, blocks, n, overlap, seed: working_set_shift(
        phases, blocks, n, overlap=overlap, seed=seed
    ),
    [
        ParamSpec("phases", int, 4, "number of phases"),
        ParamSpec("blocks", int, 25, "window size (blocks per phase)"),
        ParamSpec("n", int, 100, "requests per phase"),
        ParamSpec("overlap", int, 5, "blocks shared by consecutive windows"),
        ParamSpec("seed", int, 0, "RNG seed"),
    ],
    example="wss:phases=6,blocks=20,n=80,overlap=4",
)

_def(
    "mixed",
    "Scan + loop + Zipf phases, concatenated or randomly interleaved",
    lambda scan_blocks, loop_blocks, loops, zipf_n, zipf_blocks, skew, interleave, seed: (
        mixed_phases(
            [
                sequential_scan(scan_blocks, prefix="mx_s"),
                looping_scan(loop_blocks, loops, prefix="mx_l"),
                zipf(zipf_n, zipf_blocks, skew=skew, seed=seed, prefix="mx_z"),
            ],
            interleave=interleave,
            seed=seed,
        )
    ),
    [
        ParamSpec("scan_blocks", int, 40, "blocks in the scan phase"),
        ParamSpec("loop_blocks", int, 15, "blocks per loop iteration"),
        ParamSpec("loops", int, 3, "loop iterations"),
        ParamSpec("zipf_n", int, 80, "requests in the Zipf phase"),
        ParamSpec("zipf_blocks", int, 30, "distinct blocks in the Zipf phase"),
        ParamSpec("skew", float, 1.0, "Zipf exponent"),
        ParamSpec("interleave", _coerce_bool, False, "merge phases in random order"),
        ParamSpec("seed", int, 0, "RNG seed"),
    ],
    example="mixed:interleave=true,seed=3",
)

_def(
    "markov",
    "Markov-modulated locality: a hot window that jumps at random instants",
    lambda n, blocks, window, locality, switch, seed: markov_phases(
        n, blocks, window=window, locality=locality, switch=switch, seed=seed
    ),
    [
        ParamSpec("n", int, 400, "number of requests"),
        ParamSpec("blocks", int, 100, "distinct blocks"),
        ParamSpec("window", int, 12, "hot-window size"),
        ParamSpec("locality", float, 0.9, "probability a request stays in the window"),
        ParamSpec("switch", float, 0.05, "per-request probability the window jumps"),
        ParamSpec("seed", int, 0, "RNG seed"),
    ],
    example="markov:n=1000,blocks=200,window=16,switch=0.02",
)

_def(
    "multiclient",
    "Interleaved per-client Zipf streams plus a shared hot set (many users)",
    lambda clients, n, blocks, shared, shared_frac, skew, seed: multiclient_streams(
        clients, n, blocks_per_client=blocks, shared_blocks=shared,
        shared_fraction=shared_frac, skew=skew, seed=seed,
    ),
    [
        ParamSpec("clients", int, 8, "number of concurrent clients"),
        ParamSpec("n", int, 400, "total number of requests"),
        ParamSpec("blocks", int, 20, "private blocks per client"),
        ParamSpec("shared", int, 10, "blocks in the shared hot set"),
        ParamSpec("shared_frac", float, 0.3, "probability a request hits the shared set"),
        ParamSpec("skew", float, 0.8, "Zipf exponent within each region"),
        ParamSpec("seed", int, 0, "RNG seed"),
    ],
    example="multiclient:clients=32,n=2000,shared=16,shared_frac=0.4",
)

_def(
    "filescan",
    "Sequential scans over several files with optional hot metadata blocks",
    lambda files, blocks, rescans, hot, seed: file_scan_trace(
        files, blocks, rescans=rescans, hot_block_accesses=hot, seed=seed
    ),
    [
        ParamSpec("files", int, 4, "number of files"),
        ParamSpec("blocks", int, 25, "blocks per file"),
        ParamSpec("rescans", int, 1, "full scans of the file set"),
        ParamSpec("hot", int, 0, "extra references to hot metadata blocks"),
        ParamSpec("seed", int, 0, "RNG seed"),
    ],
    example="filescan:files=6,blocks=20,rescans=2,hot=30",
)

_def(
    "join",
    "Block nested-loop join: rescan the inner relation per outer block",
    lambda outer, inner, passes: database_join_trace(
        outer, inner, inner_passes_per_outer=passes
    ),
    [
        ParamSpec("outer", int, 8, "outer-relation blocks"),
        ParamSpec("inner", int, 12, "inner-relation blocks"),
        ParamSpec("passes", int, 1, "inner passes per outer block"),
    ],
    example="join:outer=10,inner=20",
)

_def(
    "stream",
    "Strictly sequential multimedia streams in round-robin interleaving",
    lambda streams, blocks: multimedia_stream_trace(streams, blocks),
    [
        ParamSpec("streams", int, 3, "number of concurrent streams"),
        ParamSpec("blocks", int, 40, "blocks per stream"),
    ],
    example="stream:streams=4,blocks=30",
)

_def(
    "trace",
    "Request sequence loaded from a one-block-per-line trace file",
    lambda path: load_trace(path),
    [ParamSpec("path", str, help="path to the trace file")],
    example="trace:path=/tmp/trace.txt",
)

_def(
    "thm2",
    "Theorem 2 lower-bound construction (warm instance; needs (F-1) | (k-1))",
    lambda k, F, phases: theorem2_sequence(k, F, phases).instance,
    [
        ParamSpec("k", int, 13, "cache size (defaults to the caller's -k)"),
        ParamSpec("F", int, 4, "fetch time (defaults to the caller's -F)"),
        ParamSpec("phases", int, 4, "number of adversarial phases"),
    ],
    kind="instance",
    example="thm2:phases=6",
)

_def(
    "cao",
    "Cao et al. F >= k stress: cyclic scan over k+1 blocks (warm instance)",
    lambda k, F, cycles: cao_f_ge_k_sequence(k, F, cycles),
    [
        ParamSpec("k", int, 8, "cache size (defaults to the caller's -k)"),
        ParamSpec("F", int, 10, "fetch time (defaults to the caller's -F)"),
        ParamSpec("cycles", int, 4, "number of cycles over the k+1 blocks"),
    ],
    kind="instance",
    example="cao:cycles=6",
)


# ---------------------------------------------------------------------------------
# multi-disk layouts
# ---------------------------------------------------------------------------------

#: Spec-addressable placement strategies for ``disks > 1``; every builder has
#: the uniform signature ``(requests, cache_size, fetch_time, num_disks)``.
LAYOUT_BUILDERS: Dict[str, Callable[..., ProblemInstance]] = {
    "striped": striped_instance,
    "hashed": hashed_instance,
    "roundrobin": first_seen_round_robin_instance,
    "partitioned": contiguous_partitioned_instance,
}


def get_layout_builder(layout: str) -> Callable[..., ProblemInstance]:
    """The layout builder registered under ``layout`` (strict)."""
    builder = LAYOUT_BUILDERS.get(layout.strip().lower())
    if builder is None:
        raise ConfigurationError(
            f"unknown layout {layout!r}; available: {', '.join(sorted(LAYOUT_BUILDERS))}"
        )
    return builder


# ---------------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------------


def split_spec(spec: str) -> Tuple[str, Dict[str, str]]:
    """Split ``name:key=value,...`` into the name and raw string parameters.

    Strict at the grammar level: every item must be ``key=value`` (split on
    the *first* ``=``, so values may contain ``=``), keys must be unique and
    non-empty, and empty items are rejected.  A value can never contain ``,``
    — an item without ``=`` is diagnosed as a likely embedded comma.
    """
    return _split_spec_generic(spec, role="workload")


def get_workload(name: str, spec: Optional[str] = None) -> WorkloadDef:
    """The :class:`WorkloadDef` registered under ``name`` (strict)."""
    definition = WORKLOAD_REGISTRY.get(name.strip().lower())
    if definition is None:
        shown = spec if spec is not None else name
        raise ConfigurationError(
            f"unknown workload {name!r} in spec {shown!r}; available: "
            f"{', '.join(sorted(WORKLOAD_REGISTRY))}"
        )
    return definition


def parse_workload(spec: str) -> RequestSequence:
    """Parse a workload spec string into a request sequence (strictly).

    For ``instance``-kind workloads the construction is built from the
    spec's (or the schema's default) ``k``/``F`` and its request sequence is
    returned; use :func:`build_workload_instance` to keep the warm instance.
    """
    name, raw = split_spec(spec)
    definition = get_workload(name, spec)
    params = definition.coerce_params(raw, spec)
    built = definition.builder(**params)
    if isinstance(built, ProblemInstance):
        return built.sequence
    return built


def build_workload_instance(
    spec: str,
    *,
    cache_size: int,
    fetch_time: int,
    disks: int = 1,
    layout: str = "striped",
) -> ProblemInstance:
    """Build the full problem instance described by ``spec`` x layout x disks.

    ``sequence``-kind workloads are combined with the caller's cache size,
    fetch time and (for ``disks > 1``) the named placement strategy from
    :data:`LAYOUT_BUILDERS`.  ``instance``-kind workloads (``thm2``, ``cao``)
    carry their own warm cache; ``k``/``F`` pinned in the spec win over the
    caller's values, and multi-disk placement is rejected (the constructions
    are single-disk proofs).
    """
    name, raw = split_spec(spec)
    definition = get_workload(name, spec)
    params = definition.coerce_params(raw, spec)
    if definition.kind == "instance":
        if disks > 1:
            raise ConfigurationError(
                f"workload {definition.name!r} in spec {spec!r} is a single-disk "
                f"construction; it cannot be placed on {disks} disks"
            )
        if "k" not in raw:
            params["k"] = cache_size
        if "F" not in raw:
            params["F"] = fetch_time
        return definition.builder(**params)
    sequence = definition.builder(**params)
    if disks > 1:
        return get_layout_builder(layout)(sequence, cache_size, fetch_time, disks)
    return ProblemInstance.single_disk(sequence, cache_size, fetch_time)


def workload_accepts(spec: str, param_name: str) -> bool:
    """Whether the workload named by ``spec`` documents parameter ``param_name``.

    Lets the runner rewrite ``seed`` only into workloads that actually take a
    seed — strict parsing means deterministic generators no longer silently
    swallow an injected ``seed=...`` key.
    """
    name, _ = split_spec(spec)
    return param_name in get_workload(name, spec).param_names


def with_spec_params(spec: str, **overrides) -> str:
    """Return ``spec`` with the given ``key=value`` parameters set/overridden.

    Used by the runner to expand one workload spec over a seed grid:
    ``with_spec_params("zipf:n=100", seed=3) == "zipf:n=100,seed=3"``.
    Purely textual (the workload name is not resolved), but grammar-strict:
    the incoming spec must parse, and override values containing ``,`` are
    rejected — the separator is not escapable, so such a value could never
    round-trip through :func:`parse_workload`.
    """
    return _with_params_generic(spec, role="workload", **overrides)


# ---------------------------------------------------------------------------------
# the catalog
# ---------------------------------------------------------------------------------


def workload_catalog_rows() -> List[Dict[str, str]]:
    """One row per registered workload: name, kind, parameters, example."""
    rows = []
    for name in sorted(WORKLOAD_REGISTRY):
        definition = WORKLOAD_REGISTRY[name]
        rendered = ", ".join(p.describe() for p in definition.params)
        rows.append(
            {
                "name": name,
                "kind": definition.kind,
                "summary": definition.summary,
                "params": rendered or "(none)",
                "example": definition.example,
            }
        )
    return rows


def format_workload_catalog(name: Optional[str] = None) -> str:
    """Human-readable catalog of workloads (and layouts) for ``repro workloads``.

    With ``name`` set, only that workload is shown (with per-parameter help
    lines); otherwise the full catalog plus the layout registry is rendered.
    """
    if name is not None:
        definition = get_workload(name)
        lines = [f"{definition.name} ({definition.kind}) — {definition.summary}"]
        if definition.params:
            lines.append("  parameters:")
            for p in definition.params:
                default = "required" if p.required else f"default {p.default}"
                help_text = f" — {p.help}" if p.help else ""
                lines.append(f"    {p.name} ({p.type_name}, {default}){help_text}")
        else:
            lines.append("  parameters: (none)")
        lines.append(f"  example: {definition.example}")
        return "\n".join(lines)

    lines = [
        f"workload catalog ({len(WORKLOAD_REGISTRY)} workloads, "
        f"{len(LAYOUT_BUILDERS)} layouts)",
        "",
    ]
    for row in workload_catalog_rows():
        lines.append(f"{row['name']} ({row['kind']}) — {row['summary']}")
        lines.append(f"  params:  {row['params']}")
        lines.append(f"  example: {row['example']}")
        lines.append("")
    lines.append(
        "layouts (block placement for --disks > 1): "
        + ", ".join(sorted(LAYOUT_BUILDERS))
    )
    lines.append(
        "spec grammar: name[:key=value,...] — values may contain '=', never ','"
    )
    return "\n".join(lines)
