"""Workload generators: paper examples, adversarial constructions, synthetic
and trace-like request streams, and multi-disk placement helpers."""

from .adversarial import (
    Theorem2Construction,
    cao_f_ge_k_sequence,
    theorem2_parameters,
    theorem2_sequence,
)
from .multidisk import (
    first_seen_round_robin_instance,
    hashed_instance,
    partitioned_instance,
    striped_instance,
)
from .paper_examples import (
    parallel_disk_example,
    parallel_disk_example_schedule,
    single_disk_example,
    single_disk_example_good_schedule,
    single_disk_example_greedy_schedule,
)
from .synthetic import (
    looping_scan,
    mixed_phases,
    sequential_scan,
    strided_scan,
    uniform_random,
    working_set_shift,
    zipf,
)
from .traces import (
    database_join_trace,
    file_scan_trace,
    load_trace,
    multimedia_stream_trace,
    save_trace,
)

__all__ = [
    "Theorem2Construction",
    "cao_f_ge_k_sequence",
    "theorem2_parameters",
    "theorem2_sequence",
    "first_seen_round_robin_instance",
    "hashed_instance",
    "partitioned_instance",
    "striped_instance",
    "parallel_disk_example",
    "parallel_disk_example_schedule",
    "single_disk_example",
    "single_disk_example_good_schedule",
    "single_disk_example_greedy_schedule",
    "looping_scan",
    "mixed_phases",
    "sequential_scan",
    "strided_scan",
    "uniform_random",
    "working_set_shift",
    "zipf",
    "database_join_trace",
    "file_scan_trace",
    "load_trace",
    "multimedia_stream_trace",
    "save_trace",
]
