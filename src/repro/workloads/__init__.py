"""Workload generators: paper examples, adversarial constructions, synthetic
and trace-like request streams, and multi-disk placement helpers."""

from .adversarial import (
    Theorem2Construction,
    cao_f_ge_k_sequence,
    theorem2_parameters,
    theorem2_sequence,
)
from .multidisk import (
    contiguous_partitioned_instance,
    first_seen_round_robin_instance,
    hashed_instance,
    partitioned_instance,
    striped_instance,
)
from .paper_examples import (
    parallel_disk_example,
    parallel_disk_example_schedule,
    single_disk_example,
    single_disk_example_good_schedule,
    single_disk_example_greedy_schedule,
)
from .spec import (
    LAYOUT_BUILDERS,
    WORKLOAD_REGISTRY,
    build_workload_instance,
    format_workload_catalog,
    parse_workload,
    with_spec_params,
    workload_accepts,
)
from .synthetic import (
    looping_scan,
    markov_phases,
    mixed_phases,
    multiclient_streams,
    sequential_scan,
    strided_scan,
    uniform_random,
    working_set_shift,
    zipf,
)
from .traces import (
    database_join_trace,
    file_scan_trace,
    load_trace,
    multimedia_stream_trace,
    save_trace,
)

__all__ = [
    "LAYOUT_BUILDERS",
    "WORKLOAD_REGISTRY",
    "build_workload_instance",
    "format_workload_catalog",
    "parse_workload",
    "with_spec_params",
    "workload_accepts",
    "Theorem2Construction",
    "cao_f_ge_k_sequence",
    "theorem2_parameters",
    "theorem2_sequence",
    "contiguous_partitioned_instance",
    "first_seen_round_robin_instance",
    "hashed_instance",
    "partitioned_instance",
    "striped_instance",
    "parallel_disk_example",
    "parallel_disk_example_schedule",
    "single_disk_example",
    "single_disk_example_good_schedule",
    "single_disk_example_greedy_schedule",
    "looping_scan",
    "markov_phases",
    "mixed_phases",
    "multiclient_streams",
    "sequential_scan",
    "strided_scan",
    "uniform_random",
    "working_set_shift",
    "zipf",
    "database_join_trace",
    "file_scan_trace",
    "load_trace",
    "multimedia_stream_trace",
    "save_trace",
]
