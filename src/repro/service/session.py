"""One tenant session: a stepped simulation plus its journal.

A :class:`Session` owns exactly one
:class:`~repro.disksim.stepped.SteppedSimulation` (the tenant's cache state,
policy state and committed trajectory) and an optional
:class:`~repro.service.recorder.SessionRecorder` journalling its externally
visible transitions.  It is deliberately transport-free — the HTTP layer and
the replay driver both speak to sessions through the same three verbs:
``feed`` (append requests, advance as far as the horizon allows), ``plan``
(project the batch outcome of the fed prefix) and ``finish`` (seal and run
to completion).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..algorithms import make_algorithm
from ..disksim.executor import PrefetchPolicy, SimulationResult
from ..disksim.schedule import TimedFetch
from ..disksim.stepped import SteppedSimulation
from .._typing import BlockId
from .recorder import SessionRecorder

__all__ = ["Session"]


def _fetch_payload(fetch: TimedFetch) -> Dict[str, Any]:
    """JSON shape of one fetch decision."""
    return {
        "start_time": fetch.start_time,
        "disk": fetch.disk,
        "block": fetch.block,
        "victim": fetch.victim,
    }


class Session:
    """A tenant's resumable simulation behind a stable string identity."""

    def __init__(
        self,
        session_id: str,
        algorithm_spec: str,
        sim: SteppedSimulation,
        recorder: Optional[SessionRecorder] = None,
    ) -> None:
        self.session_id = session_id
        self.algorithm_spec = algorithm_spec
        self.sim = sim
        self.recorder = recorder
        #: Status string of the most recent ``advance`` (None before any feed).
        self.last_status: Optional[str] = None

    @classmethod
    def create(
        cls,
        session_id: str,
        algorithm: str,
        *,
        cache_size: int,
        fetch_time: int,
        initial_cache: Iterable[BlockId] = (),
        recorder: Optional[SessionRecorder] = None,
    ) -> "Session":
        """Open a fresh session running ``algorithm`` (a registry spec)."""
        policy: PrefetchPolicy = make_algorithm(algorithm)
        sim = SteppedSimulation.open_stream(
            policy,
            cache_size=cache_size,
            fetch_time=fetch_time,
            initial_cache=initial_cache,
        )
        session = cls(session_id, algorithm, sim, recorder)
        if recorder is not None:
            recorder.append(
                "create",
                session=session_id,
                algorithm=algorithm,
                cache_size=cache_size,
                fetch_time=fetch_time,
                initial_cache=sorted(initial_cache, key=str),
                streaming=sim.streaming,
            )
        return session

    # -- the service surface -----------------------------------------------------

    def feed(self, blocks: Iterable[BlockId]) -> Dict[str, Any]:
        """Append requests and advance as far as the new horizon allows."""
        accepted = self.sim.feed(blocks)
        self.last_status = self.sim.advance()
        if self.recorder is not None:
            self.recorder.append(
                "feed",
                session=self.session_id,
                accepted=accepted,
                status=self.last_status,
                horizon=self.sim.horizon,
                cursor=self.sim.cursor,
                time=self.sim.time,
            )
        summary = self.describe()
        summary["accepted"] = accepted
        return summary

    def plan(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """Upcoming decisions and outcome if the stream ended right now.

        The projection runs on an independent clone (the live session is
        untouched) and, by the stepped kernel's prefix-of-batch invariant,
        equals a batch run over exactly the requests fed so far.  Decisions
        already committed by the live session are reported separately from
        the upcoming (projected, still revisable) ones.
        """
        payload = self.describe()
        if self.sim.horizon == 0:
            payload.update({"committed": [], "upcoming": [], "projected": None})
            return payload
        committed = list(self.sim.fetches_so_far())
        projected: SimulationResult = self.sim.project()
        upcoming: List[TimedFetch] = list(projected.schedule.fetches[len(committed):])
        if limit is not None:
            upcoming = upcoming[: max(limit, 0)]
        payload.update(
            {
                "committed": [_fetch_payload(f) for f in committed],
                "upcoming": [_fetch_payload(f) for f in upcoming],
                "projected": {
                    "stall_time": projected.metrics.stall_time,
                    "elapsed_time": projected.metrics.elapsed_time,
                    "num_fetches": projected.metrics.num_fetches,
                    "metrics": projected.metrics.as_dict(),
                },
            }
        )
        if self.recorder is not None:
            self.recorder.append(
                "plan",
                session=self.session_id,
                horizon=self.sim.horizon,
                cursor=self.sim.cursor,
                upcoming=len(payload["upcoming"]),
            )
        return payload

    def finish(self) -> SimulationResult:
        """Seal the stream and run the session to completion."""
        result = self.sim.run_to_completion()
        self.last_status = SteppedSimulation.COMPLETE
        if self.recorder is not None:
            self.recorder.append(
                "finish",
                session=self.session_id,
                horizon=self.sim.horizon,
                stall_time=result.metrics.stall_time,
                elapsed_time=result.metrics.elapsed_time,
            )
        return result

    def describe(self) -> Dict[str, Any]:
        """JSON-shaped status summary of the session."""
        return {
            "session": self.session_id,
            "algorithm": self.algorithm_spec,
            "status": self.last_status,
            "streaming": self.sim.streaming,
            "closed": self.sim.closed,
            "finished": self.sim.finished,
            "horizon": self.sim.horizon,
            "cursor": self.sim.cursor,
            "time": self.sim.time,
            "metrics_so_far": self.sim.metrics_so_far().as_dict(),
        }

    # -- persistence -------------------------------------------------------------

    def snapshot_payload(self) -> Dict[str, Any]:
        """Envelope persisted as ``<id>.snapshot.json`` by the daemon."""
        return {
            "session": self.session_id,
            "algorithm": self.algorithm_spec,
            "last_status": self.last_status,
            "snapshot": self.sim.snapshot(),
        }

    @classmethod
    def from_snapshot_payload(
        cls,
        payload: Mapping[str, Any],
        recorder: Optional[SessionRecorder] = None,
    ) -> "Session":
        """Revive a session exactly where :meth:`snapshot_payload` left it."""
        sim = SteppedSimulation.restore(payload["snapshot"])
        session = cls(str(payload["session"]), str(payload["algorithm"]), sim, recorder)
        status = payload.get("last_status")
        session.last_status = None if status is None else str(status)
        if recorder is not None:
            recorder.append(
                "restore",
                session=session.session_id,
                horizon=sim.horizon,
                cursor=sim.cursor,
                time=sim.time,
            )
        return session
