"""Append-only JSONL journal of one service session.

Every externally visible session transition — creation, each batch of fed
requests, plan queries, snapshot/restore — is appended as one JSON object
per line, stamped with a monotonically increasing sequence number.  The
journal is *operational* state, not result state: it carries no wall-clock
timestamps (the simulation's own integer clock rides along in the payloads),
so two replays of the same traffic produce byte-identical journals.

A recorder re-opened over an existing file continues the sequence where the
previous process stopped, so a daemon restart keeps one unbroken journal per
session.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO

__all__ = ["SessionRecorder"]


class SessionRecorder:
    """Append-only JSONL event journal for a single session."""

    def __init__(self, path: Path) -> None:
        self._path = Path(path)
        self._file: Optional[TextIO] = None
        self._seq = self._existing_entries(self._path)

    @staticmethod
    def _existing_entries(path: Path) -> int:
        """How many journal lines an earlier process already wrote."""
        if not path.exists():
            return 0
        with path.open("r", encoding="utf-8") as handle:
            return sum(1 for line in handle if line.strip())

    @property
    def path(self) -> Path:
        """Location of the journal file."""
        return self._path

    @property
    def next_seq(self) -> int:
        """Sequence number the next appended entry will carry."""
        return self._seq

    def append(self, event: str, **fields: Any) -> int:
        """Append one journal entry; returns its sequence number.

        The line is flushed immediately so a crashed daemon loses at most
        the entry being written, never an acknowledged one.
        """
        if self._file is None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self._path.open("a", encoding="utf-8")
        entry: Dict[str, Any] = {"seq": self._seq, "event": event}
        entry.update(fields)
        self._file.write(json.dumps(entry, sort_keys=True) + "\n")
        self._file.flush()
        self._seq += 1
        return entry["seq"]

    def close(self) -> None:
        """Close the underlying file (appending later reopens it)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    @staticmethod
    def read(path: Path) -> List[Dict[str, Any]]:
        """Parse a journal file back into its entry dicts (test/debug aid)."""
        entries: List[Dict[str, Any]] = []
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                if line.strip():
                    entries.append(json.loads(line))
        return entries

    def __enter__(self) -> "SessionRecorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
