"""Chunk-lease coordinator of the distributed sweep fabric.

The remote execution backend (:mod:`repro.analysis.remote`) fans a grid's
tasks out to pull-based worker processes.  This module is the server half:
a :class:`SweepCoordinator` ledger that hands out *leases* on task chunks
and collects their results, plus a stdlib ``ThreadingHTTPServer`` front end
(the same pattern as :mod:`repro.service.server` — JSON in, JSON out, all
state serialised behind the ledger's own lock so handler threads stay
naive).

Lease lifecycle
---------------
A chunk is ``pending`` until a worker leases it, ``leased`` while a worker
holds a live lease on it, and ``done`` once a result arrives::

    pending --lease()--> leased --complete()--> done
        ^                   |
        '---- deadline ------'      (expiry: the chunk is re-issued and the
              expires               attempt counter makes a fresh lease id)

Each lease carries an id (``<chunk>.<attempt>``), a deadline extended by
worker heartbeats, and the run token of the submission that created it.
Expired leases are detected lazily — every ``lease()`` call sweeps for
overdue deadlines first — so a killed worker's chunk is re-issued as soon
as any live worker asks for work.  No progress is ever lost to a worker
death; at least one live worker must keep polling for the sweep to finish.

Idempotency invariant
---------------------
Completions are accepted at most once per chunk: a duplicate delivery
(retried POST, a worker that beat its own expired lease) is acknowledged
but discarded (``accepted: false``), and a completion carrying a stale run
token — a worker that outlived a coordinator restart — is discarded the
same way.  Discarding is always safe because task results are
deterministic functions of their inputs and the run store keys records by
point cache key, so re-executing a discarded chunk reproduces the same
bytes.

The payloads the coordinator ferries are opaque bytes (the backend pickles
``(fn, items)`` chunks; workers pickle result lists back).  This is a
trusted-cluster protocol: run coordinators and workers only on hosts you
control.
"""

from __future__ import annotations

import base64
import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, CoordinatorShutdown

__all__ = [
    "SweepCoordinator",
    "CoordinatorHTTPServer",
    "make_coordinator_server",
]

#: Distinguishes submissions across coordinator (re)starts without any RNG:
#: pid separates processes, the counter separates submissions in one process.
_RUN_COUNTER = itertools.count(1)


def _next_run_token() -> str:
    """A token unique per submission (pid + in-process counter, no RNG)."""
    return f"{os.getpid()}.{next(_RUN_COUNTER)}"


@dataclass
class _Chunk:
    """One leased unit of work: an opaque payload plus its lease state."""

    index: int
    payload: bytes
    task_count: int
    status: str = "pending"  # pending | leased | done
    lease_id: Optional[str] = None
    worker: Optional[str] = None
    deadline: float = 0.0
    attempts: int = 0
    result: Optional[bytes] = None


@dataclass
class _WorkerStats:
    """Per-worker accounting surfaced by ``/status`` (and ``--watch``)."""

    active_chunk: Optional[int] = None
    completed_chunks: int = 0
    completed_tasks: int = 0
    leases: int = 0

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe view of the stats."""
        return {
            "active_chunk": self.active_chunk,
            "completed_chunks": self.completed_chunks,
            "completed_tasks": self.completed_tasks,
            "leases": self.leases,
        }


class SweepCoordinator:
    """The lease ledger: chunks out, results in, everything under one lock.

    ``clock`` is injectable (default ``time.monotonic`` — deadlines are
    durations, never wall-clock timestamps) so lease-expiry behaviour is
    testable without sleeping.
    """

    def __init__(
        self,
        *,
        lease_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_timeout <= 0:
            raise ConfigurationError(
                f"lease timeout must be positive, got {lease_timeout!r}"
            )
        self.lease_timeout = float(lease_timeout)
        self._clock = clock
        self._cond = threading.Condition()
        self._chunks: List[_Chunk] = []
        self._submitted = False
        self._run_token: Optional[str] = None
        self._shutdown = False
        self._reissued = 0
        self._duplicates = 0
        self._workers: Dict[str, _WorkerStats] = {}

    # -- submission and consumption (backend side) --------------------------------

    def submit(self, payloads: Sequence[Tuple[bytes, int]]) -> str:
        """Load a batch of ``(payload, task_count)`` chunks; returns the run token.

        Replaces any previous batch (the backend submits once per ``map``
        call); completions carrying an older run token are discarded.
        """
        with self._cond:
            token = _next_run_token()
            self._chunks = [
                _Chunk(index=i, payload=payload, task_count=count)
                for i, (payload, count) in enumerate(payloads)
            ]
            self._run_token = token
            self._submitted = True
            self._cond.notify_all()
            return token

    def results(self) -> Iterator[bytes]:
        """Yield each chunk's result payload in submission order (blocking).

        Raises :class:`~repro.errors.CoordinatorShutdown` if a shutdown is
        requested while results are still outstanding; everything yielded
        before that has been delivered to the consumer (and, in the runner,
        persisted).
        """
        total = len(self._chunks)
        for index in range(total):
            with self._cond:
                while True:
                    if self._shutdown:
                        raise CoordinatorShutdown(
                            f"coordinator shut down with chunk {index}/{total} "
                            "still outstanding"
                        )
                    chunk = self._chunks[index]
                    if chunk.result is not None:
                        break
                    # Timed wait so an externally set shutdown flag (signal
                    # handlers cannot notify a Condition they don't hold) is
                    # observed promptly even without a notification.
                    self._cond.wait(timeout=0.5)
            yield chunk.result

    def request_shutdown(self) -> None:
        """Ask the ledger to stop: ``results()`` raises, workers are told to exit."""
        with self._cond:
            self._shutdown = True
            self._cond.notify_all()

    @property
    def complete(self) -> bool:
        """Whether a batch was submitted and every chunk is done."""
        with self._cond:
            return self._submitted and all(c.status == "done" for c in self._chunks)

    # -- worker protocol (HTTP handler side) --------------------------------------

    def _note_worker(self, worker: str) -> _WorkerStats:
        """The stats row of ``worker`` (created on first contact)."""
        stats = self._workers.get(worker)
        if stats is None:
            stats = self._workers[worker] = _WorkerStats()
        return stats

    def _expire_overdue_leases(self) -> None:
        """Re-queue every leased chunk whose deadline has passed (lock held)."""
        now = self._clock()
        for chunk in self._chunks:
            if chunk.status == "leased" and chunk.deadline < now:
                holder = self._workers.get(chunk.worker or "")
                if holder is not None and holder.active_chunk == chunk.index:
                    holder.active_chunk = None
                chunk.status = "pending"
                chunk.worker = None
                self._reissued += 1

    def lease(self, worker: str) -> Dict[str, object]:
        """Grant ``worker`` a chunk lease, or report ``idle``/``done``/``shutdown``.

        Every call first sweeps for expired leases, so a dead worker's chunk
        is re-issued to the next live worker that asks.
        """
        with self._cond:
            stats = self._note_worker(worker)
            if self._shutdown:
                return {"state": "shutdown"}
            if not self._submitted:
                return {"state": "idle"}
            self._expire_overdue_leases()
            for chunk in self._chunks:
                if chunk.status == "pending":
                    chunk.attempts += 1
                    chunk.status = "leased"
                    chunk.worker = worker
                    chunk.lease_id = f"{chunk.index}.{chunk.attempts}"
                    chunk.deadline = self._clock() + self.lease_timeout
                    stats.active_chunk = chunk.index
                    stats.leases += 1
                    return {
                        "state": "lease",
                        "chunk": chunk.index,
                        "lease": chunk.lease_id,
                        "run": self._run_token,
                        "timeout": self.lease_timeout,
                        "payload": base64.b64encode(chunk.payload).decode("ascii"),
                        "tasks": chunk.task_count,
                    }
            if all(c.status == "done" for c in self._chunks):
                return {"state": "done"}
            return {"state": "idle"}

    def heartbeat(self, worker: str, chunk_index: int, lease_id: str, run: str) -> Dict[str, object]:
        """Extend a live lease's deadline; reports whether the lease still holds."""
        with self._cond:
            self._note_worker(worker)
            valid = (
                run == self._run_token
                and 0 <= chunk_index < len(self._chunks)
                and self._chunks[chunk_index].status == "leased"
                and self._chunks[chunk_index].lease_id == lease_id
            )
            if valid:
                self._chunks[chunk_index].deadline = self._clock() + self.lease_timeout
            return {"state": "ok", "valid": valid}

    def complete_chunk(
        self, worker: str, chunk_index: int, lease_id: str, run: str, payload: bytes
    ) -> Dict[str, object]:
        """Accept one chunk result (idempotent; see the module invariant).

        The first completion of a not-yet-done chunk is accepted even when
        its lease has expired and been re-issued (the work is deterministic,
        so whoever finishes first wins); later deliveries and completions
        from a different run token are acknowledged but discarded.
        """
        with self._cond:
            stats = self._note_worker(worker)
            if stats.active_chunk == chunk_index:
                stats.active_chunk = None
            if run != self._run_token or not self._submitted:
                return {"state": "ok", "accepted": False, "reason": "unknown-run"}
            if not 0 <= chunk_index < len(self._chunks):
                return {"state": "ok", "accepted": False, "reason": "unknown-chunk"}
            chunk = self._chunks[chunk_index]
            if chunk.status == "done":
                self._duplicates += 1
                return {"state": "ok", "accepted": False, "reason": "duplicate"}
            stale = lease_id != chunk.lease_id
            chunk.result = payload
            chunk.status = "done"
            chunk.worker = None
            stats.completed_chunks += 1
            stats.completed_tasks += chunk.task_count
            self._cond.notify_all()
            return {
                "state": "ok",
                "accepted": True,
                "stale_lease": stale,
                "run_state": (
                    "done" if all(c.status == "done" for c in self._chunks) else "active"
                ),
            }

    # -- observability ------------------------------------------------------------

    def status(self) -> Dict[str, object]:
        """JSON-safe progress snapshot (the ``/status`` payload)."""
        with self._cond:
            by_status = {"pending": 0, "leased": 0, "done": 0}
            tasks_done = 0
            for chunk in self._chunks:
                by_status[chunk.status] += 1
                if chunk.status == "done":
                    tasks_done += chunk.task_count
            if self._shutdown:
                state = "shutdown"
            elif not self._submitted:
                state = "waiting"
            elif by_status["done"] == len(self._chunks):
                state = "done"
            else:
                state = "running"
            return {
                "state": state,
                "chunks": {"total": len(self._chunks), **by_status},
                "tasks": {
                    "total": sum(c.task_count for c in self._chunks),
                    "done": tasks_done,
                },
                "reissued_leases": self._reissued,
                "duplicate_completions": self._duplicates,
                "workers": {
                    name: stats.as_dict()
                    for name, stats in sorted(self._workers.items())
                },
            }


class CoordinatorHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`SweepCoordinator`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], coordinator: SweepCoordinator) -> None:
        super().__init__(address, _Handler)
        self.coordinator = coordinator
        self.started_unix = time.time()  # repro: allow(determinism-clock) -- /health uptime metadata, not result state


class _Handler(BaseHTTPRequestHandler):
    """Request handler translating the worker protocol onto the ledger."""

    server_version = "repro-coordinator/1"
    protocol_version = "HTTP/1.1"
    server: CoordinatorHTTPServer

    # The default handler logs every request with a wall-clock timestamp to
    # stderr; the coordinator's /status endpoint is the observability surface.
    def log_message(self, format: str, *args: Any) -> None:
        pass

    def _send_json(self, code: int, payload: Dict[str, Any]) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ConfigurationError("request body must be a JSON object")
        return payload

    def _handle(self, method: str) -> None:
        try:
            payload = self._route(method, self.path)
        except ConfigurationError as exc:
            self._send_json(400, {"error": str(exc)})
        else:
            if payload is None:
                self._send_json(404, {"error": f"no route for {method} {self.path}"})
            else:
                self._send_json(200, payload)

    def _route(self, method: str, path: str) -> Optional[Dict[str, Any]]:
        coordinator = self.server.coordinator
        if method == "GET":
            if path == "/health":
                uptime = time.time() - self.server.started_unix  # repro: allow(determinism-clock) -- /health uptime metadata, not result state
                return {
                    "ok": True,
                    "state": coordinator.status()["state"],
                    "uptime_seconds": round(uptime, 3),
                }
            if path == "/status":
                return coordinator.status()
            return None
        if method == "POST":
            body = self._read_body()
            worker = str(body.get("worker", "anonymous"))
            if path == "/lease":
                return coordinator.lease(worker)
            if path == "/heartbeat":
                return coordinator.heartbeat(
                    worker,
                    int(body.get("chunk", -1)),
                    str(body.get("lease", "")),
                    str(body.get("run", "")),
                )
            if path == "/complete":
                try:
                    payload = base64.b64decode(str(body.get("payload", "")))
                except (ValueError, TypeError) as exc:
                    raise ConfigurationError(
                        f"completion payload is not valid base64: {exc}"
                    ) from exc
                return coordinator.complete_chunk(
                    worker,
                    int(body.get("chunk", -1)),
                    str(body.get("lease", "")),
                    str(body.get("run", "")),
                    payload,
                )
            return None
        return None

    def do_GET(self) -> None:
        self._handle("GET")

    def do_POST(self) -> None:
        self._handle("POST")


def make_coordinator_server(
    coordinator: SweepCoordinator, host: str = "127.0.0.1", port: int = 0
) -> CoordinatorHTTPServer:
    """Bind the coordinator's HTTP front end (``port=0`` picks a free port)."""
    return CoordinatorHTTPServer((host, port), coordinator)
