"""Resident multi-tenant prefetch service over the stepped simulation kernel.

This subpackage turns the batch simulator into an online system: a
:class:`~repro.service.daemon.PrefetchService` holds one
:class:`~repro.disksim.stepped.SteppedSimulation` per tenant session, an
append-only JSONL recorder journals every session event, a stdlib
``http.server`` front end exposes the create/feed/plan surface, and a replay
driver streams an existing workload spec through the service and checks the
outcome against the offline batch run.

The layering mirrors the rest of the repository: ``session.py`` and
``daemon.py`` are pure library code with no I/O besides the recorder file,
``server.py`` and ``coordinator.py`` are the only modules that own sockets
(and the only ones allowed a pragma-justified wall-clock read, for /health
uptime), and ``replay.py`` closes the loop back to the workload registry.

``coordinator.py`` belongs to the *distributed sweep* fabric rather than the
prefetch daemon: it is the chunk-lease ledger behind
:class:`repro.analysis.remote.RemoteBackend` and the ``repro coordinator``
command.
"""

from .coordinator import (
    CoordinatorHTTPServer,
    SweepCoordinator,
    make_coordinator_server,
)
from .daemon import PrefetchService
from .recorder import SessionRecorder
from .replay import ReplayReport, replay_workload
from .server import PrefetchHTTPServer, make_server
from .session import Session

__all__ = [
    "PrefetchService",
    "SessionRecorder",
    "ReplayReport",
    "replay_workload",
    "PrefetchHTTPServer",
    "make_server",
    "Session",
    "SweepCoordinator",
    "CoordinatorHTTPServer",
    "make_coordinator_server",
]
