"""Stdlib HTTP front end of the prefetch service.

The transport layer, and nothing else: JSON in, JSON out, with every
decision routed through :class:`~repro.service.daemon.PrefetchService`.
Built on ``http.server.ThreadingHTTPServer`` so the daemon needs no
third-party dependency; concurrency is serialised inside the service's own
lock, so handler threads can be naive.

Routes
------
``POST /session``                     open a session (``algorithm``,
                                      ``cache_size``, ``fetch_time``,
                                      optional ``initial_cache``)
``POST /session/<id>/requests``       feed ``{"requests": [...]}`` and
                                      advance; returns the session summary
``GET  /session/<id>/plan``           committed + upcoming fetch decisions
                                      and the projected batch outcome
                                      (``?limit=N`` caps the upcoming list)
``GET  /session/<id>``                session status summary
``GET  /sessions``                    all session summaries
``GET  /health``                      liveness probe (session count, uptime)

This module is the only place in :mod:`repro.service` allowed to read the
wall clock (the ``/health`` uptime field), pragma-justified below; result
state never touches it.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..errors import ConfigurationError, ReproError
from .daemon import PrefetchService

__all__ = ["PrefetchHTTPServer", "make_server"]


class PrefetchHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`PrefetchService`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: PrefetchService) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.started_unix = time.time()  # repro: allow(determinism-clock) -- /health uptime metadata, not result state


class _Handler(BaseHTTPRequestHandler):
    """Request handler translating the JSON surface onto the service."""

    server_version = "repro-prefetch/1"
    protocol_version = "HTTP/1.1"
    server: PrefetchHTTPServer

    # The default handler logs every request with a wall-clock timestamp to
    # stderr; the service journals sessions deterministically instead.
    def log_message(self, format: str, *args: Any) -> None:
        pass

    # -- plumbing ----------------------------------------------------------------

    def _send_json(self, code: int, payload: Dict[str, Any]) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ConfigurationError("request body must be a JSON object")
        return payload

    def _session_route(self, path: str) -> Tuple[Optional[str], Optional[str]]:
        """Split ``/session/<id>[/<verb>]`` into (session_id, verb)."""
        parts = [part for part in path.split("/") if part]
        if len(parts) >= 2 and parts[0] == "session":
            return parts[1], parts[2] if len(parts) > 2 else None
        return None, None

    def _handle(self, method: str) -> None:
        url = urlparse(self.path)
        try:
            payload = self._route(method, url.path, parse_qs(url.query))
        except ConfigurationError as exc:
            code = 404 if "unknown session" in str(exc) else 400
            self._send_json(code, {"error": str(exc)})
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)})
        else:
            if payload is None:
                self._send_json(404, {"error": f"no route for {method} {url.path}"})
            else:
                code, body = payload
                self._send_json(code, body)

    # -- routing -----------------------------------------------------------------

    def _route(
        self, method: str, path: str, query: Dict[str, Any]
    ) -> Optional[Tuple[int, Dict[str, Any]]]:
        service = self.server.service
        session_id, verb = self._session_route(path)
        if method == "GET":
            if path == "/health":
                uptime = time.time() - self.server.started_unix  # repro: allow(determinism-clock) -- /health uptime metadata, not result state
                return 200, {
                    "ok": True,
                    "sessions": len(service.session_ids),
                    "uptime_seconds": round(uptime, 3),
                }
            if path == "/sessions":
                return 200, {"sessions": service.describe()}
            if session_id is not None and verb == "plan":
                limit_values = query.get("limit")
                limit = int(limit_values[0]) if limit_values else None
                return 200, service.plan(session_id, limit)
            if session_id is not None and verb is None:
                return 200, service.get(session_id).describe()
            return None
        if method == "POST":
            body = self._read_body()
            if path == "/session":
                session = service.create_session(
                    str(body.get("algorithm", "aggressive")),
                    cache_size=int(body.get("cache_size", 16)),
                    fetch_time=int(body.get("fetch_time", 8)),
                    initial_cache=body.get("initial_cache", ()),
                )
                return 201, session.describe()
            if session_id is not None and verb == "requests":
                requests = body.get("requests")
                if not isinstance(requests, list):
                    raise ConfigurationError(
                        'feed body must be {"requests": [<block>, ...]}'
                    )
                return 200, service.feed(session_id, requests)
            return None
        return None

    def do_GET(self) -> None:
        self._handle("GET")

    def do_POST(self) -> None:
        self._handle("POST")


def make_server(
    service: PrefetchService, host: str = "127.0.0.1", port: int = 8642
) -> PrefetchHTTPServer:
    """Bind the service's HTTP front end (``port=0`` picks a free port)."""
    return PrefetchHTTPServer((host, port), service)
