"""The resident multi-tenant service: session registry plus persistence.

:class:`PrefetchService` is the daemon's brain, independent of any
transport: it allocates session identities, routes feed/plan/finish calls to
the right :class:`~repro.service.session.Session` under a lock (the HTTP
front end is threaded), and persists every session as a
``<state-dir>/<id>.snapshot.json`` stepped-kernel snapshot so a restarted
daemon resumes all tenants with zero recompute — served requests are never
re-simulated, in-flight fetches keep their completion times, and policy
state (LRU recency, plan cursors) survives byte-exactly.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from .._typing import BlockId
from ..errors import ConfigurationError
from .recorder import SessionRecorder
from .session import Session

__all__ = ["PrefetchService"]

_SNAPSHOT_SUFFIX = ".snapshot.json"
_JOURNAL_SUFFIX = ".events.jsonl"


class PrefetchService:
    """Registry of tenant sessions with snapshot-based durability."""

    def __init__(self, state_dir: Optional[Path] = None) -> None:
        self.state_dir = None if state_dir is None else Path(state_dir)
        self._sessions: Dict[str, Session] = {}
        self._counter = 0
        self._lock = threading.RLock()

    # -- session registry --------------------------------------------------------

    def _recorder_for(self, session_id: str) -> Optional[SessionRecorder]:
        if self.state_dir is None:
            return None
        return SessionRecorder(self.state_dir / f"{session_id}{_JOURNAL_SUFFIX}")

    def create_session(
        self,
        algorithm: str,
        *,
        cache_size: int,
        fetch_time: int,
        initial_cache: Iterable[BlockId] = (),
    ) -> Session:
        """Open a new session and return it (its id is ``s1``, ``s2``, ...)."""
        with self._lock:
            self._counter += 1
            session_id = f"s{self._counter}"
            session = Session.create(
                session_id,
                algorithm,
                cache_size=cache_size,
                fetch_time=fetch_time,
                initial_cache=initial_cache,
                recorder=self._recorder_for(session_id),
            )
            self._sessions[session_id] = session
            return session

    def get(self, session_id: str) -> Session:
        """The session registered under ``session_id`` (strict)."""
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise ConfigurationError(f"unknown session {session_id!r}")
        return session

    @property
    def session_ids(self) -> List[str]:
        """The registered session ids, in creation order."""
        with self._lock:
            return sorted(self._sessions, key=lambda sid: (len(sid), sid))

    def describe(self) -> List[Dict[str, Any]]:
        """Status summaries of every session, in creation order."""
        return [self.get(sid).describe() for sid in self.session_ids]

    # -- routed verbs ------------------------------------------------------------

    def feed(self, session_id: str, blocks: Iterable[BlockId]) -> Dict[str, Any]:
        """Append requests to one session and advance it."""
        session = self.get(session_id)
        with self._lock:
            return session.feed(blocks)

    def plan(self, session_id: str, limit: Optional[int] = None) -> Dict[str, Any]:
        """The session's upcoming decisions and projected outcome."""
        session = self.get(session_id)
        with self._lock:
            return session.plan(limit)

    # -- persistence -------------------------------------------------------------

    def _require_state_dir(self) -> Path:
        if self.state_dir is None:
            raise ConfigurationError("this service has no state directory configured")
        return self.state_dir

    def save_all(self) -> List[Path]:
        """Write every session's snapshot; returns the files written.

        Snapshots are written whole-file (JSON, sorted keys) so a snapshot
        on disk is always internally consistent; the journal files are
        already flushed per entry.
        """
        state_dir = self._require_state_dir()
        state_dir.mkdir(parents=True, exist_ok=True)
        written: List[Path] = []
        with self._lock:
            for session_id in self.session_ids:
                session = self._sessions[session_id]
                path = state_dir / f"{session_id}{_SNAPSHOT_SUFFIX}"
                path.write_text(
                    json.dumps(session.snapshot_payload(), sort_keys=True) + "\n",
                    encoding="utf-8",
                )
                if session.recorder is not None:
                    session.recorder.append(
                        "snapshot",
                        session=session_id,
                        horizon=session.sim.horizon,
                        cursor=session.sim.cursor,
                    )
                written.append(path)
        return written

    def load_all(self) -> List[str]:
        """Revive every persisted session from the state directory.

        Returns the ids restored.  The id counter resumes above the highest
        numeric id seen, so sessions created after a restart never collide
        with revived ones.
        """
        state_dir = self._require_state_dir()
        restored: List[str] = []
        if not state_dir.exists():
            return restored
        with self._lock:
            for path in sorted(state_dir.glob(f"*{_SNAPSHOT_SUFFIX}")):
                payload = json.loads(path.read_text(encoding="utf-8"))
                session_id = str(payload["session"])
                session = Session.from_snapshot_payload(
                    payload, recorder=self._recorder_for(session_id)
                )
                self._sessions[session_id] = session
                restored.append(session_id)
                if session_id.startswith("s") and session_id[1:].isdigit():
                    self._counter = max(self._counter, int(session_id[1:]))
        return restored

    def close(self) -> None:
        """Close every session journal (snapshots are not written here)."""
        with self._lock:
            for session in self._sessions.values():
                if session.recorder is not None:
                    session.recorder.close()
