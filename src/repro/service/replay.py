"""Replay driver: stream a registered workload through the service.

The closing of the loop back to the batch world: build an instance from a
workload spec (``multiclient:clients=32,n=2000,...`` is the intended diet —
interleaved per-client streams are exactly the traffic a resident daemon
sees), feed its requests chunk by chunk through an in-process
:class:`~repro.service.daemon.PrefetchService` session, then finish the
session and compare schedule, metrics and event log against an offline
batch run of the same instance.  A mismatch would falsify the stepped
kernel's prefix-of-batch invariant, so ``repro serve --replay`` doubles as
an end-to-end self-check.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..algorithms import make_algorithm
from ..disksim.executor import simulate
from ..workloads.spec import build_workload_instance
from .daemon import PrefetchService

__all__ = ["ReplayReport", "replay_workload"]


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of one replay run (service result vs offline batch)."""

    workload: str
    algorithm: str
    num_requests: int
    chunk: int
    chunks_fed: int
    streaming: bool
    statuses: Dict[str, int] = field(default_factory=dict)
    match: bool = False
    stall_time: int = 0
    elapsed_time: int = 0
    offline_stall_time: int = 0
    offline_elapsed_time: int = 0

    def describe(self) -> str:
        """One-line summary for CLI reporting."""
        mode = "streaming" if self.streaming else "deferred"
        verdict = "matches offline batch run" if self.match else "MISMATCH vs offline batch run"
        return (
            f"replayed {self.num_requests} requests of {self.workload!r} through "
            f"{self.algorithm!r} ({mode}, {self.chunks_fed} chunk(s) of {self.chunk}): "
            f"stall={self.stall_time} elapsed={self.elapsed_time} — {verdict}"
        )


def replay_workload(
    workload: str,
    *,
    algorithm: str = "aggressive",
    cache_size: int = 16,
    fetch_time: int = 8,
    chunk: int = 64,
    state_dir: Optional[Path] = None,
) -> ReplayReport:
    """Stream ``workload`` through a fresh service session and verify it.

    The instance is built once from the spec; its request sequence is fed in
    ``chunk``-sized batches (the service advances after each), the session is
    finished, and the result is compared field by field against
    :func:`~repro.disksim.executor.simulate` over the identical instance.
    """
    if chunk < 1:
        raise ValueError(f"chunk must be positive, got {chunk}")
    instance = build_workload_instance(
        workload, cache_size=cache_size, fetch_time=fetch_time, disks=1, layout="striped"
    )
    requests: Tuple = tuple(instance.sequence.requests)

    service = PrefetchService(state_dir=state_dir)
    session = service.create_session(
        algorithm,
        cache_size=cache_size,
        fetch_time=fetch_time,
        initial_cache=instance.initial_cache,
    )
    statuses: Counter = Counter()
    chunks_fed = 0
    for start in range(0, len(requests), chunk):
        summary = session.feed(requests[start : start + chunk])
        statuses[str(summary["status"])] += 1
        chunks_fed += 1
    result = session.finish()
    offline = simulate(instance, make_algorithm(algorithm))
    match = (
        result.schedule == offline.schedule
        and result.metrics == offline.metrics
        and list(result.events) == list(offline.events)
    )
    report = ReplayReport(
        workload=workload,
        algorithm=algorithm,
        num_requests=len(requests),
        chunk=chunk,
        chunks_fed=chunks_fed,
        streaming=session.sim.streaming,
        statuses=dict(sorted(statuses.items())),
        match=match,
        stall_time=result.metrics.stall_time,
        elapsed_time=result.metrics.elapsed_time,
        offline_stall_time=offline.metrics.stall_time,
        offline_elapsed_time=offline.metrics.elapsed_time,
    )
    service.close()
    return report
