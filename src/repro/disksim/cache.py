"""Cache state shared by the simulator and the schedule executor.

The cache holds at most ``capacity`` blocks.  Following the Cao et al. model,
initiating a fetch immediately evicts the victim (it becomes unavailable from
that moment) and *reserves* a slot for the incoming block, which only becomes
available — *resident* — when the fetch completes ``F`` time units later.
:class:`CacheState` therefore tracks two disjoint sets:

* ``resident``  — blocks that can serve requests right now;
* ``incoming``  — blocks whose fetch is in flight (slot reserved, not usable).

The invariant ``|resident| + |incoming| <= capacity`` holds at all times.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Set

from .._typing import BlockId
from ..errors import CacheError, ConfigurationError

__all__ = ["CacheState"]


class CacheState:
    """Mutable cache state with explicit fetch-reservation semantics."""

    __slots__ = ("_capacity", "_resident", "_incoming")

    def __init__(self, capacity: int, initial: Iterable[BlockId] = ()) -> None:
        if capacity < 1:
            raise ConfigurationError(f"cache capacity must be >= 1, got {capacity}")
        initial_set: Set[BlockId] = set(initial)
        if len(initial_set) > capacity:
            raise ConfigurationError(
                f"initial cache holds {len(initial_set)} blocks, capacity is {capacity}"
            )
        self._capacity = capacity
        self._resident: Set[BlockId] = initial_set
        self._incoming: Set[BlockId] = set()

    # -- queries ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum number of blocks (resident plus in flight)."""
        return self._capacity

    @property
    def resident(self) -> FrozenSet[BlockId]:
        """Blocks currently available to serve requests."""
        return frozenset(self._resident)

    @property
    def incoming(self) -> FrozenSet[BlockId]:
        """Blocks whose fetch is in flight (slot reserved, not yet usable)."""
        return frozenset(self._incoming)

    @property
    def used_slots(self) -> int:
        """Occupied slots (resident plus reserved)."""
        return len(self._resident) + len(self._incoming)

    @property
    def free_slots(self) -> int:
        """Slots that can accept a fetch without evicting anything."""
        return self._capacity - self.used_slots

    def contains(self, block: BlockId) -> bool:
        """Whether ``block`` is resident (usable right now)."""
        return block in self._resident

    def is_incoming(self, block: BlockId) -> bool:
        """Whether a fetch for ``block`` is currently in flight."""
        return block in self._incoming

    def __contains__(self, block: BlockId) -> bool:
        return block in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    # -- transitions ----------------------------------------------------------------

    def start_fetch(self, block: BlockId, victim: Optional[BlockId]) -> None:
        """Reserve a slot for ``block``, evicting ``victim`` (or using a free slot).

        Raises
        ------
        CacheError
            If ``block`` is already resident or in flight, if ``victim`` is not
            resident, or if ``victim is None`` but the cache has no free slot.
        """
        if block in self._resident:
            raise CacheError(f"cannot fetch block {block!r}: already resident")
        if block in self._incoming:
            raise CacheError(f"cannot fetch block {block!r}: fetch already in flight")
        if victim is None:
            if self.free_slots <= 0:
                raise CacheError(
                    "cannot start fetch without victim: cache is full "
                    f"({self.used_slots}/{self._capacity} slots used)"
                )
        else:
            if victim not in self._resident:
                raise CacheError(f"victim {victim!r} is not resident")
            if victim == block:
                raise CacheError(f"victim and fetched block are identical ({block!r})")
            self._resident.discard(victim)
        self._incoming.add(block)

    def complete_fetch(self, block: BlockId) -> None:
        """Mark an in-flight fetch for ``block`` as completed (block becomes resident)."""
        if block not in self._incoming:
            raise CacheError(f"no in-flight fetch for block {block!r}")
        self._incoming.discard(block)
        self._resident.add(block)

    def evict(self, block: BlockId) -> None:
        """Remove a resident block without starting a fetch (frees a slot).

        Used by the Lemma 3 synchronized-schedule transformation, which evicts
        padding blocks at the end of a fetch interval.
        """
        if block not in self._resident:
            raise CacheError(f"cannot evict {block!r}: not resident")
        self._resident.discard(block)

    def insert(self, block: BlockId) -> None:
        """Insert a block directly (no fetch); used for warm-start setup only."""
        if block in self._resident or block in self._incoming:
            raise CacheError(f"block {block!r} already present")
        if self.free_slots <= 0:
            raise CacheError("cache full; cannot insert")
        self._resident.add(block)

    def copy(self) -> "CacheState":
        """An independent copy of the current state."""
        clone = CacheState(self._capacity, self._resident)
        clone._incoming = set(self._incoming)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"CacheState(capacity={self._capacity}, resident={sorted(map(str, self._resident))}, "
            f"incoming={sorted(map(str, self._incoming))})"
        )
