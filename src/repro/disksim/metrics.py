"""Performance metrics of a prefetching/caching run.

The two headline quantities of the paper are *stall time* and *elapsed time*
(= number of requests + stall time).  :class:`SimMetrics` additionally records
counters that the experiments and the analysis harness use: fetch counts,
demand-fetch counts (fetches issued only because the processor was already
waiting for the block), cache hit/miss counts and the peak number of cache
slots in use, which is how the Section 3 experiments verify the
``<= 2(D - 1)`` extra-memory guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from .._typing import DiskId

__all__ = ["SimMetrics"]


@dataclass(frozen=True)
class SimMetrics:
    """Aggregate metrics of a single simulated run."""

    num_requests: int
    stall_time: int
    num_fetches: int
    num_demand_fetches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    peak_cache_used: int = 0
    fetches_per_disk: Mapping[DiskId, int] = field(default_factory=dict)
    #: Wall-clock seconds spent *computing* this run's schedule.  Plain
    #: policy simulations leave it at 0.0; the LP/optimum drivers record the
    #: model-build + solve + extraction time here so solver cost is a
    #: first-class metric next to the stall/elapsed results it certifies.
    solve_seconds: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "fetches_per_disk", dict(self.fetches_per_disk))

    @property
    def elapsed_time(self) -> int:
        """Elapsed time = number of requests + total stall time."""
        return self.num_requests + self.stall_time

    @property
    def hit_rate(self) -> float:
        """Fraction of requests whose block was resident when first needed."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def average_stall_per_request(self) -> float:
        """Mean stall time charged per request."""
        return self.stall_time / self.num_requests if self.num_requests else 0.0

    def extra_cache_used(self, base_capacity: int) -> int:
        """Peak cache occupancy beyond ``base_capacity`` (0 if within it)."""
        return max(0, self.peak_cache_used - base_capacity)

    def stall_ratio_to(self, other: "SimMetrics") -> float:
        """Ratio of this run's stall time to ``other``'s (inf if other is 0)."""
        if other.stall_time == 0:
            return float("inf") if self.stall_time > 0 else 1.0
        return self.stall_time / other.stall_time

    def elapsed_ratio_to(self, other: "SimMetrics") -> float:
        """Ratio of this run's elapsed time to ``other``'s."""
        if other.elapsed_time == 0:
            return float("inf") if self.elapsed_time > 0 else 1.0
        return self.elapsed_time / other.elapsed_time

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view used by the reporting helpers."""
        return {
            "num_requests": self.num_requests,
            "stall_time": self.stall_time,
            "elapsed_time": self.elapsed_time,
            "num_fetches": self.num_fetches,
            "num_demand_fetches": self.num_demand_fetches,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": round(self.hit_rate, 4),
            "peak_cache_used": self.peak_cache_used,
            "fetches_per_disk": dict(self.fetches_per_disk),
            "solve_seconds": self.solve_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SimMetrics":
        """Rebuild metrics from :meth:`as_dict` output (JSON round-trip safe).

        Derived fields (``elapsed_time``, ``hit_rate``) are recomputed, and
        ``fetches_per_disk`` keys survive JSON's string-keyed objects.
        """
        return cls(
            num_requests=int(payload["num_requests"]),
            stall_time=int(payload["stall_time"]),
            num_fetches=int(payload["num_fetches"]),
            num_demand_fetches=int(payload.get("num_demand_fetches", 0)),
            cache_hits=int(payload.get("cache_hits", 0)),
            cache_misses=int(payload.get("cache_misses", 0)),
            peak_cache_used=int(payload.get("peak_cache_used", 0)),
            fetches_per_disk={
                int(disk): int(count)
                for disk, count in dict(payload.get("fetches_per_disk", {})).items()
            },
            solve_seconds=float(payload.get("solve_seconds", 0.0)),
        )
