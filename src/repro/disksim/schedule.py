"""Schedule representations.

Two complementary views of a prefetching/caching schedule are used throughout
the library:

* :class:`TimedFetch` / :class:`Schedule` — fetches anchored to the global
  integer clock.  This is what the simulator produces while driving an
  algorithm, and what the executor validates.

* :class:`IntervalFetch` / :class:`IntervalSchedule` — fetches anchored to
  request positions, matching the fetch-interval formulation of the paper's
  Section 3 linear program: an interval ``(i, j)`` (paper notation, 1-based)
  represents a fetch that starts after request ``r_i`` has been served and
  completes before ``r_j`` is served, incurring ``F - (j - i - 1)`` units of
  stall at its end.  Internally the library stores the 0-based equivalent:
  ``start_pos = i`` requests have been served when the fetch starts.

``IntervalSchedule.to_schedule`` converts position-anchored fetches to clock
times by replaying the request sequence, so that the single executor can
validate either representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from .._typing import BlockId, DiskId
from ..errors import InvalidScheduleError

__all__ = ["TimedFetch", "Schedule", "IntervalFetch", "IntervalSchedule"]


@dataclass(frozen=True, order=True)
class TimedFetch:
    """A single fetch operation anchored to the global clock.

    Attributes
    ----------
    start_time:
        Integer time at which the fetch begins.  The victim becomes
        unavailable at this time.
    disk:
        Disk performing the fetch.
    block:
        Block being loaded into cache; usable for requests starting at
        ``start_time + F``.
    victim:
        Block evicted to make room, or ``None`` when a free cache slot is
        used (relevant for the extra-memory schedules of Section 3).
    """

    start_time: int
    disk: DiskId
    block: BlockId = field(compare=False)
    victim: Optional[BlockId] = field(compare=False, default=None)

    def finish_time(self, fetch_time: int) -> int:
        """Completion time of the fetch given the fetch duration ``F``."""
        return self.start_time + fetch_time


@dataclass(frozen=True)
class Schedule:
    """A complete prefetching/caching schedule anchored to the clock.

    The schedule records *decisions* only; stall and elapsed time are derived
    by :func:`repro.disksim.executor.execute_schedule`, which re-simulates the
    request sequence under these decisions and checks feasibility.
    """

    fetch_time: int
    num_disks: int
    fetches: Tuple[TimedFetch, ...]
    initial_cache: FrozenSet[BlockId] = frozenset()

    def __post_init__(self) -> None:
        object.__setattr__(self, "fetches", tuple(sorted(self.fetches)))
        self._check_disk_overlap()

    def _check_disk_overlap(self) -> None:
        by_disk: Dict[DiskId, List[TimedFetch]] = {}
        for op in self.fetches:
            if not 0 <= op.disk < self.num_disks:
                raise InvalidScheduleError(
                    f"fetch {op} uses disk {op.disk}, schedule has {self.num_disks} disks"
                )
            by_disk.setdefault(op.disk, []).append(op)
        for disk, ops in by_disk.items():
            for prev, cur in zip(ops, ops[1:]):
                if cur.start_time < prev.start_time + self.fetch_time:
                    raise InvalidScheduleError(
                        f"disk {disk}: fetch at t={cur.start_time} overlaps fetch at "
                        f"t={prev.start_time} (F={self.fetch_time})"
                    )

    # -- queries ------------------------------------------------------------------

    @property
    def num_fetches(self) -> int:
        """Total number of fetch operations."""
        return len(self.fetches)

    def fetches_on(self, disk: DiskId) -> Tuple[TimedFetch, ...]:
        """Fetch operations performed by ``disk``, ordered by start time."""
        return tuple(op for op in self.fetches if op.disk == disk)

    def fetches_starting_at(self, time: int) -> Tuple[TimedFetch, ...]:
        """Fetch operations initiated exactly at ``time``."""
        return tuple(op for op in self.fetches if op.start_time == time)

    def blocks_fetched(self) -> FrozenSet[BlockId]:
        """Distinct blocks fetched at least once."""
        return frozenset(op.block for op in self.fetches)

    def extra_cache_used(self, base_capacity: int) -> int:
        """Peak number of cache slots used beyond ``base_capacity``.

        Computed from the fetch/eviction structure alone: each fetch with a
        ``None`` victim grows the occupancy by one; explicit victims keep it
        constant.  The executor reports the exact peak occupancy; this method
        is a quick structural upper bound used in tests.
        """
        occupancy = len(self.initial_cache)
        peak = occupancy
        for op in self.fetches:
            if op.victim is None:
                occupancy += 1
                peak = max(peak, occupancy)
        return max(0, peak - base_capacity)

    def is_synchronized(self) -> bool:
        """Whether fetches never *properly intersect* (Section 3 definition).

        Two fetches properly intersect when their time intervals overlap but
        do not coincide.  A schedule is synchronized when every pair of
        overlapping fetches starts (and hence ends) at exactly the same time.
        Note the full Section 3 definition additionally requires all ``D``
        disks to fetch in every interval; that stronger check is performed by
        :func:`repro.core.synchronized.is_fully_synchronized`.
        """
        ops = self.fetches
        for a_idx in range(len(ops)):
            a = ops[a_idx]
            for b_idx in range(a_idx + 1, len(ops)):
                b = ops[b_idx]
                if b.start_time >= a.start_time + self.fetch_time:
                    break
                if b.start_time != a.start_time:
                    return False
        return True


@dataclass(frozen=True)
class IntervalFetch:
    """A fetch anchored to request positions (LP fetch-interval semantics).

    Attributes
    ----------
    start_pos:
        Number of requests already served when the fetch starts (0-based; the
        paper's interval start index ``i``).
    end_pos:
        The paper's interval end index ``j``: the fetch must complete before
        the ``j``-th request (1-based) is served, i.e. before 0-based request
        ``j - 1``.  ``end_pos - start_pos - 1`` requests overlap the fetch, so
        ``F - (end_pos - start_pos - 1)`` stall units are charged at its end.
    disk, block, victim:
        As in :class:`TimedFetch`.
    """

    start_pos: int
    end_pos: int
    disk: DiskId
    block: BlockId
    victim: Optional[BlockId] = None

    def __post_init__(self) -> None:
        if self.end_pos <= self.start_pos:
            raise InvalidScheduleError(
                f"interval fetch has end_pos {self.end_pos} <= start_pos {self.start_pos}"
            )

    @property
    def length(self) -> int:
        """Number of requests served during the fetch (the paper's ``|I|``)."""
        return self.end_pos - self.start_pos - 1

    def charged_stall(self, fetch_time: int) -> int:
        """Stall charged at the end of the interval: ``max(0, F - |I|)``."""
        return max(0, fetch_time - self.length)


@dataclass(frozen=True)
class IntervalSchedule:
    """A schedule expressed as position-anchored fetch intervals."""

    fetch_time: int
    num_disks: int
    num_requests: int
    fetches: Tuple[IntervalFetch, ...]
    initial_cache: FrozenSet[BlockId] = frozenset()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.fetches, key=lambda f: (f.start_pos, f.end_pos, f.disk)))
        object.__setattr__(self, "fetches", ordered)
        for op in ordered:
            if not 0 <= op.disk < self.num_disks:
                raise InvalidScheduleError(
                    f"interval fetch {op} uses disk {op.disk}, schedule has {self.num_disks} disks"
                )
            if op.start_pos < 0 or op.end_pos > self.num_requests:
                raise InvalidScheduleError(
                    f"interval fetch {op} outside request range [0, {self.num_requests}]"
                )

    @property
    def num_fetches(self) -> int:
        """Total number of fetch operations."""
        return len(self.fetches)

    def fetches_starting_at(self, position: int) -> Tuple[IntervalFetch, ...]:
        """Interval fetches whose start position equals ``position``."""
        return tuple(op for op in self.fetches if op.start_pos == position)

    def charged_stall(self) -> int:
        """Total stall charged by the LP objective over all *distinct* intervals.

        In a synchronized schedule the ``D`` fetches sharing an interval incur
        the interval's stall once, not ``D`` times, so the charge is summed per
        distinct ``(start_pos, end_pos)`` pair.
        """
        intervals = {(op.start_pos, op.end_pos) for op in self.fetches}
        return sum(max(0, self.fetch_time - (j - i - 1)) for i, j in intervals)

    def start_positions(self) -> Tuple[int, ...]:
        """Sorted distinct start positions of all intervals."""
        return tuple(sorted({op.start_pos for op in self.fetches}))
