"""Event log produced by the simulator and schedule executor.

The event log is a flat, time-ordered record of everything that happened
during a run: requests served, stall periods, fetch starts/completions and
evictions.  It exists for three reasons: the text Gantt renderer in
:mod:`repro.viz` consumes it, tests use it to assert fine-grained behaviour
(e.g. *"the fetch for b5 started exactly when r3 was served"*), and it makes
simulator bugs visible without a debugger.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from .._typing import BlockId, DiskId

__all__ = ["EventKind", "Event", "EventLog"]


class EventKind(str, enum.Enum):
    """Kinds of events recorded during a simulation."""

    SERVE = "serve"
    STALL = "stall"
    FETCH_START = "fetch_start"
    FETCH_COMPLETE = "fetch_complete"
    EVICT = "evict"


@dataclass(frozen=True)
class Event:
    """A single timestamped event.

    Attributes
    ----------
    time:
        Clock time at which the event occurs (for ``STALL`` events, the time
        the stall period starts).
    kind:
        One of :class:`EventKind`.
    block:
        The block involved (served, fetched, evicted); ``None`` for pure
        stall events.
    disk:
        The disk involved for fetch events; ``None`` otherwise.
    request_index:
        The 0-based request position being served or waited for, when
        applicable.
    duration:
        Length of the event in time units (1 for serves, the stall length for
        stalls, 0 for instantaneous events).
    """

    time: int
    kind: EventKind
    block: Optional[BlockId] = None
    disk: Optional[DiskId] = None
    request_index: Optional[int] = None
    duration: int = 0


class EventLog:
    """Append-only, time-ordered collection of :class:`Event` objects."""

    __slots__ = ("_events",)

    def __init__(self, events: Tuple[Event, ...] | List[Event] = ()) -> None:
        self._events: List[Event] = list(events)

    def record(self, event: Event) -> None:
        """Append an event (events must be appended in non-decreasing time order)."""
        self._events.append(event)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def of_kind(self, kind: EventKind) -> Tuple[Event, ...]:
        """All events of the given kind, in time order."""
        return tuple(e for e in self._events if e.kind == kind)

    def total_stall(self) -> int:
        """Sum of stall durations recorded in the log."""
        return sum(e.duration for e in self._events if e.kind == EventKind.STALL)

    def fetch_starts(self) -> Tuple[Event, ...]:
        """All fetch-start events."""
        return self.of_kind(EventKind.FETCH_START)

    def serves(self) -> Tuple[Event, ...]:
        """All serve events."""
        return self.of_kind(EventKind.SERVE)

    def last_time(self) -> int:
        """Time of the final event plus its duration (0 for an empty log)."""
        if not self._events:
            return 0
        last = self._events[-1]
        return last.time + max(last.duration, 0)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"EventLog({len(self._events)} events)"
