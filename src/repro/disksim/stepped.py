"""Resumable stepped simulation kernel (feed / advance / snapshot / restore).

:class:`SteppedSimulation` re-packages the event loop of
:mod:`repro.disksim.executor` so a simulation can pause with requests still
unserved, accept more requests, continue, and round-trip its entire state
through a JSON-serialisable snapshot.  It is the substrate of the online
prefetch service (:mod:`repro.service`) and, in its closed-from-birth form,
*is* the batch engine: :func:`repro.disksim.executor.simulate` constructs one
over the full sequence and advances it to completion, so there is exactly one
event-loop implementation.

Prefix-of-batch invariant
-------------------------
The committed trajectory of an open stream is always a prefix of what a batch
run over the eventually-complete sequence would do.  Policies see a
:class:`SteppedPolicyView` whose lookahead ends at the *horizon* (the number
of requests fed so far):

* a query answered strictly within the horizon is exact — the batch run
  would get the same answer;
* ``next_use`` of a block with no known future use reports the horizon
  itself as a stand-in.  Every comparison the shipped algorithms make is
  against a position strictly below the horizon, so the comparison outcome
  equals the batch outcome (the true value is ``>= horizon``);
* a query whose outcome could differ once more requests arrive —
  "no missing block found (yet)", "two candidate victims both lack a known
  next use" — raises :class:`~repro.disksim.executor.HorizonExhausted`.  The
  kernel catches it, commits nothing for that decision, and reports
  ``"paused"``; re-consulting after ``feed`` re-derives the batch decision
  from identical state.

Algorithms whose decisions are *not* exact under bounded lookahead
(Conservative's MIN replay, Belady-backed demand fetching) report
``supports_streaming(...) == False``; their sessions run in *deferred* mode:
requests accumulate, and the whole batch executes when the stream closes.

Snapshots
---------
:meth:`SteppedSimulation.snapshot` returns a plain dict that is JSON-safe
whenever block identifiers are (strings or integers): instance parameters,
the fed requests, every engine counter, the event log, and the policy object
pickled (base64) so mid-run policy state — Conservative's plan cursor,
LRU's recency map — survives a daemon restart byte-exactly.
"""

from __future__ import annotations

import base64
import pickle
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from .._typing import INFINITY, BlockId, DiskId
from ..errors import ConfigurationError
from .cache import CacheState
from .disk import DiskLayout
from .events import Event, EventKind, EventLog
from .executor import (
    HorizonExhausted,
    PolicyView,
    PrefetchPolicy,
    SimulationResult,
    _advance_loop,
    _EngineState,
    _PolicyDriver,
)
from .instance import ProblemInstance
from .metrics import SimMetrics
from .schedule import TimedFetch
from .stream import StreamSequence

__all__ = ["SteppedPolicyView", "SteppedSimulation", "SNAPSHOT_VERSION"]

#: Version stamp of the snapshot envelope produced by ``snapshot()``.
SNAPSHOT_VERSION = 1


class SteppedPolicyView(PolicyView):
    """Bounded-lookahead policy view over an open request stream.

    Identical to :class:`~repro.disksim.executor.PolicyView` except that,
    while the stream is open, the three future-looking queries enforce the
    prefix-of-batch invariant documented in the module docstring.  Once the
    stream closes (``stream_open=False``) every guard is a no-op and the
    view behaves exactly like the scan-engine view.
    """

    __slots__ = ("stream_open",)

    def __init__(
        self,
        instance: ProblemInstance,
        time: int,
        cursor: int,
        cache: CacheState,
        busy_disks: FrozenSet[DiskId],
        *,
        stream_open: bool,
    ) -> None:
        super().__init__(instance, time, cursor, cache, busy_disks, None, None)
        self.stream_open = stream_open

    @property
    def horizon(self) -> int:
        """Number of requests fed so far; policy knowledge ends here."""
        return len(self.instance.sequence)

    def next_missing_position(
        self,
        on_disk: Optional[DiskId] = None,
        *,
        exclude: FrozenSet[BlockId] = frozenset(),
    ) -> Optional[int]:
        """Exact within the horizon; raises while open when nothing is found.

        A position found in the fed prefix is what the batch run would find.
        "No missing request" is only final once the stream is closed — while
        open, the very next request fed could be the answer.
        """
        found = super().next_missing_position(on_disk, exclude=exclude)
        if found is None and self.stream_open:
            raise HorizonExhausted(
                "next missing block lies beyond the fed horizon"
            )
        return found

    def next_use(self, block: BlockId, from_position: Optional[int] = None) -> int:
        """Next use of ``block``, with the horizon as stand-in while open.

        A block without a known future use has true next use ``>= horizon``;
        reporting the horizon keeps every comparison against a known position
        (which is ``< horizon``) identical to the batch comparison.
        """
        value = super().next_use(block, from_position)
        if value == INFINITY and self.stream_open:
            return self.horizon
        return value

    def furthest_resident(
        self,
        from_position: Optional[int] = None,
        candidates: Optional[FrozenSet[BlockId]] = None,
        *,
        exclude: FrozenSet[BlockId] = frozenset(),
    ) -> Optional[BlockId]:
        """Furthest-next-use victim, pausing when the choice is not yet final.

        A single candidate without a known next use beats every known one
        (its true next use is ``>= horizon``), matching the batch choice.
        Two or more such candidates are indistinguishable until more
        requests arrive, so the query raises and the kernel pauses.
        """
        if not self.stream_open:
            return super().furthest_resident(from_position, candidates, exclude=exclude)
        start = self.cursor if from_position is None else from_position
        seq = self.instance.sequence
        pool = self.resident if candidates is None else (self.resident & candidates)
        if exclude:
            pool = pool - exclude
        if not pool:
            return None
        unknown = [b for b in pool if seq.next_use_from(start, b) == INFINITY]
        if len(unknown) > 1:
            raise HorizonExhausted(
                "victim choice depends on requests beyond the fed horizon"
            )
        if len(unknown) == 1:
            return unknown[0]
        return max(pool, key=lambda b: (seq.next_use_from(start, b), str(b)))


class _SteppedEngineState(_EngineState):
    """Engine state whose policy views are horizon-guarded.

    Always runs scan-mode queries: the loop engine's precomputed indices
    describe a *fixed* sequence, whereas a stream grows after construction.
    The scan and loop engines are byte-equivalent (the engine-equivalence
    suite proves it), so streamed runs still match batch loop runs exactly.
    """

    def __init__(self, instance: ProblemInstance, capacity: int) -> None:
        super().__init__(instance, capacity, engine="scan")

    def view(self) -> PolicyView:
        return SteppedPolicyView(
            instance=self.instance,
            time=self.time,
            cursor=self.cursor,
            cache=self.cache,
            busy_disks=frozenset(self.in_flight),
            stream_open=self.stream_open,
        )


class SteppedSimulation:
    """A simulation that can pause, accept more requests, and resume.

    Constructed either over a complete instance (:meth:`from_instance` —
    the batch path used by :func:`~repro.disksim.executor.simulate`) or as an
    open stream (:meth:`open_stream`) that is grown with :meth:`feed`,
    stepped with :meth:`advance`, persisted with :meth:`snapshot` and
    revived with :meth:`restore`.
    """

    #: ``advance`` statuses.
    COMPLETE = "complete"
    PAUSED = "paused"
    DEFERRED = "deferred"
    BUDGET = "budget"

    def __init__(
        self,
        instance: ProblemInstance,
        policy: PrefetchPolicy,
        state: _EngineState,
        *,
        stream: Optional[StreamSequence],
        policy_ready: bool,
    ) -> None:
        self._instance = instance
        self._policy = policy
        self._state = state
        self._stream = stream
        self._policy_ready = policy_ready
        self._driver = _PolicyDriver(policy)
        self._finished = False
        self._streaming = self._is_streaming(policy, instance)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_instance(
        cls,
        instance: ProblemInstance,
        policy: PrefetchPolicy,
        *,
        engine: str = "loop",
    ) -> "SteppedSimulation":
        """Batch form: the whole sequence is known, nothing can be fed."""
        state = _EngineState(instance, instance.cache_size, engine=engine)
        return cls(instance, policy, state, stream=None, policy_ready=False)

    @classmethod
    def open_stream(
        cls,
        policy: PrefetchPolicy,
        *,
        cache_size: int,
        fetch_time: int,
        layout: Optional[DiskLayout] = None,
        initial_cache: Iterable[BlockId] = (),
        requests: Iterable[BlockId] = (),
    ) -> "SteppedSimulation":
        """Open-stream form: requests arrive via :meth:`feed` over time."""
        stream = StreamSequence(tuple(requests))
        instance = ProblemInstance(
            sequence=stream,
            cache_size=cache_size,
            fetch_time=fetch_time,
            layout=layout if layout is not None else DiskLayout.single(),
            initial_cache=frozenset(initial_cache),
        )
        state = _SteppedEngineState(instance, cache_size)
        state.stream_open = True
        sim = cls(instance, policy, state, stream=stream, policy_ready=False)
        if sim._streaming:
            # Streaming policies carry no sequence-derived precomputation, so
            # resetting against the (possibly empty) stream is safe and lets
            # decisions start with the first feed.  Non-streaming policies
            # reset when the stream closes (deferred mode).
            policy.reset(instance)
            sim._policy_ready = True
        return sim

    @staticmethod
    def _is_streaming(policy: PrefetchPolicy, instance: ProblemInstance) -> bool:
        """Whether ``policy`` declares exact decisions under bounded lookahead."""
        probe = getattr(policy, "supports_streaming", None)
        if probe is None:
            return False
        return bool(probe(instance))

    # -- introspection -----------------------------------------------------------

    @property
    def instance(self) -> ProblemInstance:
        """The (possibly still growing) problem instance."""
        return self._instance

    @property
    def policy(self) -> PrefetchPolicy:
        """The policy driving this simulation."""
        return self._policy

    @property
    def horizon(self) -> int:
        """Number of requests fed so far."""
        return self._instance.num_requests

    @property
    def cursor(self) -> int:
        """Index of the next request to serve (requests before it are done)."""
        return self._state.cursor

    @property
    def time(self) -> int:
        """The simulation clock."""
        return self._state.time

    @property
    def closed(self) -> bool:
        """Whether the request stream is sealed (batch form is always closed)."""
        return self._stream is None or self._stream.closed

    @property
    def finished(self) -> bool:
        """Whether the run completed (closed, all requests served, drained)."""
        return self._finished

    @property
    def streaming(self) -> bool:
        """Whether the policy advances while the stream is open."""
        return self._streaming

    # -- lifecycle ---------------------------------------------------------------

    def feed(self, blocks: Iterable[BlockId]) -> int:
        """Append requests to the open stream; returns how many were added."""
        if self._stream is None:
            raise ConfigurationError(
                "this SteppedSimulation wraps a fixed batch instance; it cannot be fed"
            )
        return self._stream.extend(blocks)

    def close(self) -> None:
        """Seal the stream: no more requests will arrive; answers are final."""
        if self._stream is not None and not self._stream.closed:
            self._stream.close()
        self._state.stream_open = False

    def advance(self, max_events: Optional[int] = None) -> str:
        """Serve as many requests as currently possible; returns a status.

        ``"complete"`` — the stream is closed and every request was served
        (the run is finalised and drained); ``"paused"`` — an open stream ran
        out of fed requests, or a decision needs requests beyond the horizon;
        ``"deferred"`` — the policy cannot stream and the stream is still
        open (nothing ran); ``"budget"`` — ``max_events`` decision points
        were executed first.
        """
        if self._finished:
            return self.COMPLETE
        if self._stream is not None and not self._stream.closed and not self._streaming:
            return self.DEFERRED
        if not self._policy_ready:
            self._policy.reset(self._instance)
            self._policy_ready = True
        try:
            done = _advance_loop(self._state, self._driver, max_events)
        except HorizonExhausted:
            return self.PAUSED
        if not done:
            return self.BUDGET
        if not self.closed:
            return self.PAUSED
        self._driver.finish(self._state)
        self._state.drain_in_flight()
        self._finished = True
        return self.COMPLETE

    def run_to_completion(self) -> SimulationResult:
        """Close the stream (if any), run everything, return the final result."""
        self.close()
        status = self.advance()
        if status != self.COMPLETE:  # pragma: no cover - defensive
            raise AssertionError(f"closed simulation did not complete: {status}")
        return self.result()

    # -- results -----------------------------------------------------------------

    def result(self) -> SimulationResult:
        """The run's result (final when ``finished``, else the state so far)."""
        return self._state.result(
            getattr(self._policy, "name", type(self._policy).__name__)
        )

    def metrics_so_far(self) -> SimMetrics:
        """Stall/hit/fetch metrics over the prefix served so far."""
        return self._state.metrics()

    def fetches_so_far(self) -> Tuple[TimedFetch, ...]:
        """The fetch operations committed so far, in issue order."""
        return tuple(self._state.fetch_ops)

    def project(self) -> SimulationResult:
        """The batch result if the stream ended at the current horizon.

        Runs on an independent clone restored from a snapshot, so the live
        simulation is untouched.  By the prefix-of-batch invariant this
        equals ``simulate()`` over the fed prefix exactly — it is how the
        service answers ``GET /session/<id>/plan``.
        """
        clone = SteppedSimulation.restore(self.snapshot())
        clone.close()
        status = clone.advance()
        if status != SteppedSimulation.COMPLETE:  # pragma: no cover - defensive
            raise AssertionError(f"projection did not complete: {status}")
        return clone.result()

    # -- persistence -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Complete, JSON-friendly state of the simulation.

        The dict round-trips through :meth:`restore` with zero recompute of
        served requests.  It is JSON-serialisable whenever the block
        identifiers are (strings or integers); the policy rides along as a
        base64-encoded pickle so mid-run policy state survives restarts.
        """
        state = self._state
        layout = self._instance.layout
        layout_payload: Optional[Dict[str, Any]] = None
        if layout.num_disks > 1 or layout.mapping:
            layout_payload = {
                "num_disks": layout.num_disks,
                "default_disk": layout.default_disk,
                "mapping": sorted(
                    ([block, disk] for block, disk in layout.mapping.items()),
                    key=lambda pair: str(pair[0]),
                ),
            }
        return {
            "version": SNAPSHOT_VERSION,
            "cache_size": self._instance.cache_size,
            "fetch_time": self._instance.fetch_time,
            "layout": layout_payload,
            "initial_cache": sorted(self._instance.initial_cache, key=str),
            "requests": list(self._instance.sequence.requests),
            "closed": self.closed,
            "finished": self._finished,
            "policy": {
                "spec": getattr(self._policy, "spec", None),
                "name": getattr(self._policy, "name", type(self._policy).__name__),
                "ready": self._policy_ready,
                "pickle": base64.b64encode(pickle.dumps(self._policy)).decode("ascii"),
            },
            "engine": {
                "time": state.time,
                "cursor": state.cursor,
                "stall": state.stall,
                "hits": state.hits,
                "misses": state.misses,
                "demand_fetches": state.demand_fetches,
                "peak_used": state.peak_used,
                "fetches_per_disk": {
                    str(disk): count
                    for disk, count in sorted(state.fetches_per_disk.items())
                },
                "first_look": {
                    str(position): flag
                    for position, flag in sorted(state.first_look_resident.items())
                },
                "resident": sorted(state.cache.resident, key=str),
                "in_flight": [
                    [disk, state.in_flight[disk][0], state.in_flight[disk][1]]
                    for disk in sorted(state.in_flight)
                ],
                "fetch_ops": [
                    {
                        "start_time": op.start_time,
                        "disk": op.disk,
                        "block": op.block,
                        "victim": op.victim,
                    }
                    for op in state.fetch_ops
                ],
                "events": [
                    {
                        "time": event.time,
                        "kind": event.kind.value,
                        "block": event.block,
                        "disk": event.disk,
                        "request_index": event.request_index,
                        "duration": event.duration,
                    }
                    for event in state.events
                ],
            },
        }

    @classmethod
    def restore(cls, payload: Mapping[str, Any]) -> "SteppedSimulation":
        """Rebuild a simulation from a :meth:`snapshot` payload.

        The restored simulation continues exactly where the snapshot was
        taken: served requests are never recomputed, in-flight fetches keep
        their completion times, and the policy resumes with its pickled
        internal state.
        """
        version = int(payload.get("version", 0))
        if version != SNAPSHOT_VERSION:
            raise ConfigurationError(
                f"unsupported stepped-simulation snapshot version {version!r}"
            )
        stream = StreamSequence(list(payload["requests"]))
        closed = bool(payload["closed"])
        if closed:
            stream.close()
        layout_payload = payload.get("layout")
        if layout_payload:
            layout = DiskLayout(
                int(layout_payload["num_disks"]),
                {block: int(disk) for block, disk in layout_payload["mapping"]},
                default_disk=int(layout_payload.get("default_disk", 0)),
            )
        else:
            layout = DiskLayout.single()
        cache_size = int(payload["cache_size"])
        instance = ProblemInstance(
            sequence=stream,
            cache_size=cache_size,
            fetch_time=int(payload["fetch_time"]),
            layout=layout,
            initial_cache=frozenset(payload["initial_cache"]),
        )
        policy_payload = payload["policy"]
        policy = pickle.loads(base64.b64decode(policy_payload["pickle"]))
        # Reattach the live instance: the pickle captured a point-in-time copy.
        for holder in (policy, getattr(policy, "_delegate", None)):
            if holder is not None and hasattr(holder, "_instance"):
                holder._instance = instance

        engine: Mapping[str, Any] = payload["engine"]
        state = _SteppedEngineState(instance, cache_size)
        state.stream_open = not closed
        in_flight_entries: List[List[Any]] = [list(entry) for entry in engine["in_flight"]]
        cache = CacheState(cache_size, list(engine["resident"]))
        for _disk, block, _finish in in_flight_entries:
            cache.start_fetch(block, None)
        state.cache = cache
        state.in_flight = {
            int(disk): (block, int(finish)) for disk, block, finish in in_flight_entries
        }
        state.fetch_ops = [
            TimedFetch(
                start_time=int(op["start_time"]),
                disk=int(op["disk"]),
                block=op["block"],
                victim=op["victim"],
            )
            for op in engine["fetch_ops"]
        ]
        events = EventLog()
        for entry in engine["events"]:
            events.record(
                Event(
                    time=int(entry["time"]),
                    kind=EventKind(entry["kind"]),
                    block=entry["block"],
                    disk=None if entry["disk"] is None else int(entry["disk"]),
                    request_index=(
                        None
                        if entry["request_index"] is None
                        else int(entry["request_index"])
                    ),
                    duration=int(entry["duration"]),
                )
            )
        state.events = events
        state.time = int(engine["time"])
        state.cursor = int(engine["cursor"])
        state.stall = int(engine["stall"])
        state.hits = int(engine["hits"])
        state.misses = int(engine["misses"])
        state.demand_fetches = int(engine["demand_fetches"])
        state.peak_used = int(engine["peak_used"])
        state.fetches_per_disk = {
            int(disk): int(count) for disk, count in engine["fetches_per_disk"].items()
        }
        state.first_look_resident = {
            int(position): bool(flag) for position, flag in engine["first_look"].items()
        }
        sim = cls(
            instance,
            policy,
            state,
            stream=stream,
            policy_ready=bool(policy_payload["ready"]),
        )
        sim._finished = bool(payload.get("finished", False))
        return sim
