"""Struct-of-arrays batch engine (``engine="vector"``).

The loop engines (``"loop"``/``"scan"``) dispatch one Python call per event —
serve, fetch, completion — which caps single-threaded throughput at a few
hundred thousand requests per second.  This module re-expresses the exact
same integer-time model as dense numpy arrays: the request sequence, the
per-block next-use table and the cache residency bitmap of *many instances at
once* are stacked into 2-D arrays, and the simulation advances in fused
batched steps (complete due fetches → consult the policy → bulk-serve every
request until the next miss or fetch completion → stall).  One kernel step
costs a handful of vectorized array operations regardless of how many rows
(instances) it advances, so batching amortises the Python interpreter away.

Scope and fallback
------------------
The kernel covers the single-disk native policies whose decision rules are
pure functions of (resident set, next-use table, cursor): ``Aggressive``
(both tie-breaks), ``Delay(d)`` and ``Combination`` (resolved to whichever
component it selects for the instance).  Everything else — parallel-disk
instances, ``Conservative``, ``DemandFetch``, custom policies, block
identifiers whose string forms collide — transparently falls back to the
loop engine, per item, inside :func:`run_batch`.  The produced
:class:`~repro.disksim.metrics.SimMetrics` and
:class:`~repro.disksim.schedule.Schedule` are identical to the loop engine's
(the vector equivalence suite asserts this byte-for-byte); only the
:class:`~repro.disksim.events.EventLog` is left empty, as materialising one
Python event object per serve would defeat the point of the kernel.

numpy is an *optional* dependency for this engine: :func:`numpy_available`
probes for it once, and :func:`require_numpy` raises a
:class:`~repro.errors.ConfigurationError` naming the ``[vector]`` extra when
it is missing, so a sweep configured with ``engine="vector"`` fails at
validation time instead of with an ImportError mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence, Tuple, Union

from .._typing import BlockId
from ..errors import ConfigurationError
from .events import EventLog
from .instance import ProblemInstance
from .metrics import SimMetrics
from .schedule import Schedule, TimedFetch

if TYPE_CHECKING:  # imported lazily at runtime (executor imports this module)
    from .executor import SimulationResult

__all__ = [
    "BatchOutcome",
    "ineligibility_reason",
    "numpy_available",
    "require_numpy",
    "run_batch",
    "simulate_batch",
    "simulate_vector",
]

_np = None
_np_checked = False


def _numpy() -> Any:
    """The numpy module, or ``None`` when it is not installed (probed once)."""
    global _np, _np_checked
    if not _np_checked:
        _np_checked = True
        try:
            import numpy  # noqa: PLC0415 - optional dependency, probed lazily

            _np = numpy
        except ImportError:  # pragma: no cover - exercised via monkeypatch
            _np = None
    return _np


def numpy_available() -> bool:
    """Whether the vector engine can run (numpy importable)."""
    return _numpy() is not None


def require_numpy() -> Any:
    """Return numpy or raise a ConfigurationError naming the missing extra."""
    np = _numpy()
    if np is None:
        raise ConfigurationError(
            'engine="vector" requires numpy, which is not installed; '
            "install the optional extra: pip install albers-buettner-repro[vector] "
            '(or use engine="auto" to fall back to the loop engine silently)'
        )
    return np


@dataclass(frozen=True)
class _Plan:
    """Kernel-executable description of a native single-disk policy."""

    kind: str  # "aggressive" | "delay"
    tiebreak: str = "high"
    d: int = 0


def _resolve_plan(instance: ProblemInstance, policy: Any, _depth: int = 0) -> Optional[_Plan]:
    """Map ``policy`` to a kernel plan, or ``None`` if the kernel cannot run it.

    Only the exact shipped classes qualify (``type() is`` checks): a subclass
    may override ``decide`` arbitrarily, so it falls back to the loop engine.
    ``Combination`` is resolved through its own selection rule to whichever
    component it would run on ``instance``.
    """
    from ..algorithms.aggressive import Aggressive
    from ..algorithms.combination import Combination
    from ..algorithms.delay import Delay

    if type(policy) is Aggressive:
        return _Plan(kind="aggressive", tiebreak=policy.tiebreak)
    if type(policy) is Delay:
        return _Plan(kind="delay", d=policy.d)
    if type(policy) is Combination and _depth < 8:
        return _resolve_plan(instance, policy._select(instance), _depth + 1)
    return None


def _encode_instance(
    instance: ProblemInstance,
) -> Optional[Tuple[List[int], List[int], List[BlockId]]]:
    """Densely encode an instance's blocks as integer ids in ``str`` order.

    Returns ``(seq_ids, warm_ids, blocks)`` where ``blocks[i]`` is the block
    whose id is ``i`` and ids ascend in ``str(block)`` order — the order every
    engine tie-break is phrased in — or ``None`` when two distinct block
    objects share a string form (the tie-breaks would be ambiguous; the
    caller falls back to the loop engine).
    """
    universe = set(instance.sequence.requests) | set(instance.initial_cache)
    blocks = sorted(universe, key=str)
    if len({str(b) for b in blocks}) != len(blocks):
        return None
    index = {b: i for i, b in enumerate(blocks)}
    seq_ids = [index[b] for b in instance.sequence.requests]
    warm_ids = [index[b] for b in instance.initial_cache]
    return seq_ids, warm_ids, blocks


def ineligibility_reason(instance: ProblemInstance, policy: Any) -> Optional[str]:
    """Why the vector kernel cannot run this instance/policy, or ``None``.

    Mirrors the eligibility checks of ``_prepare_job`` in order without
    building the job (and without resetting the policy), so engine-selection
    provenance — the ``engine_reason`` of a fallen-back
    :class:`~repro.disksim.executor.SimulationResult` — costs one plan
    resolution and, at worst, one instance encoding.
    """
    if not numpy_available():
        return "numpy not importable"
    if instance.num_disks != 1:
        return "parallel-disk instance"
    if instance.num_requests == 0:
        return "empty request sequence"
    if _resolve_plan(instance, policy) is None:
        return f"no vector kernel plan for policy {getattr(policy, 'name', type(policy).__name__)!r}"
    if _encode_instance(instance) is None:
        return "ambiguous block identifiers (distinct blocks share a string form)"
    return None


@dataclass
class _Job:
    """One kernel row: an encoded instance plus its resolved plan."""

    instance: ProblemInstance
    plan: _Plan
    policy_name: str
    seq_ids: List[int]
    warm_ids: List[int]
    blocks: List[BlockId]


@dataclass(frozen=True)
class BatchOutcome:
    """Result of one batch item: metrics plus provenance of the engine used.

    ``engine`` is ``"vector"`` when the kernel ran the item and ``"loop"``
    when the item fell back to the loop engine.  ``schedule`` is only
    materialised when the batch was run with ``schedules=True`` — decoding
    one :class:`TimedFetch` per fetch costs per-event Python again, so the
    throughput paths leave it off.
    """

    metrics: SimMetrics
    policy_name: str
    engine: str
    schedule: Optional[Schedule] = None


def _run_kernel(
    np: Any, jobs: Sequence[_Job], want_schedules: bool
) -> List[Tuple[SimMetrics, Optional[Schedule]]]:
    """Advance all ``jobs`` to completion in fused batched array steps.

    Returns a list of ``(SimMetrics, Optional[Schedule])`` in job order.
    The kernel maintains, for every row, the invariant that ``nub[b]`` is the
    next position ``>= cursor`` requesting block ``b`` (clamped to ``n`` when
    none remains); every policy decision of the covered algorithms is a pure
    argmin/argmax over masked views of that table.
    """
    R = len(jobs)
    n_arr = np.array([len(j.seq_ids) for j in jobs], dtype=np.int64)
    k_arr = np.array([j.instance.cache_size for j in jobs], dtype=np.int64)
    f_arr = np.array([j.instance.fetch_time for j in jobs], dtype=np.int64)
    N = int(n_arr.max())
    NB = int(max(len(j.blocks) for j in jobs))
    PAD = NB  # padding pseudo-block: one past every real id
    MULT = np.int64(NB + 2)  # tie-break multiplier: exceeds every rank value
    BIG = np.int64(1) << 60
    DECLINE_CHUNK = np.int64(64)  # max requests served per step on a declined row

    seq2d = np.full((R, N), PAD, dtype=np.int64)
    for r, job in enumerate(jobs):
        seq2d[r, : n_arr[r]] = job.seq_ids

    # nxt2d[r, p] = next position > p with the same block, else n (per row).
    order = np.argsort(seq2d, axis=1, kind="stable")
    vals = np.take_along_axis(seq2d, order, axis=1)
    nxt_sorted = np.full((R, N), -1, dtype=np.int64)
    same = vals[:, :-1] == vals[:, 1:]
    head = nxt_sorted[:, :-1]
    head[same] = order[:, 1:][same]
    nxt2d = np.empty((R, N), dtype=np.int64)
    np.put_along_axis(nxt2d, order, nxt_sorted, axis=1)
    nxt2d = np.where(nxt2d < 0, n_arr[:, None], nxt2d)

    # nub[r, b] = first position >= cursor requesting b (init: first use).
    nub = np.repeat(n_arr[:, None], NB + 1, axis=1)
    rr = np.repeat(np.arange(R), N)
    np.minimum.at(nub, (rr, seq2d.ravel()), np.tile(np.arange(N), R))

    resident = np.zeros((R, NB + 1), dtype=bool)
    for r, job in enumerate(jobs):
        resident[r, job.warm_ids] = True
    rescount = resident.sum(axis=1).astype(np.int64)

    # Per-row plan parameters.
    kind_arr = np.array([0 if j.plan.kind == "aggressive" else 1 for j in jobs])
    d_arr = np.array([j.plan.d for j in jobs], dtype=np.int64)
    base_rank = np.arange(NB + 1, dtype=np.int64)
    tb_low = np.array([j.plan.tiebreak == "low" for j in jobs])
    rank = np.where(tb_low[:, None], np.int64(NB) - base_rank[None, :], base_rank[None, :])

    time = np.zeros(R, dtype=np.int64)
    cursor = np.zeros(R, dtype=np.int64)
    stall = np.zeros(R, dtype=np.int64)
    hits = np.zeros(R, dtype=np.int64)
    misses = np.zeros(R, dtype=np.int64)
    fetches = np.zeros(R, dtype=np.int64)
    demand = np.zeros(R, dtype=np.int64)
    peak = rescount.copy()
    inc = np.full(R, -1, dtype=np.int64)  # in-flight block id (-1: disk idle)
    fin = np.zeros(R, dtype=np.int64)  # completion time of the in-flight fetch
    flooked = np.full(R, -1, dtype=np.int64)  # last position with a recorded first look
    flookv = np.zeros(R, dtype=bool)  # ... and whether the block was resident then
    m_arr = np.zeros(R, dtype=np.int64)
    tgt_arr = np.zeros(R, dtype=np.int64)  # decide-time target, reused by the serve phase

    sched_chunks: List[Tuple] = []
    act = n_arr > 0
    has_agg = bool((kind_arr == 0).any())
    has_del = bool((kind_arr == 1).any())
    max_steps = 8 * N + 64
    steps = 0
    # The hot loop works on full (R, NB+1) matrices with boolean row masks
    # rather than fancy-indexed row subsets: a masked full-matrix pass is one
    # contiguous C sweep, whereas gathering ``nub[rows]`` copies the submatrix
    # on every step.  Scatters (which must not touch finished rows) go through
    # ``np.nonzero`` row lists instead.
    while act.any():
        steps += 1
        if steps > max_steps:  # pragma: no cover - engine-bug backstop
            raise RuntimeError("vector engine failed to make progress (engine bug)")

        # 1) Complete due fetches.
        comp = np.nonzero(act & (inc >= 0) & (fin <= time))[0]
        if comp.size:
            resident[comp, inc[comp]] = True
            rescount[comp] += 1
            inc[comp] = -1

        # 2) Decision point for idle rows: fetch per the row's plan.
        # tgt = position of the next request to a non-resident block (= n
        # when every remaining request is resident).
        tgt = np.minimum(np.where(resident, BIG, nub).min(axis=1), n_arr)
        cand_mask = act & (inc < 0) & (tgt < n_arr)
        frows = None
        decl_rows = None
        decl_m = None
        if cand_mask.any():
            frows_parts, ftgt_parts, fvic_parts = [], [], []
            decl_parts = []
            fs_rows = np.nonzero(cand_mask & (rescount < k_arr))[0]
            if fs_rows.size:
                frows_parts.append(fs_rows)
                ftgt_parts.append(tgt[fs_rows])
                fvic_parts.append(np.full(fs_rows.size, -1, dtype=np.int64))
            full_mask = cand_mask & (rescount >= k_arr)
            if has_agg:
                agg_rows = np.nonzero(full_mask & (kind_arr == 0))[0]
                if agg_rows.size:
                    key = np.where(resident, nub * MULT + rank, -1)
                    vid = key.argmax(axis=1)
                    vic = vid[agg_rows]
                    ok = nub[agg_rows, vic] > tgt[agg_rows]
                    frows_parts.append(agg_rows[ok])
                    ftgt_parts.append(tgt[agg_rows][ok])
                    fvic_parts.append(vic[ok])
                    # Aggressive declines exactly when the max resident
                    # next-use is <= target, so every decline is eligible
                    # for the chunked serve below.
                    decl_parts.append(agg_rows[~ok])
            if has_del:
                del_rows = np.nonzero(full_mask & (kind_arr == 1))[0]
                if del_rows.size:
                    del_tgt = tgt[del_rows]
                    d_eff = np.minimum(d_arr[del_rows], del_tgt - cursor[del_rows])
                    jf = cursor[del_rows] + d_eff
                    # adj[b] = next use of b judged from position jf: blocks
                    # requested inside the window [cursor, jf) get re-keyed
                    # by their last in-window occurrence's successor.
                    adj = nub[del_rows].copy()
                    maxd = int(d_eff.max())
                    if maxd > 0:
                        offs = np.arange(maxd, dtype=np.int64)
                        valid = offs[None, :] < d_eff[:, None]
                        wpos = np.where(valid, cursor[del_rows][:, None] + offs[None, :], 0)
                        wblk = seq2d[del_rows[:, None], wpos]
                        wnxt = nxt2d[del_rows[:, None], wpos]
                        sel = valid & (wnxt >= jf[:, None])
                        ri, ci = np.nonzero(sel)
                        adj[ri, wblk[ri, ci]] = wnxt[ri, ci]
                    key = np.where(resident[del_rows], adj * MULT + base_rank[None, :], -1)
                    vid = key.argmax(axis=1)
                    pick = np.arange(del_rows.size)
                    ok = (adj[pick, vid] > del_tgt) & (nub[del_rows, vid] > del_tgt)
                    frows_parts.append(del_rows[ok])
                    ftgt_parts.append(del_tgt[ok])
                    fvic_parts.append(vid[ok])
                    dd = del_rows[~ok]
                    if dd.size:
                        # Delay's decline can also rest on the *adjusted*
                        # next-use alone; the chunked serve below is only
                        # sound when the plain max resident next-use is
                        # already <= target (which then pins every later
                        # decision in the run to a decline as well).
                        mv = np.where(resident[dd], nub[dd], np.int64(-1)).max(axis=1)
                        decl_parts.append(dd[mv <= tgt[dd]])
            if frows_parts:
                frows = np.concatenate(frows_parts)
                if not frows.size:
                    frows = None
            if frows is not None:
                ftg = np.concatenate(ftgt_parts)
                fvic = np.concatenate(fvic_parts)
                fblk = seq2d[frows, ftg]
                has_vic = fvic >= 0
                vrows = frows[has_vic]
                resident[vrows, fvic[has_vic]] = False
                rescount[vrows] -= 1
                inc[frows] = fblk
                fin[frows] = time[frows] + f_arr[frows]
                fetches[frows] += 1
                demand[frows] += (ftg == cursor[frows]).astype(np.int64)
                peak[frows] = np.maximum(peak[frows], rescount[frows] + 1)
                if want_schedules:
                    sched_chunks.append(
                        (frows.copy(), time[frows].copy(), fblk.copy(), fvic.copy())
                    )
            if decl_parts:
                decl_rows = np.concatenate(decl_parts)
            if decl_rows is not None and decl_rows.size:
                # Chunked decline runs: while every resident next-use stays
                # <= target, the policy provably declines at every decision
                # point, and serving position p only lifts a next-use above
                # the target when nxt2d[p] > target.  So the whole run up to
                # (and including) the first such position can be served in
                # one step -- identical, decision for decision, to the event
                # loop -- instead of one request per step, which is what the
                # decline-heavy small-working-set regimes otherwise decay to.
                dtgt = tgt[decl_rows]
                dcur = cursor[decl_rows]
                dlen = np.minimum(dtgt - dcur, DECLINE_CHUNK)
                offs = np.arange(int(dlen.max()), dtype=np.int64)
                dvalid = offs[None, :] < dlen[:, None]
                dpos = np.where(dvalid, dcur[:, None] + offs[None, :], 0)
                flip = dvalid & (nxt2d[decl_rows[:, None], dpos] > dtgt[:, None])
                hasf = flip.any(axis=1)
                decl_m = np.where(hasf, flip.argmax(axis=1) + 1, dlen)
            else:
                decl_rows = None

        # 3) Record the first look at the cursor (hit/miss is judged here).
        rec = np.nonzero(act & (flooked < cursor))[0]
        if rec.size:
            flooked[rec] = cursor[rec]
            flookv[rec] = resident[rec, seq2d[rec, cursor[rec]]]

        # 4) Bulk-serve: busy rows run to the next miss or the fetch
        #    completion, whichever is nearer; idle rows with no remaining
        #    miss run to the end; idle rows whose plan declined a fetch
        #    serve their provable decline run (see the chunk computation
        #    above), re-evaluating the decision afterwards exactly like the
        #    event loop.  ``stop`` equals the decide-time target except on
        #    rows that just fetched, where the victim eviction can pull the
        #    next miss closer -- recompute only those rows.
        if frows is None:
            stop = tgt
        else:
            stop = tgt.copy()
            sub = np.where(resident[frows], BIG, nub[frows]).min(axis=1)
            stop[frows] = np.minimum(sub, n_arr[frows])
        busy_mask = act & (inc >= 0)
        idle_mask = act & (inc < 0)
        no_target = stop >= n_arr
        m_arr = np.where(busy_mask, np.minimum(stop - cursor, fin - time), 0)
        m_arr = np.where(idle_mask, np.where(no_target, n_arr - cursor, np.int64(1)), m_arr)
        if decl_rows is not None:
            m_arr[decl_rows] = decl_m
        chk = np.nonzero(idle_mask & ~no_target)[0]
        if chk.size and not np.all(
            resident[chk, seq2d[chk, cursor[chk]]]
        ):  # pragma: no cover - backstop
            raise RuntimeError(
                "vector engine invariant violated: idle row declined a fetch "
                "while the current block is absent"
            )
        srv = np.nonzero(m_arr > 0)[0]
        if srv.size:
            lens = m_arr[srv]
            if int(lens.max()) == 1:
                pos = cursor[srv]
                bl = seq2d[srv, pos]
                nub[srv, bl] = np.maximum(nub[srv, bl], nxt2d[srv, pos])
            else:
                total = int(lens.sum())
                rep = np.repeat(srv, lens)
                cums = np.cumsum(lens)
                offs = np.arange(total, dtype=np.int64) - np.repeat(cums - lens, lens)
                pos = np.repeat(cursor[srv], lens) + offs
                np.maximum.at(nub, (rep, seq2d[rep, pos]), nxt2d[rep, pos])
            first_miss = (~flookv[srv]).astype(np.int64)
            hits[srv] += lens - first_miss
            misses[srv] += first_miss
            time[srv] += lens
            cursor[srv] += lens

        # 5) Busy rows that hit a miss before the fetch completes: stall.
        still = np.nonzero(busy_mask & (time < fin) & (cursor < n_arr))[0]
        if still.size:
            rec = still[flooked[still] < cursor[still]]
            if rec.size:
                flooked[rec] = cursor[rec]
                flookv[rec] = False
            stall[still] += fin[still] - time[still]
            time[still] = fin[still]

        act &= cursor < n_arr

    per_row_ops: List[List[TimedFetch]] = [[] for _ in range(R)]
    if want_schedules and sched_chunks:
        srows = np.concatenate([c[0] for c in sched_chunks])
        stimes = np.concatenate([c[1] for c in sched_chunks])
        sblocks = np.concatenate([c[2] for c in sched_chunks])
        svics = np.concatenate([c[3] for c in sched_chunks])
        order = np.argsort(srows, kind="stable")  # per-row append order = time order
        for i in order:
            r = int(srows[i])
            blocks = jobs[r].blocks
            vic = int(svics[i])
            per_row_ops[r].append(
                TimedFetch(
                    start_time=int(stimes[i]),
                    disk=0,
                    block=blocks[int(sblocks[i])],
                    victim=None if vic < 0 else blocks[vic],
                )
            )

    results = []
    for r, job in enumerate(jobs):
        fetched = int(fetches[r])
        metrics = SimMetrics(
            num_requests=int(n_arr[r]),
            stall_time=int(stall[r]),
            num_fetches=fetched,
            num_demand_fetches=int(demand[r]),
            cache_hits=int(hits[r]),
            cache_misses=int(misses[r]),
            peak_cache_used=int(peak[r]),
            fetches_per_disk={0: fetched} if fetched else {},
        )
        schedule = None
        if want_schedules:
            schedule = Schedule(
                fetch_time=job.instance.fetch_time,
                num_disks=1,
                fetches=tuple(per_row_ops[r]),
                initial_cache=job.instance.initial_cache,
            )
        results.append((metrics, schedule))
    return results


def _prepare_job(instance: ProblemInstance, policy: Any) -> Optional[_Job]:
    """Build a kernel job for ``(instance, policy)``, or ``None`` to fall back."""
    if instance.num_disks != 1 or instance.num_requests == 0:
        return None
    plan = _resolve_plan(instance, policy)
    if plan is None:
        return None
    encoded = _encode_instance(instance)
    if encoded is None:
        return None
    seq_ids, warm_ids, blocks = encoded
    # reset() resolves the reported name (Combination renames itself to the
    # component it selected), exactly as the loop engine records it.
    policy.reset(instance)
    name = getattr(policy, "name", type(policy).__name__)
    return _Job(
        instance=instance,
        plan=plan,
        policy_name=name,
        seq_ids=seq_ids,
        warm_ids=warm_ids,
        blocks=blocks,
    )


def run_batch(
    pairs: Sequence[Tuple[ProblemInstance, object]], *, schedules: bool = False
) -> List[BatchOutcome]:
    """Simulate many ``(instance, policy)`` pairs, batching what the kernel covers.

    Kernel-eligible pairs are stacked and advanced together; the rest run
    through the loop engine one by one.  Outcomes are returned in input
    order, each labelled with the engine that actually produced it.
    """
    from .executor import simulate

    outcomes: List[Optional[BatchOutcome]] = [None] * len(pairs)
    jobs: List[_Job] = []
    job_slots: List[int] = []
    np = _numpy()
    for slot, (instance, policy) in enumerate(pairs):
        job = _prepare_job(instance, policy) if np is not None else None
        if job is not None:
            jobs.append(job)
            job_slots.append(slot)
        else:
            result = simulate(instance, policy, engine="loop")
            outcomes[slot] = BatchOutcome(
                metrics=result.metrics,
                policy_name=result.policy_name,
                engine="loop",
                schedule=result.schedule if schedules else None,
            )
    if jobs:
        for slot, job, (metrics, schedule) in zip(
            job_slots, jobs, _run_kernel(np, jobs, schedules)
        ):
            outcomes[slot] = BatchOutcome(
                metrics=metrics,
                policy_name=job.policy_name,
                engine="vector",
                schedule=schedule,
            )
    return outcomes


def simulate_batch(
    instances: Sequence[ProblemInstance],
    algorithm: Union[str, Callable[[], object], object],
    *,
    schedules: bool = False,
) -> List[BatchOutcome]:
    """Run one algorithm over many instances in a single stacked kernel pass.

    ``algorithm`` may be a registry spec string (``"delay:d=3"``), a
    zero-argument factory, or a policy object (reused across rows; safe
    because every row resets it before reading its state).  Returns one
    :class:`BatchOutcome` per instance, in input order.
    """
    pairs = []
    for instance in instances:
        if isinstance(algorithm, str):
            from ..algorithms.registry import make_algorithm

            policy = make_algorithm(algorithm)
        elif hasattr(algorithm, "decide") and not isinstance(algorithm, type):
            policy = algorithm
        elif callable(algorithm):
            policy = algorithm()
        else:
            raise ConfigurationError(
                f"simulate_batch expects a spec string, factory or policy, got {algorithm!r}"
            )
        pairs.append((instance, policy))
    return run_batch(pairs, schedules=schedules)


def simulate_vector(
    instance: ProblemInstance, policy: Any
) -> "Optional[SimulationResult]":
    """Kernel-simulate one instance, or return ``None`` when it is not covered.

    This is the ``engine="vector"`` entry point used by
    :func:`repro.disksim.executor.simulate_with_engine`: a ``None`` return
    tells the dispatcher to fall back to the loop engine without having spent
    a duplicate simulation.  The returned result carries an *empty* event
    log; schedule and metrics are identical to the loop engine's.
    """
    np = _numpy()
    if np is None:
        return None
    job = _prepare_job(instance, policy)
    if job is None:
        return None
    from .executor import SimulationResult

    ((metrics, schedule),) = _run_kernel(np, [job], want_schedules=True)
    return SimulationResult(
        instance=instance,
        schedule=schedule,
        metrics=metrics,
        events=EventLog(),
        policy_name=job.policy_name,
    )
