"""Problem instances: everything that defines one prefetching/caching problem.

A :class:`ProblemInstance` bundles the request sequence, the cache size ``k``,
the fetch time ``F``, the disk layout and the initial cache contents.  Every
algorithm, solver and experiment in the library consumes instances, so the
model parameters are validated once, here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, Iterable, Optional, Sequence

from .._typing import BlockId
from ..errors import ConfigurationError
from .disk import DiskLayout
from .sequence import RequestSequence

__all__ = ["ProblemInstance"]


@dataclass(frozen=True)
class ProblemInstance:
    """One instance of the integrated prefetching and caching problem.

    Attributes
    ----------
    sequence:
        The request sequence (known entirely in advance; the problem is
        offline).
    cache_size:
        Number of cache slots ``k`` available to the algorithm.
    fetch_time:
        Fetch duration ``F`` in time units.
    layout:
        Assignment of blocks to disks; ``DiskLayout.single()`` for the
        single-disk problem.
    initial_cache:
        Blocks resident in cache at time 0.  May contain blocks that are never
        requested (the paper's Section 3 convention uses ``k + D - 1`` dummy
        blocks); must not exceed ``cache_size`` entries.
    """

    sequence: RequestSequence
    cache_size: int
    fetch_time: int
    layout: DiskLayout = field(default_factory=DiskLayout.single)
    initial_cache: FrozenSet[BlockId] = frozenset()

    def __post_init__(self) -> None:
        if not isinstance(self.sequence, RequestSequence):
            object.__setattr__(self, "sequence", RequestSequence(self.sequence))
        object.__setattr__(self, "initial_cache", frozenset(self.initial_cache))
        if self.cache_size < 1:
            raise ConfigurationError(f"cache_size must be >= 1, got {self.cache_size}")
        if self.fetch_time < 1:
            raise ConfigurationError(f"fetch_time must be >= 1, got {self.fetch_time}")
        if len(self.initial_cache) > self.cache_size:
            raise ConfigurationError(
                f"initial cache holds {len(self.initial_cache)} blocks but cache_size "
                f"is {self.cache_size}"
            )

    # -- convenience constructors ---------------------------------------------------

    @classmethod
    def single_disk(
        cls,
        requests: Sequence[BlockId] | RequestSequence,
        cache_size: int,
        fetch_time: int,
        initial_cache: Iterable[BlockId] = (),
    ) -> "ProblemInstance":
        """A single-disk instance (the Section 2 setting)."""
        seq = requests if isinstance(requests, RequestSequence) else RequestSequence(requests)
        return cls(
            sequence=seq,
            cache_size=cache_size,
            fetch_time=fetch_time,
            layout=DiskLayout.single(),
            initial_cache=frozenset(initial_cache),
        )

    @classmethod
    def parallel_disk(
        cls,
        requests: Sequence[BlockId] | RequestSequence,
        cache_size: int,
        fetch_time: int,
        layout: DiskLayout,
        initial_cache: Iterable[BlockId] = (),
    ) -> "ProblemInstance":
        """A parallel-disk instance (the Section 3 setting)."""
        seq = requests if isinstance(requests, RequestSequence) else RequestSequence(requests)
        return cls(
            sequence=seq,
            cache_size=cache_size,
            fetch_time=fetch_time,
            layout=layout,
            initial_cache=frozenset(initial_cache),
        )

    # -- derived quantities ----------------------------------------------------------

    @property
    def num_requests(self) -> int:
        """Length ``n`` of the request sequence."""
        return len(self.sequence)

    @property
    def num_disks(self) -> int:
        """Number of disks ``D``."""
        return self.layout.num_disks

    @property
    def requested_blocks(self) -> FrozenSet[BlockId]:
        """Distinct blocks referenced by the sequence."""
        return self.sequence.distinct_blocks

    def disk_of(self, block: BlockId) -> int:
        """Disk on which ``block`` resides."""
        return self.layout.disk_of(block)

    def cold_misses(self) -> int:
        """Number of distinct requested blocks not initially resident.

        Every schedule must fetch each of these at least once, so this is a
        trivial lower bound on the number of fetch operations.
        """
        return sum(1 for b in self.requested_blocks if b not in self.initial_cache)

    def with_cache_size(self, cache_size: int) -> "ProblemInstance":
        """A copy of the instance with a different cache size."""
        return replace(self, cache_size=cache_size)

    def with_initial_cache(self, initial_cache: Iterable[BlockId]) -> "ProblemInstance":
        """A copy of the instance with different initial cache contents."""
        return replace(self, initial_cache=frozenset(initial_cache))

    def with_extra_cache(self, extra: int) -> "ProblemInstance":
        """A copy with ``extra`` additional cache slots (Section 3 allowances)."""
        if extra < 0:
            raise ConfigurationError(f"extra cache must be non-negative, got {extra}")
        return replace(self, cache_size=self.cache_size + extra)

    def describe(self) -> str:
        """One-line human-readable summary used in reports and logs."""
        return (
            f"n={self.num_requests} distinct={self.sequence.num_distinct} "
            f"k={self.cache_size} F={self.fetch_time} D={self.num_disks} "
            f"warm={len(self.initial_cache)}"
        )
