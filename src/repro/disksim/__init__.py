"""Single- and parallel-disk prefetching/caching simulator (the model substrate).

This subpackage implements the Cao–Felten–Karlin–Li model used by the paper:
request sequences, cache state with fetch reservations, disk layouts, schedule
representations, the simulation engine and the schedule validator, plus the
metrics and event log every experiment consumes.
"""

from .cache import CacheState
from .disk import DiskLayout
from .events import Event, EventKind, EventLog
from .executor import (
    FetchDecision,
    HorizonExhausted,
    PolicyView,
    PrefetchPolicy,
    SimulationResult,
    canonical_engine,
    execute_interval_schedule,
    execute_schedule,
    simulate,
    simulate_with_engine,
)
from .index import EvictionHeap, MissTracker, SequenceIndex
from .instance import ProblemInstance
from .metrics import SimMetrics
from .schedule import IntervalFetch, IntervalSchedule, Schedule, TimedFetch
from .sequence import RequestSequence
from .stepped import SteppedPolicyView, SteppedSimulation
from .stream import StreamSequence
from .vector import (
    BatchOutcome,
    ineligibility_reason,
    numpy_available,
    require_numpy,
    run_batch,
    simulate_batch,
    simulate_vector,
)

__all__ = [
    "CacheState",
    "DiskLayout",
    "Event",
    "EventKind",
    "EventLog",
    "FetchDecision",
    "HorizonExhausted",
    "PolicyView",
    "SteppedPolicyView",
    "SteppedSimulation",
    "StreamSequence",
    "ineligibility_reason",
    "PrefetchPolicy",
    "SimulationResult",
    "canonical_engine",
    "execute_interval_schedule",
    "execute_schedule",
    "simulate",
    "simulate_with_engine",
    "BatchOutcome",
    "numpy_available",
    "require_numpy",
    "run_batch",
    "simulate_batch",
    "simulate_vector",
    "EvictionHeap",
    "MissTracker",
    "SequenceIndex",
    "ProblemInstance",
    "SimMetrics",
    "IntervalFetch",
    "IntervalSchedule",
    "Schedule",
    "TimedFetch",
    "RequestSequence",
]
