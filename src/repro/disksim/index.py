"""Runtime indices for the simulation engine (see DESIGN.md §4).

The seed engine answered every derived query of the classical algorithms —
*"position of the next request whose block is missing"*, *"resident block
whose next use is furthest away"* — by re-scanning the request sequence at
each decision point, making a single run O(n²·k).  This module provides the
structures that turn those queries into amortised O(log k) operations:

* :class:`SequenceIndex` — static per-(sequence, layout) data built once in
  O(n) and cached across runs: the distinct requested blocks partitioned by
  disk, and their first-use positions.  (The per-block occurrence lists and
  the successor/next-use chain live on :class:`RequestSequence` itself.)

* :class:`MissTracker` — dynamic per-run data answering ``next_missing``:
  one lazy min-heap *per disk* over the currently absent blocks, keyed by
  their next occurrence at the moment they became absent.  The key
  invariant making laziness sound: the cursor passes a position only by
  *serving* it, which requires the block to be resident — so while a block
  stays absent its stored key cannot be overtaken.  A key only goes stale
  across a present/absent round-trip, in which case a fresher (larger)
  entry exists and the stale one (``key < cursor``) is dropped when it
  surfaces, which in a min-heap it does first.  The hot-path query is a
  heap peek: amortised O(1), O(D) across disks.

* :class:`EvictionHeap` — dynamic per-run data answering *furthest next
  use*: a lazy max-heap over the resident blocks keyed by
  ``(next_use_from(cursor, b), str(b))`` — exactly the ordering the
  classical furthest-next-use eviction rule maximises.  Laziness in a
  max-heap requires stored keys never to *under*-estimate the true key, so
  the engine refreshes a block's entry at the only moment its key can grow:
  when the cursor passes one of its uses, i.e. when that request is served
  (:meth:`EvictionHeap.on_serve`, O(1) via the sequence's next-use chain).
  One push per request plus one per residency change keeps maintenance at
  O(n log k) over a whole run.

All three are consulted through :class:`~repro.disksim.executor.PolicyView`;
policies never touch them directly.
"""

from __future__ import annotations

from collections import OrderedDict
from heapq import heappop, heappush
from typing import AbstractSet, Iterable, List, Optional, Set, Tuple

from .._typing import INFINITY, BlockId, DiskId
from .disk import DiskLayout
from .sequence import RequestSequence

__all__ = ["SequenceIndex", "MissTracker", "EvictionHeap"]


class SequenceIndex:
    """Static runtime index of one (sequence, layout) pair.

    Parameters
    ----------
    sequence:
        The request sequence to index.
    layout:
        Disk layout; only needed for the per-disk queries of parallel
        instances (``DiskLayout.single()`` otherwise).
    """

    __slots__ = ("sequence", "layout", "blocks_by_disk")

    def __init__(self, sequence: RequestSequence, layout: Optional[DiskLayout] = None) -> None:
        self.sequence = sequence
        self.layout = layout if layout is not None else DiskLayout.single()
        num_disks = self.layout.num_disks
        by_disk: List[List[BlockId]] = [[] for _ in range(num_disks)]
        if num_disks == 1:
            by_disk[0] = list(sequence.distinct_blocks)
        else:
            for block in sequence.distinct_blocks:
                by_disk[self.layout.disk_of(block)].append(block)
        #: Distinct requested blocks, partitioned by the disk they reside on.
        self.blocks_by_disk: Tuple[Tuple[BlockId, ...], ...] = tuple(
            tuple(blocks) for blocks in by_disk
        )

    # -- construction cache ---------------------------------------------------------

    _CACHE: "OrderedDict[Tuple[int, int], Tuple[RequestSequence, Optional[DiskLayout], SequenceIndex]]" = OrderedDict()
    _CACHE_LIMIT = 32

    @classmethod
    def for_parts(cls, sequence: RequestSequence, layout: Optional[DiskLayout]) -> "SequenceIndex":
        """Build (or reuse) the index of ``(sequence, layout)``.

        Sweeps simulate many algorithms over the same instance; the bounded
        cache (strong references, so the ``id`` keys stay valid) makes the
        O(n) build a one-time cost per instance rather than per run.
        """
        key = (id(sequence), id(layout))
        cached = cls._CACHE.get(key)
        if cached is not None and cached[0] is sequence and cached[1] is layout:
            cls._CACHE.move_to_end(key)
            return cached[2]
        index = cls(sequence, layout)
        cls._CACHE[key] = (sequence, layout, index)
        while len(cls._CACHE) > cls._CACHE_LIMIT:
            cls._CACHE.popitem(last=False)
        return index

    def make_miss_tracker(self, initially_present: Iterable[BlockId]) -> "MissTracker":
        """A fresh per-run :class:`MissTracker` with everything outside
        ``initially_present`` absent."""
        return MissTracker(self, initially_present)


class MissTracker:
    """Per-run tracker of the next request whose block is absent.

    One lazy min-heap per disk over the absent blocks, keyed by the block's
    next occurrence at the moment it became absent.  See the module
    docstring for why those keys stay exact while a block remains absent.
    The engine reports residency transitions via :meth:`mark_present` (fetch
    started — the block counts as "on its way") and :meth:`mark_absent`
    (victim evicted); serving requests needs no maintenance at all.
    """

    __slots__ = ("_sequence", "_layout", "_heaps", "_absent", "_counter")

    def __init__(self, index: SequenceIndex, initially_present: Iterable[BlockId]) -> None:
        self._sequence = index.sequence
        self._layout = index.layout
        # Entries are (next occurrence, insertion counter, block); the counter
        # avoids comparing raw block ids, which may be of mixed types.
        self._heaps: List[List[Tuple[int, int, BlockId]]] = [
            [] for _ in range(index.layout.num_disks)
        ]
        self._absent: Set[BlockId] = set()
        self._counter = 0
        present = (
            initially_present
            if isinstance(initially_present, (set, frozenset))
            else set(initially_present)
        )
        first_use = index.sequence.first_use
        for disk, blocks in enumerate(index.blocks_by_disk):
            heap = self._heaps[disk]
            for block in blocks:
                if block in present:
                    continue
                self._absent.add(block)
                self._counter += 1
                heap.append((first_use(block), self._counter, block))
            heap.sort()

    def mark_present(self, block: BlockId) -> None:
        """``block`` is resident or in flight from now on (entry dies lazily)."""
        self._absent.discard(block)

    def mark_absent(self, block: BlockId, cursor: int) -> None:
        """``block`` was evicted at ``cursor``; key it by its next occurrence."""
        if block in self._absent:
            return
        self._absent.add(block)
        next_use = self._sequence.next_use_from(cursor, block)
        if next_use >= INFINITY:
            # Never requested again: it can never be the next missing block.
            return
        self._counter += 1
        heappush(self._heaps[self._layout.disk_of(block)], (next_use, self._counter, block))

    def _peek(
        self, disk: DiskId, cursor: int, exclude: AbstractSet[BlockId]
    ) -> Optional[int]:
        """First missing position on ``disk`` (ignoring ``exclude``), or None."""
        heap = self._heaps[disk]
        stash: List[Tuple[int, int, BlockId]] = []
        found: Optional[int] = None
        while heap:
            position, _, block = heap[0]
            if block not in self._absent or position < cursor:
                # Fetched meanwhile, or a stale key from an earlier absence
                # spell (a fresher entry exists deeper in the heap).
                heappop(heap)
                continue
            if block in exclude:
                stash.append(heappop(heap))
                continue
            found = position
            break
        for entry in stash:
            heappush(heap, entry)
        return found

    def next_missing(
        self,
        cursor: int,
        on_disk: Optional[DiskId] = None,
        exclude: Iterable[BlockId] = (),
    ) -> Optional[int]:
        """Position of the next request (``>= cursor``) to an absent block
        not in ``exclude``, optionally restricted to blocks on ``on_disk``."""
        exclude_set = exclude if isinstance(exclude, (set, frozenset)) else set(exclude)
        if on_disk is not None:
            return self._peek(on_disk, cursor, exclude_set)
        best: Optional[int] = None
        for disk in range(len(self._heaps)):
            position = self._peek(disk, cursor, exclude_set)
            if position is not None and (best is None or position < best):
                best = position
        return best


class _ReversedStr:
    """String wrapper with inverted ordering (turns heapq into a max-heap key)."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        self.value = value

    def __lt__(self, other: "_ReversedStr") -> bool:
        return self.value > other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ReversedStr) and self.value == other.value


class EvictionHeap:
    """Lazy max-heap over the resident blocks, keyed by furthest next use.

    The key of block ``b`` at cursor ``c`` is ``(next_use_from(c, b), str(b))``
    — the exact ordering the classical eviction rule and the engine's forced
    demand fetches maximise.  The heap is *lazy*: evictions leave stale
    entries behind, and serving a request re-pushes the served block under
    its new (larger) key, leaving the old entry behind; both kinds of stale
    entry are dropped when they surface.  The caller must invoke
    :meth:`on_serve` for every served request — a stored key is valid exactly
    when its block is resident and the stored use has not been passed, which
    only holds if refreshes happen at every crossing.  Membership truth lives
    in the ``_resident`` mirror maintained via :meth:`add` / :meth:`discard`.
    """

    __slots__ = ("_sequence", "_heap", "_resident", "_counter")

    def __init__(self, sequence: RequestSequence) -> None:
        self._sequence = sequence
        # Entries are (-next_use, reversed str, insertion counter, block); the
        # counter settles the (pathological) tie of two distinct blocks with
        # identical ``str`` and next use without comparing raw block ids,
        # which may be of incomparable types.
        self._heap: List[Tuple[int, _ReversedStr, int, BlockId]] = []
        self._resident: Set[BlockId] = set()
        self._counter = 0

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, block: BlockId) -> bool:
        return block in self._resident

    def add(self, block: BlockId, cursor: int) -> None:
        """Mark ``block`` resident and key it at ``cursor``."""
        if block in self._resident:
            return
        self._resident.add(block)
        next_use = self._sequence.next_use_from(cursor, block)
        self._counter += 1
        heappush(self._heap, (-next_use, _ReversedStr(str(block)), self._counter, block))

    def discard(self, block: BlockId) -> None:
        """Mark ``block`` no longer resident (its heap entry dies lazily)."""
        self._resident.discard(block)

    def on_serve(self, position: int) -> None:
        """Refresh the served block's key after the request at ``position``.

        Serving is the only event at which a resident block's key grows (its
        next use jumps to the following occurrence), so refreshing here keeps
        every resident block represented by at least one entry with its true
        key; entries left behind underestimate and are dropped when popped.
        """
        block = self._sequence[position]
        if block in self._resident:
            next_use = self._sequence.next_use_chain(position)
            self._counter += 1
            heappush(
                self._heap, (-next_use, _ReversedStr(str(block)), self._counter, block)
            )

    def best(self, cursor: int, exclude: Iterable[BlockId] = ()) -> Optional[BlockId]:
        """The resident block (not in ``exclude``) maximising
        ``(next_use_from(cursor, b), str(b))``, or ``None``."""
        exclude_set = exclude if isinstance(exclude, (set, frozenset)) else set(exclude)
        heap = self._heap
        stash: List[Tuple[int, _ReversedStr, int, BlockId]] = []
        found: Optional[BlockId] = None
        while heap:
            stored_next_use, _, _, block = heap[0]
            if block not in self._resident or -stored_next_use < cursor:
                # Evicted meanwhile, or the stored use has been passed (a
                # fresher entry was pushed by on_serve at the crossing or by
                # add on re-fetch, and sorts above this one).
                heappop(heap)
                continue
            if block in exclude_set:
                stash.append(heappop(heap))
                # A block can appear twice (re-keyed or re-fetched); skip all
                # of its copies, they will be pushed back below.
                continue
            found = block
            break
        for entry in stash:
            heappush(heap, entry)
        return found

    def next_use_of_best(self, cursor: int) -> int:
        """Next use of :meth:`best`'s answer (``INFINITY`` when heap empty)."""
        block = self.best(cursor)
        if block is None:
            return INFINITY
        return self._sequence.next_use_from(cursor, block)
