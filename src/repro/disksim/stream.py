"""Append-only request sequences for online (streamed) simulation.

The Cao et al. problem is offline — the whole sequence is known — but the
service layer answers "what would the policy fetch next?" while requests are
still arriving.  :class:`StreamSequence` is the substrate for that: a
:class:`~repro.disksim.sequence.RequestSequence` whose tail can grow via
:meth:`StreamSequence.extend` while every position-query (``next_use_from``,
``distinct_in_window``, ...) stays exact *over the fed prefix*.  A query
whose true answer lies beyond the horizon returns
:data:`~repro._typing.INFINITY` exactly as a finished sequence would for
"never again"; the stepped kernel's guarded view decides when that answer is
safe to act on and when the simulation must pause instead.

Once :meth:`StreamSequence.close` is called the stream is a plain immutable
sequence and all answers are final.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple, cast

from .._typing import INFINITY, BlockId
from ..errors import InvalidSequenceError
from .sequence import RequestSequence

__all__ = ["StreamSequence"]


class StreamSequence(RequestSequence):
    """A request sequence that grows at the tail until it is closed.

    The parent's per-block position lists and next-use chain are maintained
    incrementally: appending one request costs O(1) amortised (one list
    append plus patching the previous occurrence's next-use link), so feeding
    requests one at a time is linear overall.

    Unlike its parent, a stream may start empty; equality and hashing view
    the *current* prefix (they are only stable once the stream is closed).
    """

    __slots__ = ("_closed",)

    def __init__(self, requests: Sequence[BlockId] = ()) -> None:
        # Deliberately no super().__init__(): the parent freezes tuples,
        # whereas the stream keeps list-backed storage it can append to.  The
        # parent's query methods only index/slice/len these containers, which
        # lists support identically.
        self._requests = cast(Tuple[BlockId, ...], [])
        self._positions = cast(Dict[BlockId, List[int]], {})
        self._next_use = cast(Tuple[int, ...], [])
        self._hash = None
        self._closed = False
        if requests:
            self.extend(requests)

    # -- growth -----------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether the stream has been sealed (no further requests accepted)."""
        return self._closed

    def close(self) -> None:
        """Seal the stream: the sequence is now final and fully known."""
        self._closed = True

    def extend(self, blocks: Iterable[BlockId]) -> int:
        """Append ``blocks`` at the tail; returns how many were appended.

        Raises :class:`~repro.errors.InvalidSequenceError` when the stream is
        closed or a block is ``None``.
        """
        if self._closed:
            raise InvalidSequenceError("cannot extend a closed StreamSequence")
        requests = cast(List[BlockId], self._requests)
        next_use = cast(List[int], self._next_use)
        count = 0
        for block in blocks:
            if block is None:
                raise InvalidSequenceError(f"request {len(requests)} is None")
            position = len(requests)
            plist = self._positions.setdefault(block, [])
            if plist:
                # The previous occurrence was the last one so far; its
                # next-use link now points here.
                next_use[plist[-1]] = position
            plist.append(position)
            requests.append(block)
            next_use.append(INFINITY)
            count += 1
        return count

    # -- identity ----------------------------------------------------------------

    @property
    def requests(self) -> Tuple[BlockId, ...]:
        """Snapshot tuple of the requests fed so far."""
        return tuple(self._requests)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RequestSequence):
            return tuple(self._requests) == tuple(other._requests)
        if isinstance(other, (tuple, list)):
            return tuple(self._requests) == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        # Never cached: the prefix (and therefore the hash) changes on extend.
        return hash(tuple(self._requests))

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        status = "closed" if self._closed else "open"
        return f"StreamSequence(n={len(self._requests)}, {status})"
