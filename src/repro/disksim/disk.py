"""Disk layout: the assignment of blocks to disks.

In the parallel-disk version of the Cao et al. model every block resides on
exactly one of ``D`` disks and blocks from different disks may be fetched
concurrently.  :class:`DiskLayout` captures that assignment and provides the
placement policies used by the multi-disk workload generators (striping,
hashing, explicit partitioning).  The single-disk problem is simply the
``D = 1`` special case.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Dict, FrozenSet, List

from .._typing import BlockId, DiskId
from ..errors import ConfigurationError

__all__ = ["DiskLayout"]


class DiskLayout:
    """Immutable mapping of blocks to disks.

    Parameters
    ----------
    num_disks:
        Number of disks ``D >= 1``.
    mapping:
        Mapping of block identifier to disk identifier in ``range(num_disks)``.
        Blocks that are never looked up need not appear.  Lookups of unmapped
        blocks use ``default_disk``.
    default_disk:
        Disk assigned to blocks absent from ``mapping``.  Defaults to disk 0,
        which makes the single-disk case require no mapping at all.
    """

    __slots__ = ("_num_disks", "_mapping", "_default_disk", "_by_disk")

    def __init__(
        self,
        num_disks: int = 1,
        mapping: Mapping[BlockId, DiskId] | None = None,
        *,
        default_disk: DiskId = 0,
    ) -> None:
        if num_disks < 1:
            raise ConfigurationError(f"num_disks must be >= 1, got {num_disks}")
        if not 0 <= default_disk < num_disks:
            raise ConfigurationError(
                f"default_disk {default_disk} outside range(0, {num_disks})"
            )
        mapping = dict(mapping or {})
        for block, disk in mapping.items():
            if not 0 <= disk < num_disks:
                raise ConfigurationError(
                    f"block {block!r} mapped to disk {disk}, outside range(0, {num_disks})"
                )
        self._num_disks = num_disks
        self._mapping: Dict[BlockId, DiskId] = mapping
        self._default_disk = default_disk
        by_disk: List[set] = [set() for _ in range(num_disks)]
        for block, disk in mapping.items():
            by_disk[disk].add(block)
        self._by_disk = tuple(frozenset(s) for s in by_disk)

    # -- constructors -------------------------------------------------------------

    @classmethod
    def single(cls) -> "DiskLayout":
        """The trivial single-disk layout."""
        return cls(1)

    @classmethod
    def from_mapping(cls, mapping: Mapping[BlockId, DiskId]) -> "DiskLayout":
        """Layout inferred from an explicit block->disk mapping."""
        if not mapping:
            return cls.single()
        num_disks = max(mapping.values()) + 1
        return cls(num_disks, mapping)

    @classmethod
    def striped(cls, blocks: Iterable[BlockId], num_disks: int) -> "DiskLayout":
        """Round-robin (striped) placement of ``blocks`` over ``num_disks`` disks.

        Blocks are assigned in the iteration order of ``blocks``; use a sorted
        iterable for deterministic placement.
        """
        mapping = {block: i % num_disks for i, block in enumerate(blocks)}
        return cls(num_disks, mapping)

    @classmethod
    def hashed(cls, blocks: Iterable[BlockId], num_disks: int) -> "DiskLayout":
        """Placement by a deterministic hash of the block identifier.

        Unlike Python's builtin ``hash`` (randomised for strings across
        processes) this uses a stable FNV-1a hash of ``repr(block)`` so that
        experiments are reproducible run to run.
        """
        mapping = {}
        for block in blocks:
            data = repr(block).encode("utf8")
            h = 0xCBF29CE484222325
            for byte in data:
                h ^= byte
                h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
            mapping[block] = h % num_disks
        return cls(num_disks, mapping)

    @classmethod
    def partitioned(cls, partitions: Iterable[Iterable[BlockId]]) -> "DiskLayout":
        """One disk per partition; every block in partition ``d`` lives on disk ``d``."""
        mapping: Dict[BlockId, DiskId] = {}
        num = 0
        for disk, part in enumerate(partitions):
            num = disk + 1
            for block in part:
                if block in mapping and mapping[block] != disk:
                    raise ConfigurationError(
                        f"block {block!r} assigned to both disk {mapping[block]} and {disk}"
                    )
                mapping[block] = disk
        if num == 0:
            return cls.single()
        return cls(num, mapping)

    # -- queries ------------------------------------------------------------------

    @property
    def num_disks(self) -> int:
        """Number of disks ``D``."""
        return self._num_disks

    @property
    def mapping(self) -> Dict[BlockId, DiskId]:
        """A copy of the explicit block->disk mapping."""
        return dict(self._mapping)

    @property
    def default_disk(self) -> DiskId:
        """Disk assigned to blocks absent from the explicit mapping."""
        return self._default_disk

    def disk_of(self, block: BlockId) -> DiskId:
        """Disk on which ``block`` resides."""
        return self._mapping.get(block, self._default_disk)

    def blocks_on(self, disk: DiskId) -> FrozenSet[BlockId]:
        """Explicitly mapped blocks residing on ``disk``."""
        if not 0 <= disk < self._num_disks:
            raise ConfigurationError(f"disk {disk} outside range(0, {self._num_disks})")
        return self._by_disk[disk]

    def partition(self, blocks: Iterable[BlockId]) -> List[FrozenSet[BlockId]]:
        """Partition ``blocks`` by their disk; entry ``d`` holds disk ``d``'s blocks."""
        parts: List[set] = [set() for _ in range(self._num_disks)]
        for block in blocks:
            parts[self.disk_of(block)].add(block)
        return [frozenset(p) for p in parts]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiskLayout):
            return NotImplemented
        return (
            self._num_disks == other._num_disks
            and self._mapping == other._mapping
            and self._default_disk == other._default_disk
        )

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"DiskLayout(num_disks={self._num_disks}, |mapping|={len(self._mapping)})"
