"""Request sequences with precomputed next/previous-use indices.

The request sequence is the central input of the integrated prefetching and
caching problem (Cao et al. model): a fully known, offline sequence
``sigma = r_1, ..., r_n`` of block identifiers.  Every algorithm in this
package — Aggressive, Conservative, Delay(d), the LP-based optimal schedulers
— repeatedly asks questions of the form *"when is block b referenced next
after position i?"*.  :class:`RequestSequence` answers those queries in
``O(log n)`` via per-block sorted position lists.

Positions are 0-based throughout the library.  The paper uses 1-based request
indices; the LP module documents the conversion explicitly where it matters.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Iterator, Sequence
from typing import Dict, List, Tuple

from .._typing import INFINITY, BlockId
from ..errors import InvalidSequenceError

__all__ = ["RequestSequence"]


class RequestSequence(Sequence[BlockId]):
    """An immutable request sequence with fast next/previous-use queries.

    Parameters
    ----------
    requests:
        Iterable of block identifiers, one per request.  Must be non-empty
        unless ``allow_empty`` is set (empty sequences are occasionally useful
        in tests and as neutral elements when concatenating workloads).

    Notes
    -----
    The class behaves like an immutable ``Sequence[BlockId]``: it supports
    ``len``, indexing, slicing (returning a new :class:`RequestSequence`),
    iteration, equality and hashing.
    """

    __slots__ = ("_requests", "_positions", "_next_use", "_hash")

    def __init__(self, requests: Sequence[BlockId], *, allow_empty: bool = False) -> None:
        reqs: Tuple[BlockId, ...] = tuple(requests)
        if not reqs and not allow_empty:
            raise InvalidSequenceError("request sequence must not be empty")
        for pos, block in enumerate(reqs):
            if block is None:
                raise InvalidSequenceError(f"request {pos} is None")
        self._requests = reqs
        positions: Dict[BlockId, List[int]] = {}
        for pos, block in enumerate(reqs):
            positions.setdefault(block, []).append(pos)
        self._positions = positions
        # next_use[i] = smallest j > i with sigma[j] == sigma[i], else INFINITY.
        next_use: List[int] = [INFINITY] * len(reqs)
        last_seen: Dict[BlockId, int] = {}
        for pos in range(len(reqs) - 1, -1, -1):
            block = reqs[pos]
            next_use[pos] = last_seen.get(block, INFINITY)
            last_seen[block] = pos
        self._next_use = tuple(next_use)
        self._hash: int | None = None

    # -- basic sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._requests)

    def __getitem__(self, index: "int | slice") -> "BlockId | RequestSequence":
        if isinstance(index, slice):
            return RequestSequence(self._requests[index], allow_empty=True)
        return self._requests[index]

    def __iter__(self) -> Iterator[BlockId]:
        return iter(self._requests)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RequestSequence):
            # tuple() so list-backed StreamSequence storage compares by content
            # regardless of which operand is the stream (tuple(t) is identity
            # for tuples, so the plain/plain case stays O(1) + compare).
            return tuple(self._requests) == tuple(other._requests)
        if isinstance(other, (tuple, list)):
            return tuple(self._requests) == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._requests)
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        if len(self._requests) <= 12:
            body = ", ".join(map(str, self._requests))
        else:
            head = ", ".join(map(str, self._requests[:6]))
            tail = ", ".join(map(str, self._requests[-3:]))
            body = f"{head}, ..., {tail}"
        return f"RequestSequence([{body}], n={len(self._requests)})"

    # -- derived data -------------------------------------------------------------

    @property
    def requests(self) -> Tuple[BlockId, ...]:
        """The raw tuple of requested block identifiers."""
        return self._requests

    @property
    def distinct_blocks(self) -> frozenset:
        """Set of distinct blocks referenced by the sequence."""
        return frozenset(self._positions)

    @property
    def num_distinct(self) -> int:
        """Number of distinct blocks referenced by the sequence."""
        return len(self._positions)

    def positions(self, block: BlockId) -> Tuple[int, ...]:
        """All positions (sorted, 0-based) at which ``block`` is requested."""
        return tuple(self._positions.get(block, ()))

    def contains_block(self, block: BlockId) -> bool:
        """Whether ``block`` is requested anywhere in the sequence."""
        return block in self._positions

    def first_use(self, block: BlockId) -> int:
        """Position of the first request to ``block`` (``INFINITY`` if never)."""
        plist = self._positions.get(block)
        return plist[0] if plist else INFINITY

    def last_use(self, block: BlockId) -> int:
        """Position of the last request to ``block`` (``-1`` if never)."""
        plist = self._positions.get(block)
        return plist[-1] if plist else -1

    def next_use_from(self, position: int, block: BlockId) -> int:
        """Smallest position ``>= position`` requesting ``block``.

        Returns :data:`~repro._typing.INFINITY` when the block is not
        requested at or after ``position``.  ``position`` may exceed the
        sequence length (the answer is then ``INFINITY``).
        """
        plist = self._positions.get(block)
        if not plist:
            return INFINITY
        idx = bisect_left(plist, position)
        return plist[idx] if idx < len(plist) else INFINITY

    def next_use_after(self, position: int, block: BlockId) -> int:
        """Smallest position ``> position`` requesting ``block`` (or INFINITY)."""
        return self.next_use_from(position + 1, block)

    def previous_use_before(self, position: int, block: BlockId) -> int:
        """Largest position ``< position`` requesting ``block`` (or ``-1``)."""
        plist = self._positions.get(block)
        if not plist:
            return -1
        idx = bisect_left(plist, position)
        return plist[idx - 1] if idx > 0 else -1

    def next_use_chain(self, position: int) -> int:
        """For the request at ``position``, the next position of the same block.

        Equivalent to ``next_use_after(position, self[position])`` but O(1).
        """
        return self._next_use[position]

    def uses_between(self, block: BlockId, lo: int, hi: int) -> int:
        """Number of requests to ``block`` with position in ``[lo, hi)``."""
        plist = self._positions.get(block)
        if not plist:
            return 0
        return bisect_left(plist, hi) - bisect_left(plist, lo)

    def is_requested_in(self, block: BlockId, lo: int, hi: int) -> bool:
        """Whether ``block`` is requested at some position in ``[lo, hi)``."""
        return self.uses_between(block, lo, hi) > 0

    def distinct_in_window(self, lo: int, hi: int) -> frozenset:
        """Distinct blocks requested at positions in ``[lo, hi)``."""
        lo = max(lo, 0)
        hi = min(hi, len(self._requests))
        return frozenset(self._requests[lo:hi])

    def block_at(self, position: int) -> BlockId:
        """Block requested at ``position`` (alias of ``self[position]``)."""
        return self._requests[position]

    # -- combinators ----------------------------------------------------------------

    def reversed(self) -> "RequestSequence":
        """The reversed sequence (used by the Reverse Aggressive baseline)."""
        return RequestSequence(tuple(reversed(self._requests)), allow_empty=True)

    def concat(self, other: "RequestSequence | Sequence[BlockId]") -> "RequestSequence":
        """Concatenation of two request sequences."""
        other_req = other.requests if isinstance(other, RequestSequence) else tuple(other)
        return RequestSequence(self._requests + tuple(other_req), allow_empty=True)

    def repeat(self, times: int) -> "RequestSequence":
        """The sequence repeated ``times`` times."""
        if times < 0:
            raise InvalidSequenceError("repeat count must be non-negative")
        return RequestSequence(self._requests * times, allow_empty=True)

    def relabelled(self, mapping: Dict[BlockId, BlockId]) -> "RequestSequence":
        """A copy with block identifiers renamed via ``mapping``.

        Blocks not present in ``mapping`` keep their identifier.
        """
        return RequestSequence(
            tuple(mapping.get(b, b) for b in self._requests), allow_empty=True
        )
