"""The simulation engine: drives policies and validates schedules.

This module implements the integer time model of the Cao et al. framework
(see DESIGN.md §3) exactly once, and exposes it in three forms:

* :func:`simulate` — drive a *prefetching policy* (Aggressive, Conservative,
  Delay(d), ...) over a :class:`~repro.disksim.instance.ProblemInstance`,
  producing a :class:`SimulationResult` with the schedule the policy chose,
  its metrics and a full event log.

* :func:`execute_interval_schedule` — replay a position-anchored
  :class:`~repro.disksim.schedule.IntervalSchedule` (the output format of the
  Section 3 LP algorithms), independently verifying feasibility and measuring
  the *actual* stall time the schedule incurs.

* :func:`execute_schedule` — replay a clock-anchored
  :class:`~repro.disksim.schedule.Schedule` (the output of :func:`simulate`);
  used by tests to confirm that re-executing a policy's own schedule
  reproduces the policy's reported metrics, i.e. no algorithm can mis-account
  its stall time.

All three entry points run the *same* event loop (:func:`_run_event_loop`):
the loop owns time advancement, fetch completion, serving and stall
accounting, while a *driver* object supplies what differs between
policy-driven simulation and schedule replay (which fetches to issue at a
decision point, what to do when the needed block is absent, position
barriers).  The loop consumes the runtime indices of
:mod:`repro.disksim.index` — a :class:`~repro.disksim.index.SequenceIndex`
built once per instance, plus an incremental
:class:`~repro.disksim.index.MissTracker` and
:class:`~repro.disksim.index.EvictionHeap` per run — so the derived queries
policies are phrased in terms of (next missing block, furthest-future
resident block) cost amortised O(log k) instead of a scan of the whole
sequence.  Passing
``engine="scan"`` selects the original scan-based query implementations,
kept as the reference for the equivalence tests and the speed benchmark.

Model recap
-----------
Serving a resident request takes one time unit.  A fetch started at time
``t`` completes at ``t + F``; the fetched block can serve requests that start
at time ``>= t + F``; the victim is unavailable from ``t`` on.  Each disk runs
at most one fetch at a time.  If the next request's block is absent, the
processor stalls (all in-flight fetches keep progressing during the stall).

Decision points
---------------
Policies are consulted (a) immediately before each request is served and
(b) at every fetch-completion instant, including completions that occur in
the middle of a stall — stalls are advanced in completion-sized chunks so
that an idle disk can start its next fetch as soon as it becomes free, which
is what the parallel-disk algorithms of Section 3 and of Kimbrel–Karlin
assume.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Optional, Protocol, Tuple, runtime_checkable

from .._typing import INFINITY, BlockId, DiskId
from ..errors import ConfigurationError, InvalidScheduleError, PolicyError
from .cache import CacheState
from .events import Event, EventKind, EventLog
from .index import EvictionHeap, MissTracker, SequenceIndex
from .instance import ProblemInstance
from .metrics import SimMetrics
from .schedule import IntervalSchedule, Schedule, TimedFetch

__all__ = [
    "FetchDecision",
    "HorizonExhausted",
    "PolicyView",
    "PrefetchPolicy",
    "SimulationResult",
    "canonical_engine",
    "simulate",
    "simulate_with_engine",
    "execute_schedule",
    "execute_interval_schedule",
]


class HorizonExhausted(Exception):
    """A policy query's answer depends on requests beyond the fed horizon.

    Raised only while a :class:`~repro.disksim.stepped.SteppedSimulation` runs
    an *open* stream: the guarded policy view (and the forced-victim helper
    below) raise it when a query cannot be answered exactly from the prefix
    fed so far.  The stepped kernel catches it, commits nothing for the
    affected decision, and pauses until more requests arrive.  It never
    escapes to policies or callers, hence a plain :class:`Exception` rather
    than a :class:`~repro.errors.ReproError`.
    """

_ENGINES = ("loop", "scan", "vector", "auto")
_ENGINE_ALIASES = {"indexed": "loop"}


def canonical_engine(engine: str) -> str:
    """Resolve an engine name (or alias) to its canonical form.

    ``"loop"`` is the indexed event loop (the historical name ``"indexed"``
    is accepted as an alias), ``"scan"`` the scan-query reference
    implementation, ``"vector"`` the numpy struct-of-arrays batch engine and
    ``"auto"`` picks the fastest applicable engine at run time (vector when
    numpy is importable and the instance/policy is covered, loop otherwise).
    Raises :class:`~repro.errors.ConfigurationError` for anything else.
    """
    name = _ENGINE_ALIASES.get(engine, engine)
    if name not in _ENGINES:
        choices = _ENGINES + tuple(_ENGINE_ALIASES)
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected one of {choices}"
        )
    return name


@dataclass(frozen=True)
class FetchDecision:
    """A policy's decision to start one fetch right now.

    ``victim=None`` means "use a free cache slot"; this is only legal when the
    cache is not full, which ordinary ``k``-slot algorithms never rely on but
    the Section 3 extra-memory schedules do.
    """

    disk: DiskId
    block: BlockId
    victim: Optional[BlockId] = None


class PolicyView:
    """Read-only snapshot of the simulation state handed to policies.

    Policies receive full knowledge of the instance (the problem is offline)
    plus the dynamic state: the clock, the cursor (index of the next request
    to serve), the resident and in-flight block sets, and which disks are
    idle.  The view exposes the handful of derived queries that the classical
    algorithms are phrased in terms of (next missing block, furthest-future
    resident block, ...), answered through the engine's runtime indices when
    available and by the original sequence scans otherwise.
    """

    __slots__ = (
        "instance",
        "time",
        "cursor",
        "busy_disks",
        "_cache",
        "_misses",
        "_evictions",
        "_resident",
        "_incoming",
    )

    def __init__(
        self,
        instance: ProblemInstance,
        time: int,
        cursor: int,
        cache: CacheState,
        busy_disks: FrozenSet[DiskId],
        misses: Optional[MissTracker] = None,
        evictions: Optional[EvictionHeap] = None,
    ) -> None:
        self.instance = instance
        self.time = time
        self.cursor = cursor
        self.busy_disks = busy_disks
        self._cache = cache
        self._misses = misses
        self._evictions = evictions
        self._resident: Optional[FrozenSet[BlockId]] = None
        self._incoming: Optional[FrozenSet[BlockId]] = None

    # -- cache state ----------------------------------------------------------------

    @property
    def resident(self) -> FrozenSet[BlockId]:
        """Blocks that can serve requests right now (snapshot, built lazily)."""
        if self._resident is None:
            self._resident = self._cache.resident
        return self._resident

    @property
    def incoming(self) -> FrozenSet[BlockId]:
        """Blocks whose fetch is in flight (snapshot, built lazily)."""
        if self._incoming is None:
            self._incoming = self._cache.incoming
        return self._incoming

    @property
    def free_slots(self) -> int:
        """Slots that can accept a fetch without evicting anything."""
        return self._cache.free_slots

    # -- disk state -----------------------------------------------------------------

    def idle_disks(self) -> Tuple[DiskId, ...]:
        """Disks currently not executing a fetch."""
        return tuple(
            d for d in range(self.instance.num_disks) if d not in self.busy_disks
        )

    def is_idle(self, disk: DiskId) -> bool:
        """Whether ``disk`` is currently idle."""
        return disk not in self.busy_disks

    # -- block/position queries -------------------------------------------------------

    def is_available(self, block: BlockId) -> bool:
        """Whether ``block`` is resident right now."""
        return self._cache.contains(block)

    def is_in_flight(self, block: BlockId) -> bool:
        """Whether a fetch for ``block`` is currently executing."""
        return self._cache.is_incoming(block)

    def next_missing_position(
        self,
        on_disk: Optional[DiskId] = None,
        *,
        exclude: FrozenSet[BlockId] = frozenset(),
    ) -> Optional[int]:
        """Position of the next request whose block is neither resident nor in flight.

        When ``on_disk`` is given, only blocks residing on that disk are
        considered (the per-disk notion used by the parallel Aggressive
        algorithm).  ``exclude`` treats additional blocks as present — the
        parallel algorithms pass the blocks promised to other disks in the
        same decision round.  Returns ``None`` when no such request exists.
        """
        if self._misses is not None:
            return self._misses.next_missing(self.cursor, on_disk, exclude)
        seq = self.instance.sequence
        present = self.resident | self.incoming | exclude
        skipped = set()
        for pos in range(self.cursor, len(seq)):
            block = seq[pos]
            if block in present or block in skipped:
                continue
            if on_disk is not None and self.instance.disk_of(block) != on_disk:
                skipped.add(block)
                continue
            return pos
        return None

    def next_use(self, block: BlockId, from_position: Optional[int] = None) -> int:
        """Next position ``>= from_position`` (default: cursor) requesting ``block``."""
        start = self.cursor if from_position is None else from_position
        return self.instance.sequence.next_use_from(start, block)

    def furthest_resident(
        self,
        from_position: Optional[int] = None,
        candidates: Optional[FrozenSet[BlockId]] = None,
        *,
        exclude: FrozenSet[BlockId] = frozenset(),
    ) -> Optional[BlockId]:
        """The resident block whose next use (from ``from_position``) is furthest away.

        Ties are broken deterministically by the string representation of the
        block identifier so that runs are reproducible.  ``exclude`` removes
        blocks from consideration (promised victims of the same decision
        round).  Returns ``None`` when no candidate remains.
        """
        start = self.cursor if from_position is None else from_position
        seq = self.instance.sequence
        if self._evictions is not None and candidates is None and start >= self.cursor:
            if start == self.cursor:
                return self._evictions.best(self.cursor, exclude)
            # Judging from a future position: only blocks requested in the
            # window [cursor, start) have a different key there; re-key those
            # explicitly and take the heap's best over the rest (whose keys
            # are unchanged, the window holds their only uses before start).
            window = {
                b
                for b in seq.distinct_in_window(self.cursor, start)
                if b in self._evictions and b not in exclude
            }
            rest = self._evictions.best(self.cursor, frozenset(exclude) | window)
            best_block: Optional[BlockId] = None
            best_key: Optional[Tuple[int, str]] = None
            if rest is not None:
                best_block = rest
                best_key = (seq.next_use_from(start, rest), str(rest))
            for block in window:
                key = (seq.next_use_from(start, block), str(block))
                if best_key is None or key > best_key:
                    best_block, best_key = block, key
            return best_block
        pool = self.resident if candidates is None else (self.resident & candidates)
        if exclude:
            pool = pool - exclude
        if not pool:
            return None
        return max(pool, key=lambda b: (seq.next_use_from(start, b), str(b)))

    def evictable_for(self, target_position: int) -> Optional[BlockId]:
        """Victim for a fetch of the block requested at ``target_position``.

        Returns the resident block with the furthest next use provided that
        use lies strictly after ``target_position`` (the Aggressive
        pre-condition: *"it can evict a block that is not requested before the
        block to be fetched"*); otherwise ``None``.
        """
        victim = self.furthest_resident()
        if victim is None:
            return None
        if self.next_use(victim) > target_position:
            return victim
        return None


@runtime_checkable
class PrefetchPolicy(Protocol):
    """Protocol all prefetching/caching algorithms implement.

    ``reset`` is called once per simulation before any decision; ``decide`` is
    called at every decision point and returns the fetches to start *now* —
    usually zero or one, up to ``D`` for parallel-disk policies.
    """

    name: str

    def reset(self, instance: ProblemInstance) -> None:  # pragma: no cover - protocol
        """Prepare internal state for a fresh run over ``instance``."""
        ...

    def decide(self, view: PolicyView) -> List[FetchDecision]:  # pragma: no cover - protocol
        """Fetches to initiate at this decision point."""
        ...


@dataclass(frozen=True)
class SimulationResult:
    """Everything produced by one simulated run."""

    instance: ProblemInstance
    schedule: Schedule
    metrics: SimMetrics
    events: EventLog
    policy_name: str = ""
    #: Why the vector kernel was *not* used when the caller asked for
    #: ``engine="auto"`` or ``engine="vector"`` and the run fell back to the
    #: loop engine (e.g. ``"parallel-disk instance"``).  ``None`` when the
    #: requested engine ran, so engine choice is explainable from the result.
    engine_reason: Optional[str] = None

    @property
    def stall_time(self) -> int:
        """Total processor stall time of the run."""
        return self.metrics.stall_time

    @property
    def elapsed_time(self) -> int:
        """Total elapsed time (requests + stall) of the run."""
        return self.metrics.elapsed_time

    def with_solve_seconds(self, seconds: float) -> "SimulationResult":
        """Copy with solver wall time recorded on the metrics.

        Used by the LP drivers to stamp the model-build + solve + extraction
        cost onto the execution that certifies their schedule.
        """
        return replace(self, metrics=replace(self.metrics, solve_seconds=seconds))


# ---------------------------------------------------------------------------------
# engine internals
# ---------------------------------------------------------------------------------


class _EngineState:
    """Mutable engine internals shared by the execution entry points.

    With ``engine="loop"`` (the indexed event loop) the state owns the
    per-instance :class:`SequenceIndex` (built once, cached across runs) and
    an :class:`EvictionHeap` mirroring the resident set, maintained
    incrementally by the fetch lifecycle methods below.  ``"vector"`` and
    ``"auto"`` degrade to ``"loop"`` here: the event loop is the replay/
    fallback engine the vector kernel defers to for anything it does not
    cover.
    """

    #: True while the state belongs to an *open* request stream (set by the
    #: stepped kernel): scan queries whose answer depends on unseen requests
    #: must then raise :class:`HorizonExhausted` instead of guessing.
    stream_open: bool = False

    def __init__(self, instance: ProblemInstance, capacity: int, engine: str = "loop") -> None:
        engine = canonical_engine(engine)
        if engine in ("vector", "auto"):
            engine = "loop"
        self.instance = instance
        self.cache = CacheState(capacity, instance.initial_cache)
        self.in_flight: Dict[DiskId, Tuple[BlockId, int]] = {}
        self.fetch_ops: List[TimedFetch] = []
        self.events = EventLog()
        self.time = 0
        self.cursor = 0
        self.stall = 0
        self.hits = 0
        self.misses = 0
        self.demand_fetches = 0
        self.peak_used = self.cache.used_slots
        self.fetches_per_disk: Dict[DiskId, int] = {}
        self.first_look_resident: Dict[int, bool] = {}
        if engine == "loop":
            self.index: Optional[SequenceIndex] = SequenceIndex.for_parts(
                instance.sequence, instance.layout
            )
            self.miss_tracker: Optional[MissTracker] = self.index.make_miss_tracker(
                instance.initial_cache
            )
            self.evictions: Optional[EvictionHeap] = EvictionHeap(instance.sequence)
            for block in instance.initial_cache:
                self.evictions.add(block, 0)
        else:
            self.index = None
            self.miss_tracker = None
            self.evictions = None

    # -- fetch lifecycle ------------------------------------------------------------

    def complete_due_fetches(self) -> None:
        """Complete every in-flight fetch whose finish time has been reached."""
        for disk in sorted(self.in_flight):
            block, finish = self.in_flight[disk]
            if finish <= self.time:
                self.cache.complete_fetch(block)
                if self.evictions is not None:
                    self.evictions.add(block, self.cursor)
                self.events.record(
                    Event(finish, EventKind.FETCH_COMPLETE, block=block, disk=disk)
                )
                del self.in_flight[disk]

    def earliest_completion(self) -> Optional[int]:
        """Earliest finish time among in-flight fetches (None if all disks idle)."""
        if not self.in_flight:
            return None
        return min(finish for _, finish in self.in_flight.values())

    def start_fetch(self, decision: FetchDecision, *, forced: bool = False) -> None:
        """Validate and apply one fetch decision at the current time."""
        inst = self.instance
        disk, block, victim = decision.disk, decision.block, decision.victim
        if not 0 <= disk < inst.num_disks:
            raise PolicyError(f"decision uses unknown disk {disk}")
        if disk in self.in_flight:
            raise PolicyError(f"disk {disk} is busy until t={self.in_flight[disk][1]}")
        if inst.disk_of(block) != disk:
            raise PolicyError(
                f"block {block!r} resides on disk {inst.disk_of(block)}, not {disk}"
            )
        if self.cache.contains(block):
            raise PolicyError(f"block {block!r} is already resident")
        if self.cache.is_incoming(block):
            raise PolicyError(f"block {block!r} is already being fetched")
        try:
            self.cache.start_fetch(block, victim)
        except Exception as exc:  # CacheError -> PolicyError with context
            raise PolicyError(str(exc)) from exc
        if self.miss_tracker is not None:
            self.miss_tracker.mark_present(block)
            if victim is not None:
                self.miss_tracker.mark_absent(victim, self.cursor)
        if victim is not None and self.evictions is not None:
            self.evictions.discard(victim)
        finish = self.time + inst.fetch_time
        self.in_flight[disk] = (block, finish)
        self.fetch_ops.append(
            TimedFetch(start_time=self.time, disk=disk, block=block, victim=victim)
        )
        self.fetches_per_disk[disk] = self.fetches_per_disk.get(disk, 0) + 1
        if victim is not None:
            self.events.record(Event(self.time, EventKind.EVICT, block=victim, disk=disk))
        self.events.record(Event(self.time, EventKind.FETCH_START, block=block, disk=disk))
        self.peak_used = max(self.peak_used, self.cache.used_slots)
        if forced or (
            self.cursor < inst.num_requests and inst.sequence[self.cursor] == block
        ):
            self.demand_fetches += 1

    # -- time advancement -------------------------------------------------------------

    def stall_until(self, target_time: int, *, waiting_for: Optional[BlockId]) -> None:
        """Advance the clock to ``target_time``, accounting the gap as stall."""
        gap = target_time - self.time
        if gap <= 0:
            return
        self.events.record(
            Event(
                self.time,
                EventKind.STALL,
                block=waiting_for,
                request_index=self.cursor,
                duration=gap,
            )
        )
        self.stall += gap
        self.time = target_time

    def serve_current(self) -> None:
        """Serve the request at the cursor (takes one time unit)."""
        block = self.instance.sequence[self.cursor]
        self.events.record(
            Event(
                self.time,
                EventKind.SERVE,
                block=block,
                request_index=self.cursor,
                duration=1,
            )
        )
        if self.evictions is not None:
            self.evictions.on_serve(self.cursor)
        self.time += 1
        self.cursor += 1

    # -- result assembly ---------------------------------------------------------------

    def view(self) -> PolicyView:
        """Snapshot the current state for a policy decision."""
        return PolicyView(
            instance=self.instance,
            time=self.time,
            cursor=self.cursor,
            cache=self.cache,
            busy_disks=frozenset(self.in_flight),
            misses=self.miss_tracker,
            evictions=self.evictions,
        )

    def metrics(self) -> SimMetrics:
        """Aggregate metrics of the finished run."""
        return SimMetrics(
            num_requests=self.instance.num_requests,
            stall_time=self.stall,
            num_fetches=len(self.fetch_ops),
            num_demand_fetches=self.demand_fetches,
            cache_hits=self.hits,
            cache_misses=self.misses,
            peak_cache_used=self.peak_used,
            fetches_per_disk=dict(self.fetches_per_disk),
        )

    def schedule(self) -> Schedule:
        """The schedule of fetch decisions taken during the run."""
        return Schedule(
            fetch_time=self.instance.fetch_time,
            num_disks=self.instance.num_disks,
            fetches=tuple(self.fetch_ops),
            initial_cache=self.instance.initial_cache,
        )

    def drain_in_flight(self) -> None:
        """Run the clock out so the event log records trailing fetch completions.

        Completions after the last request affect neither stall nor elapsed
        time; this only closes the event log tidily.
        """
        if self.in_flight:
            self.time = max(finish for _, finish in self.in_flight.values())
            self.complete_due_fetches()

    def result(self, policy_name: str) -> SimulationResult:
        """Assemble the final :class:`SimulationResult` of the run."""
        return SimulationResult(
            instance=self.instance,
            schedule=self.schedule(),
            metrics=self.metrics(),
            events=self.events,
            policy_name=policy_name,
        )


def _default_forced_victim(state: _EngineState) -> Optional[BlockId]:
    """Victim for a forced demand fetch: free slot if any, else furthest next use.

    Returns ``None`` both for "use a free slot" and when no victim exists at
    all (cache fully reserved by in-flight fetches); callers distinguish the
    two via ``state.cache.free_slots``.
    """
    if state.cache.free_slots > 0:
        return None
    if state.evictions is not None:
        return state.evictions.best(state.cursor)
    seq = state.instance.sequence
    resident = state.cache.resident
    if not resident:
        return None
    if state.stream_open:
        # Open stream: a resident block with no use inside the fed horizon
        # has true next use >= horizon, i.e. beyond every known position.  A
        # single such block wins outright (matching what the full sequence
        # would yield); two or more are indistinguishable until more requests
        # arrive, so the stepped kernel must pause.
        unknown = [b for b in resident if seq.next_use_from(state.cursor, b) == INFINITY]
        if len(unknown) > 1:
            raise HorizonExhausted(
                "forced-victim choice depends on requests beyond the fed horizon"
            )
        if len(unknown) == 1:
            return unknown[0]
    return max(resident, key=lambda b: (seq.next_use_from(state.cursor, b), str(b)))


# ---------------------------------------------------------------------------------
# the event loop and its drivers
# ---------------------------------------------------------------------------------


class _Driver(Protocol):
    """What differs between policy-driven simulation and schedule replay."""

    def decision_point(self, state: _EngineState) -> None:
        """Issue fetches at the current decision point."""
        ...  # pragma: no cover - protocol

    def barrier(self, state: _EngineState) -> int:
        """Earliest time the request at the cursor may be served (0 = no barrier)."""
        ...  # pragma: no cover - protocol

    def clip_stall_target(self, state: _EngineState, target: int) -> int:
        """Adjust a stall target so intermediate decision points are not skipped."""
        ...  # pragma: no cover - protocol

    def on_absent(self, state: _EngineState, block: BlockId) -> None:
        """Handle a needed block that is absent, not in flight, disk idle."""
        ...  # pragma: no cover - protocol

    def finish(self, state: _EngineState) -> None:
        """Post-loop feasibility checks."""
        ...  # pragma: no cover - protocol


def _advance_loop(
    state: _EngineState, driver: _Driver, max_steps: Optional[int] = None
) -> bool:
    """Run the event loop until every *currently known* request is served.

    One iteration per decision point: complete due fetches, let the driver
    issue new ones, then either serve the request at the cursor or stall
    until the event (fetch completion or barrier expiry) that unblocks it.
    The request count is re-read every iteration so a growing
    :class:`~repro.disksim.stream.StreamSequence` extends the loop in place.
    Returns ``True`` when the cursor reached the end of the known sequence,
    ``False`` when ``max_steps`` decision points were executed first.
    """
    seq = state.instance.sequence
    first_look = state.first_look_resident
    steps = 0

    while state.cursor < state.instance.num_requests:
        if max_steps is not None and steps >= max_steps:
            return False
        steps += 1
        state.complete_due_fetches()
        driver.decision_point(state)

        block = seq[state.cursor]
        if state.cursor not in first_look:
            first_look[state.cursor] = state.cache.contains(block)

        barrier = driver.barrier(state)
        if barrier > state.time:
            # A position barrier (replay of interval schedules) holds the
            # cursor back: wait, in completion-sized chunks so other disks'
            # fetches can be issued at their completion decision points.
            target = state.earliest_completion()
            target = barrier if target is None else min(target, barrier)
            state.stall_until(target, waiting_for=block)
            continue

        if state.cache.contains(block):
            if first_look[state.cursor]:
                state.hits += 1
            else:
                state.misses += 1
            state.serve_current()
            continue

        if state.cache.is_incoming(block) or state.instance.disk_of(block) in state.in_flight:
            # The block is on its way, or its disk is busy with another fetch.
            # Stall only until the *earliest* completion so that fetch
            # completions during the stall become decision points for the
            # other disks.
            target = state.earliest_completion()
            assert target is not None  # at least one fetch is in flight here
            target = driver.clip_stall_target(state, target)
            state.stall_until(target, waiting_for=block)
            continue

        # The block is absent, not in flight, and its disk is idle.
        driver.on_absent(state, block)

    return True


def _run_event_loop(state: _EngineState, driver: _Driver) -> None:
    """Drive the clock from the first request to the last, then finalise."""
    _advance_loop(state, driver)
    driver.finish(state)
    state.drain_in_flight()


class _PolicyDriver:
    """Decision source for :func:`simulate`: consult the policy, force demand
    fetches when it leaves the processor unable to make progress."""

    def __init__(self, policy: PrefetchPolicy) -> None:
        self.policy = policy

    def decision_point(self, state: _EngineState) -> None:
        # The loop is bounded because every applied decision occupies one
        # more disk.
        num_disks = state.instance.num_disks
        for _ in range(num_disks):
            if len(state.in_flight) >= num_disks:
                break
            decisions = self.policy.decide(state.view())
            if not decisions:
                break
            for decision in decisions:
                if not isinstance(decision, FetchDecision):
                    raise PolicyError(
                        f"policy {self.policy.name!r} returned {decision!r}, "
                        "expected FetchDecision"
                    )
                state.start_fetch(decision)

    def barrier(self, state: _EngineState) -> int:
        return 0

    def clip_stall_target(self, state: _EngineState, target: int) -> int:
        return target

    def on_absent(self, state: _EngineState, block: BlockId) -> None:
        # The policy declined to fetch a block the processor needs right now:
        # issue a forced demand fetch with the classical furthest-next-use
        # victim so every policy produces a feasible schedule.
        victim = _default_forced_victim(state)
        if victim is None and state.cache.free_slots <= 0:
            # Every cache slot is reserved by an in-flight fetch, so the
            # demand fetch cannot start yet: wait for the next completion to
            # free a slot (always possible — a full cache with no resident
            # blocks implies in-flight fetches).
            target = state.earliest_completion()
            assert target is not None
            state.stall_until(target, waiting_for=block)
            return
        state.start_fetch(
            FetchDecision(disk=state.instance.disk_of(block), block=block, victim=victim),
            forced=True,
        )

    def finish(self, state: _EngineState) -> None:
        pass


class _ReplayDriver:
    """Decision source for schedule replay: issue recorded fetches at their
    recorded times/positions and reject infeasible schedules."""

    def __init__(
        self,
        instance: ProblemInstance,
        by_time: Dict[int, List[FetchDecision]],
        positional: List[Tuple[int, int, FetchDecision]],
    ) -> None:
        self.pending_by_time = {t: list(ds) for t, ds in sorted(by_time.items())}
        # Positional fetches are kept as one pending queue per disk, in the
        # paper's linear order "<" (by interval start, then end).  The head of
        # a queue is issued as soon as (a) enough requests have been served
        # (cursor >= start_pos), (b) the disk is idle and (c) its victim (if
        # any) is resident; later entries never overtake the head, which is
        # exactly how the LP's process-over-time view serialises the fetches
        # of one disk.
        self.queues_by_disk: Dict[DiskId, List[Tuple[int, int, FetchDecision]]] = {}
        for start_pos, deadline, decision in sorted(
            positional, key=lambda item: (item[0], item[1], str(item[2].block))
        ):
            self.queues_by_disk.setdefault(decision.disk, []).append(
                (start_pos, deadline, decision)
            )
        # Interval deadlines become *barriers*: request index ``end_pos - 1``
        # may not be served before the fetch of its interval has completed.
        # This is the synchronized-schedule semantics under which the LP
        # charges ``F - |I|`` stall per interval; honouring it keeps the
        # executed stall within the LP objective (the processor may wait
        # slightly where the LP said it would, instead of racing ahead and
        # starving later intervals).
        self.barriers: Dict[int, int] = {}
        self.fetch_time = instance.fetch_time
        self.num_requests = instance.num_requests

    def decision_point(self, state: _EngineState) -> None:
        # Clock-anchored fetches must be issuable at exactly their recorded time.
        for decision in self.pending_by_time.pop(state.time, []):
            try:
                state.start_fetch(decision)
            except PolicyError as exc:
                raise InvalidScheduleError(
                    f"scheduled fetch {decision} cannot be issued at t={state.time}, "
                    f"cursor={state.cursor}: {exc}"
                ) from exc
        # Position-anchored fetches: issue each disk's queue head when eligible.
        for disk, queue in self.queues_by_disk.items():
            if not queue or disk in state.in_flight:
                continue
            start_pos, deadline, decision = queue[0]
            if start_pos > state.cursor:
                continue
            if decision.victim is not None and decision.victim not in state.cache.resident:
                # Victim still on its way into cache: wait for it.
                continue
            if state.cache.contains(decision.block) or state.cache.is_incoming(decision.block):
                # The block is (still) present — e.g. its eviction is scheduled
                # in a later interval of a normalised LP solution.  Wait.
                continue
            queue.pop(0)
            try:
                state.start_fetch(decision)
            except PolicyError as exc:
                raise InvalidScheduleError(
                    f"scheduled fetch {decision} (eligible from position {start_pos}) "
                    f"cannot be issued at t={state.time}, cursor={state.cursor}: {exc}"
                ) from exc
            barrier_index = deadline - 1
            finish = state.time + self.fetch_time
            if 0 <= barrier_index < self.num_requests:
                self.barriers[barrier_index] = max(
                    self.barriers.get(barrier_index, 0), finish
                )

    def barrier(self, state: _EngineState) -> int:
        return self.barriers.get(state.cursor, 0)

    def clip_stall_target(self, state: _EngineState, target: int) -> int:
        # Break the stall at the next scheduled clock-anchored fetch so it is
        # issued at exactly its recorded start time.
        upcoming = [t for t in self.pending_by_time if state.time < t < target]
        if upcoming:
            return min(upcoming)
        return target

    def _pop_pending_fetch_for(self, block: BlockId, cursor: int) -> Optional[FetchDecision]:
        """Remove and return a queued positional fetch for ``block`` that is
        already eligible."""
        for queue in self.queues_by_disk.values():
            for idx, (start_pos, _deadline, decision) in enumerate(queue):
                if decision.block == block and start_pos <= cursor:
                    queue.pop(idx)
                    return decision
        return None

    def on_absent(self, state: _EngineState, block: BlockId) -> None:
        # The needed block is neither resident nor in flight, but its fetch may
        # still be queued behind a fetch that is waiting for a victim on
        # another disk (a cross-disk wait the per-disk queue discipline cannot
        # resolve).  Issue that fetch out of order — with its designated victim
        # if it is resident, with the classical furthest-next-use victim
        # otherwise — so the replay always makes progress; only a schedule that
        # never fetches the block at all is rejected.
        emergency = self._pop_pending_fetch_for(block, state.cursor)
        if emergency is not None:
            victim = emergency.victim
            if victim is not None and victim not in state.cache.resident:
                victim = _default_forced_victim(state)
            try:
                state.start_fetch(
                    FetchDecision(disk=emergency.disk, block=emergency.block, victim=victim)
                )
            except PolicyError as exc:
                raise InvalidScheduleError(
                    f"scheduled fetch for {block!r} could not be issued even out of order "
                    f"at t={state.time}: {exc}"
                ) from exc
            return

        raise InvalidScheduleError(
            f"request {state.cursor} needs block {block!r} at t={state.time} but the "
            "schedule neither has it resident nor in flight"
        )

    def finish(self, state: _EngineState) -> None:
        # Positional fetches still pending once every request has been served
        # can no longer influence stall or feasibility (they would fetch
        # blocks that are never needed again); they are dropped silently.
        # Clock-anchored fetches, by contrast, must all have been replayed at
        # their exact times.
        leftovers = sum(len(v) for v in self.pending_by_time.values())
        if leftovers:
            raise InvalidScheduleError(
                f"{leftovers} scheduled fetches were never reached during replay "
                "(start time lies beyond the end of the run)"
            )


# ---------------------------------------------------------------------------------
# policy-driven simulation
# ---------------------------------------------------------------------------------


def simulate(
    instance: ProblemInstance,
    policy: PrefetchPolicy,
    *,
    engine: str = "loop",
) -> SimulationResult:
    """Run ``policy`` over ``instance`` and return the resulting schedule and metrics.

    The engine consults the policy at every decision point.  If the policy
    leaves the processor unable to make progress (the next request's block is
    absent, not in flight, and its disk is idle), the engine issues a *forced
    demand fetch* with the classical furthest-next-use victim, so every policy
    produces a feasible schedule; such fetches are counted in
    ``metrics.num_demand_fetches``.

    ``engine`` selects the implementation: ``"loop"`` (default; historical
    alias ``"indexed"``) runs the event loop over the precomputed
    :class:`SequenceIndex`/:class:`EvictionHeap`; ``"scan"`` re-derives every
    query by scanning the sequence, exactly as the seed engine did;
    ``"vector"`` runs the numpy struct-of-arrays kernel of
    :mod:`repro.disksim.vector` (requires the ``[vector]`` extra, falls back
    to the loop for instances/policies it does not cover); ``"auto"`` is
    vector-when-possible, loop otherwise.  All engines produce identical
    schedules and metrics — the equivalence suites assert this.
    """
    result, _ = simulate_with_engine(instance, policy, engine=engine)
    return result


def simulate_with_engine(
    instance: ProblemInstance,
    policy: PrefetchPolicy,
    *,
    engine: str = "loop",
) -> Tuple[SimulationResult, str]:
    """Like :func:`simulate`, but also report which engine actually ran.

    Returns ``(result, actual_engine)`` where ``actual_engine`` is the
    canonical name of the engine that produced the result (``"loop"``,
    ``"scan"`` or ``"vector"``) — callers recording provenance (the sweep
    runner's :class:`~repro.analysis.results.RunRecord`) need the realised
    engine, not the requested one, because ``"vector"`` silently falls back
    to the loop for uncovered instances/policies and ``"auto"`` resolves at
    run time.  ``engine="vector"`` raises
    :class:`~repro.errors.ConfigurationError` when numpy is not importable;
    ``engine="auto"`` degrades to the loop silently.
    """
    engine = canonical_engine(engine)
    reason: Optional[str] = None
    if engine in ("vector", "auto"):
        from . import vector as _vector

        if engine == "vector":
            _vector.require_numpy()
        if _vector.numpy_available():
            result = _vector.simulate_vector(instance, policy)
            if result is not None:
                return result, "vector"
        reason = _vector.ineligibility_reason(instance, policy)
        engine = "loop"
    from .stepped import SteppedSimulation

    sim = SteppedSimulation.from_instance(instance, policy, engine=engine)
    result = sim.run_to_completion()
    if reason is not None:
        result = replace(result, engine_reason=reason)
    return result, engine


# ---------------------------------------------------------------------------------
# schedule replay (validation)
# ---------------------------------------------------------------------------------


def execute_schedule(
    instance: ProblemInstance,
    schedule: Schedule,
    *,
    capacity_override: Optional[int] = None,
    engine: str = "loop",
) -> SimulationResult:
    """Replay a clock-anchored schedule, validating feasibility and measuring stall.

    Raises :class:`InvalidScheduleError` if a fetch cannot be issued exactly
    at its recorded start time (busy disk, victim absent, block already
    resident, capacity exceeded) or if the processor would need a block that
    the schedule never fetches in time (strict mode: no forced fetches are
    injected).
    """
    by_time: Dict[int, List[FetchDecision]] = {}
    for op in schedule.fetches:
        by_time.setdefault(op.start_time, []).append(
            FetchDecision(disk=op.disk, block=op.block, victim=op.victim)
        )
    return _execute_with_replay(
        instance,
        by_time=by_time,
        positional=[],
        capacity_override=capacity_override,
        engine=engine,
    )


def execute_interval_schedule(
    instance: ProblemInstance,
    schedule: IntervalSchedule,
    *,
    capacity_override: Optional[int] = None,
    engine: str = "loop",
) -> SimulationResult:
    """Replay a position-anchored schedule (LP output), measuring its actual stall.

    A fetch with ``start_pos = i`` becomes eligible once ``i`` requests have
    been served — the paper's "the fetch starts after request ``r_i``"
    convention — and is issued at the first decision point from then on at
    which its disk is idle (consecutive intervals on one disk therefore
    execute back to back, exactly as the LP's stall accounting assumes).  The
    measured stall time is never larger, and can be smaller, than the LP
    objective ``sum x(I) (F - |I|)``: the LP charges the full residual fetch
    time of each interval whereas the processor only stalls when it actually
    has to wait.
    """
    positional = [
        (op.start_pos, op.end_pos, FetchDecision(disk=op.disk, block=op.block, victim=op.victim))
        for op in schedule.fetches
    ]
    return _execute_with_replay(
        instance,
        by_time={},
        positional=positional,
        capacity_override=capacity_override,
        engine=engine,
    )


def _execute_with_replay(
    instance: ProblemInstance,
    *,
    by_time: Dict[int, List[FetchDecision]],
    positional: List[Tuple[int, int, FetchDecision]],
    capacity_override: Optional[int],
    engine: str = "loop",
) -> SimulationResult:
    capacity = capacity_override if capacity_override is not None else instance.cache_size
    state = _EngineState(instance, capacity, engine=engine)
    _run_event_loop(state, _ReplayDriver(instance, by_time, positional))
    return state.result("replay")
