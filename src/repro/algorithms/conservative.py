"""The Conservative algorithm (Cao et al.), single-disk version.

Conservative performs exactly the block replacements of the optimal offline
paging algorithm MIN (Belady) — so it never makes the cache contents worse
than pure optimal caching — while initiating each fetch *at the earliest
point in time that is consistent with the chosen victim*, i.e. immediately
after the victim's last reference preceding the fetched block's miss.  Cao et
al. proved its elapsed-time approximation ratio is exactly 2; the paper uses
it as the other end of the spectrum that the Delay(d) family spans.

Implementation
--------------
The replacements are precomputed by replaying MIN over the sequence
(:mod:`repro.paging.belady`).  Each MIN fault yields a planned fetch
``(block, victim, earliest start position)``; fetches are issued in fault
order whenever the disk is idle and the cursor has reached the earliest start
position.

Conservative has no tunable knobs — MIN's replacement sequence *is* the
algorithm — so its registry entry (``conservative``) declares an empty
parameter schema and any ``conservative:key=value`` spec is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .._typing import BlockId
from ..disksim.executor import FetchDecision, PolicyView
from ..disksim.instance import ProblemInstance
from ..paging.base import run_paging
from ..paging.belady import BeladyMIN
from .base import PrefetchAlgorithm

__all__ = ["Conservative"]


@dataclass(frozen=True)
class _PlannedFetch:
    """One precomputed fetch: load ``block``, evict ``victim``, not before ``earliest_pos``."""

    block: BlockId
    victim: Optional[BlockId]
    earliest_pos: int
    miss_pos: int


class Conservative(PrefetchAlgorithm):
    """MIN's replacements, each fetch started as early as the victim choice allows."""

    name = "conservative"

    def __init__(self) -> None:
        super().__init__()
        self._plan: List[_PlannedFetch] = []
        self._next_plan_index = 0

    def on_reset(self, instance: ProblemInstance) -> None:
        result = run_paging(
            instance.sequence,
            instance.cache_size,
            BeladyMIN(),
            initial_cache=instance.initial_cache,
        )
        plan: List[_PlannedFetch] = []
        for miss_pos, block, victim in result.evictions:
            if victim is None:
                # Cold-start fault into a free slot: can start immediately.
                earliest = 0
            else:
                # The victim must stay in cache until its last reference before
                # the miss; the fetch may start once that reference is served.
                last_use = instance.sequence.previous_use_before(miss_pos, victim)
                earliest = last_use + 1
            plan.append(
                _PlannedFetch(block=block, victim=victim, earliest_pos=earliest, miss_pos=miss_pos)
            )
        # MIN faults are discovered in sequence order, so the plan is already
        # sorted by miss position; fetches are executed in this order.
        self._plan = plan
        self._next_plan_index = 0

    def decide(self, view: PolicyView) -> List[FetchDecision]:
        if not view.is_idle(0):
            return []
        if self._next_plan_index >= len(self._plan):
            return []
        planned = self._plan[self._next_plan_index]
        if view.cursor < planned.earliest_pos:
            return []
        # The planned block might already be resident (e.g. warm start quirks);
        # skip such entries defensively.
        if view.is_available(planned.block) or view.is_in_flight(planned.block):
            self._next_plan_index += 1
            return self.decide(view)
        self._next_plan_index += 1
        victim = planned.victim
        if victim is not None and victim not in view.resident:
            # The victim was already evicted by a forced demand fetch; fall back
            # to the furthest-next-use resident block to keep the run feasible.
            victim = view.furthest_resident()
        if victim is None and view.free_slots == 0:
            victim = view.furthest_resident()
        return self.single_disk_decision(planned.block, victim)
