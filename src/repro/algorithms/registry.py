"""Registry of prefetching algorithms by name.

The CLI, the sweep harness and the benchmarks refer to algorithms by short
string names ("aggressive", "delay:3", "combination", ...).  The registry
maps those names to factories so new algorithms are picked up everywhere by
registering them once.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import ConfigurationError
from .aggressive import Aggressive
from .base import PrefetchAlgorithm
from .combination import Combination
from .conservative import Conservative
from .delay import Delay
from .demand import DemandFetch
from .parallel_aggressive import ParallelAggressive, ParallelConservative

__all__ = ["available_algorithms", "make_algorithm", "register_algorithm"]

_FACTORIES: Dict[str, Callable[..., PrefetchAlgorithm]] = {
    "demand": DemandFetch,
    "aggressive": Aggressive,
    "conservative": Conservative,
    "combination": Combination,
    "parallel-aggressive": ParallelAggressive,
    "parallel-conservative": ParallelConservative,
}


def register_algorithm(name: str, factory: Callable[..., PrefetchAlgorithm]) -> None:
    """Register a new algorithm factory under ``name`` (overwrites silently)."""
    _FACTORIES[name] = factory


def available_algorithms() -> List[str]:
    """Sorted list of registered algorithm names (plus the ``delay:<d>`` form)."""
    return sorted(_FACTORIES) + ["delay:<d>"]


def make_algorithm(spec: str) -> PrefetchAlgorithm:
    """Instantiate an algorithm from its string spec.

    ``spec`` is either a registered name (e.g. ``"aggressive"``) or the
    parametrised form ``"delay:<d>"`` (e.g. ``"delay:3"``).
    """
    spec = spec.strip().lower()
    if spec.startswith("delay:"):
        try:
            d = int(spec.split(":", 1)[1])
        except ValueError as exc:
            raise ConfigurationError(f"invalid delay spec {spec!r}: expected delay:<int>") from exc
        return Delay(d)
    if spec == "delay":
        raise ConfigurationError("the delay algorithm needs a parameter, use 'delay:<d>'")
    try:
        factory = _FACTORIES[spec]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown algorithm {spec!r}; available: {', '.join(available_algorithms())}"
        ) from exc
    return factory()
