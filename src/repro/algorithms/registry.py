"""Typed algorithm-spec registry: strict parsing of algorithm descriptions.

The CLI, the sweep harness and the benchmarks refer to algorithms by spec
strings with the same grammar as workload specs
(``name[:key=value,...]`` — see :mod:`repro.specs`): ``aggressive``,
``delay:d=3``, ``demand:evict=lru``, ``combination:alt=demand:evict=lru``.
Every algorithm is declared as an :class:`AlgorithmDef` carrying a typed
parameter schema (:class:`~repro.specs.ParamSpec`), which makes parsing
strict by construction: unknown keys, duplicate keys and uncoercible values
raise :class:`~repro.errors.ConfigurationError` naming the spec and the
algorithm's valid parameters.  A spec string is the portable algorithm
identity the experiment runner pickles to worker processes and records in
run results.

``delay:<int>`` (e.g. ``delay:3``) is accepted as a documented legacy alias
for ``delay:d=<int>`` — it predates the typed grammar and appears in saved
experiment configurations.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..specs import ParamSpec, choice, coerce_params, split_spec
from .aggressive import TIEBREAKS, Aggressive
from .base import PrefetchAlgorithm
from .combination import Combination
from .conservative import Conservative
from .delay import Delay
from .demand import EVICTION_BACKENDS, DemandFetch
from .parallel_aggressive import DISK_ORDERS, ParallelAggressive, ParallelConservative

__all__ = [
    "AlgorithmDef",
    "ALGORITHM_REGISTRY",
    "available_algorithms",
    "get_algorithm",
    "make_algorithm",
    "parse_algorithm",
    "register_algorithm",
    "algorithm_catalog_rows",
    "format_algorithm_catalog",
]


@dataclass(frozen=True)
class AlgorithmDef:
    """A registered algorithm: name, summary, typed parameter schema, factory.

    The factory takes the coerced parameters as keyword arguments and
    returns a fresh :class:`PrefetchAlgorithm` (algorithms carry per-run
    state, so every :func:`make_algorithm` call constructs a new object).
    ``kind`` separates the paper's single-disk strategies from the
    parallel-disk baselines in the catalog.
    """

    name: str
    summary: str
    factory: Callable[..., PrefetchAlgorithm]
    params: Tuple[ParamSpec, ...] = ()
    kind: str = "single-disk"
    example: str = ""

    def __post_init__(self):
        names = [p.name for p in self.params]
        if len(names) != len(set(names)):
            raise ConfigurationError(f"algorithm {self.name!r} declares duplicate parameters")

    @property
    def param_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def coerce_params(self, raw, spec: str) -> Dict[str, object]:
        """Coerce raw string parameters against the schema, strictly."""
        return coerce_params(self.name, self.params, raw, spec, role="algorithm")

    def build(self, params: Dict[str, object], spec: str) -> PrefetchAlgorithm:
        """Invoke the factory, converting its validation errors to config errors."""
        try:
            return self.factory(**params)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"algorithm {self.name!r} in spec {spec!r}: {exc}"
            ) from exc


# ---------------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------------

ALGORITHM_REGISTRY: Dict[str, AlgorithmDef] = {}


def register_algorithm(
    name: str,
    factory: Callable[..., PrefetchAlgorithm],
    *,
    summary: str = "",
    params: Tuple[ParamSpec, ...] = (),
    kind: str = "single-disk",
    example: str = "",
    replace: bool = False,
) -> AlgorithmDef:
    """Register ``factory`` under ``name`` with an optional parameter schema.

    Duplicate names raise :class:`ConfigurationError` unless ``replace=True``
    is passed — silent overwrites used to let a plugin shadow a built-in by
    accident.
    """
    key = name.strip().lower()
    if not replace and key in ALGORITHM_REGISTRY:
        raise ConfigurationError(
            f"algorithm {key!r} is already registered; pass replace=True to override"
        )
    definition = AlgorithmDef(
        name=key,
        summary=summary or f"custom algorithm {key!r}",
        factory=factory,
        params=tuple(params),
        kind=kind,
        example=example or key,
    )
    ALGORITHM_REGISTRY[key] = definition
    return definition


def _def(name, summary, factory, params=(), kind="single-disk", example=""):
    register_algorithm(
        name, factory, summary=summary, params=tuple(params), kind=kind,
        example=example or name,
    )


_def(
    "demand",
    "No prefetching: fetch each block when needed, stall F per fault",
    DemandFetch,
    [
        ParamSpec(
            "evict", choice(*sorted(EVICTION_BACKENDS)), "min",
            "eviction backend consulted on each fault",
        ),
    ],
    kind="baseline",
    example="demand:evict=lru",
)

_def(
    "aggressive",
    "Start the next prefetch as soon as a safe victim exists (Cao et al.)",
    Aggressive,
    [
        ParamSpec(
            "tiebreak", choice(*sorted(TIEBREAKS)), "high",
            "direction among equally-furthest victims (high = engine native)",
        ),
    ],
    example="aggressive:tiebreak=low",
)

_def(
    "conservative",
    "MIN's replacements, each fetch started as early as the victim allows",
    Conservative,
    [],
    example="conservative",
)

_def(
    "delay",
    "Delay(d): judge the victim up to d requests ahead (the paper's family)",
    Delay,
    [
        ParamSpec("d", int, help="delay parameter; 0 = Aggressive, n = Conservative"),
    ],
    example="delay:d=3",
)

_def(
    "combination",
    "Run Delay(d0) or Aggressive, whichever has the smaller proven bound",
    Combination,
    [
        ParamSpec("d", int, None, "delay parameter override (default: Corollary 1 d0)"),
        ParamSpec("delay", str, None, "registry spec replacing the delay component"),
        ParamSpec("alt", str, None, "registry spec replacing the Aggressive component"),
    ],
    example="combination:alt=demand:evict=lru",
)

_def(
    "parallel-aggressive",
    "Aggressive prefetching independently on every idle disk (Kimbrel–Karlin)",
    ParallelAggressive,
    [
        ParamSpec("order", choice(*sorted(DISK_ORDERS)), "asc", "disk claim order per round"),
        ParamSpec(
            "tiebreak", choice(*sorted(TIEBREAKS)), "high",
            "victim tie-break direction (as in aggressive)",
        ),
    ],
    kind="parallel",
    example="parallel-aggressive:order=desc",
)

_def(
    "parallel-conservative",
    "MIN's replacements executed concurrently, one fetch queue per disk",
    ParallelConservative,
    [
        ParamSpec("order", choice(*sorted(DISK_ORDERS)), "asc", "disk claim order per round"),
    ],
    kind="parallel",
    example="parallel-conservative:order=desc",
)


# ---------------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------------

#: Legacy positional form ``delay:<int>`` — rewritten to ``delay:d=<int>``.
_LEGACY_DELAY = re.compile(r"^delay:(-?\d+)$")


def canonicalize_algorithm_spec(spec: str) -> str:
    """Normalise whitespace and rewrite documented legacy aliases."""
    cleaned = spec.strip()
    legacy = _LEGACY_DELAY.match(cleaned.lower())
    if legacy:
        return f"delay:d={legacy.group(1)}"
    return cleaned


def get_algorithm(name: str, spec: Optional[str] = None) -> AlgorithmDef:
    """The :class:`AlgorithmDef` registered under ``name`` (strict)."""
    definition = ALGORITHM_REGISTRY.get(name.strip().lower())
    if definition is None:
        shown = spec if spec is not None else name
        raise ConfigurationError(
            f"unknown algorithm {name!r} in spec {shown!r}; available: "
            f"{', '.join(sorted(ALGORITHM_REGISTRY))}"
        )
    return definition


def _parse(spec: str) -> Tuple[AlgorithmDef, Dict[str, object], str]:
    """Resolve ``spec`` to (definition, coerced params, canonical form)."""
    canonical = canonicalize_algorithm_spec(spec)
    name, raw = split_spec(canonical, role="algorithm")
    definition = get_algorithm(name, spec)
    return definition, definition.coerce_params(raw, canonical), canonical


def parse_algorithm(spec: str) -> Tuple[AlgorithmDef, Dict[str, object]]:
    """Resolve ``spec`` to its definition and coerced parameters (strictly)."""
    definition, params, _canonical = _parse(spec)
    return definition, params


def available_algorithms() -> List[str]:
    """Sorted list of registered algorithm names.

    Every listed name resolves through :func:`get_algorithm`; parametrised
    families no longer surface a non-instantiable ``delay:<d>`` pseudo-entry
    — their parameter schemas live on the catalog rows instead.
    """
    return sorted(ALGORITHM_REGISTRY)


def make_algorithm(spec: str) -> PrefetchAlgorithm:
    """Instantiate an algorithm from its spec string.

    ``spec`` is ``name[:key=value,...]`` against the registry's schemas,
    e.g. ``"aggressive"``, ``"delay:d=3"`` (legacy alias ``"delay:3"``),
    ``"demand:evict=lru"``.  The canonicalised spec is recorded on the
    returned object (``algorithm.spec``) as its portable identity.
    """
    definition, params, canonical = _parse(spec)
    algorithm = definition.build(params, canonical)
    algorithm.spec = canonical
    return algorithm


# ---------------------------------------------------------------------------------
# the catalog
# ---------------------------------------------------------------------------------


def algorithm_catalog_rows() -> List[Dict[str, str]]:
    """One row per registered algorithm: name, kind, parameters, example."""
    rows = []
    for name in sorted(ALGORITHM_REGISTRY):
        definition = ALGORITHM_REGISTRY[name]
        rendered = ", ".join(p.describe() for p in definition.params)
        rows.append(
            {
                "name": name,
                "kind": definition.kind,
                "summary": definition.summary,
                "params": rendered or "(none)",
                "example": definition.example,
            }
        )
    return rows


def format_algorithm_catalog(name: Optional[str] = None) -> str:
    """Human-readable catalog of algorithms for ``repro algorithms``.

    With ``name`` set, only that algorithm is shown (with per-parameter help
    lines); otherwise the full catalog is rendered.
    """
    if name is not None:
        definition = get_algorithm(name)
        lines = [f"{definition.name} ({definition.kind}) — {definition.summary}"]
        if definition.params:
            lines.append("  parameters:")
            for p in definition.params:
                default = "required" if p.required else f"default {p.default}"
                help_text = f" — {p.help}" if p.help else ""
                lines.append(f"    {p.name} ({p.type_name}, {default}){help_text}")
        else:
            lines.append("  parameters: (none)")
        lines.append(f"  example: {definition.example}")
        return "\n".join(lines)

    lines = [f"algorithm catalog ({len(ALGORITHM_REGISTRY)} algorithms)", ""]
    for row in algorithm_catalog_rows():
        lines.append(f"{row['name']} ({row['kind']}) — {row['summary']}")
        lines.append(f"  params:  {row['params']}")
        lines.append(f"  example: {row['example']}")
        lines.append("")
    lines.append(
        "spec grammar: name[:key=value,...] — values may contain '=', never ','"
    )
    lines.append("legacy alias: delay:<int> is accepted for delay:d=<int>")
    return "\n".join(lines)
