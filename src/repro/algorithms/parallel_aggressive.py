"""Parallel-disk Aggressive and Conservative baselines (Kimbrel & Karlin).

Kimbrel and Karlin analysed the natural multi-disk generalisations of the
two classical single-disk strategies and showed their elapsed-time
approximation ratios degrade to essentially ``D``.  They serve as the
prior-work baselines for the Section 3 experiments: the paper's LP-based
algorithm achieves optimal stall time (with a little extra memory), whereas
these simple strategies can be far from optimal as ``D`` grows.

* :class:`ParallelAggressive` — every idle disk starts a prefetch for the
  next request of a block that resides on it and is neither cached nor in
  flight, provided a safe victim exists; the victim is the resident block
  whose next reference is furthest in the future.

* :class:`ParallelConservative` — performs MIN's replacements (computed
  globally, exactly as in the single-disk Conservative) but lets each disk
  work through its own queue of planned fetches concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from .._typing import BlockId
from ..disksim.executor import FetchDecision, PolicyView
from ..disksim.instance import ProblemInstance
from ..paging.base import run_paging
from ..paging.belady import BeladyMIN
from .base import PrefetchAlgorithm

__all__ = ["ParallelAggressive", "ParallelConservative"]


class ParallelAggressive(PrefetchAlgorithm):
    """Aggressive prefetching independently on every idle disk."""

    name = "parallel-aggressive"

    def decide(self, view: PolicyView) -> List[FetchDecision]:
        decisions: List[FetchDecision] = []
        # Track blocks promised in this decision round so two disks never pick
        # the same victim and the fetched blocks are counted as "in flight".
        promised_victims: Set[BlockId] = set()
        promised_blocks: Set[BlockId] = set()
        free_slots = view.free_slots
        for disk in view.idle_disks():
            target = view.next_missing_position(on_disk=disk, exclude=promised_blocks)
            if target is None:
                continue
            block = view.instance.sequence[target]
            if free_slots > 0:
                decisions.append(FetchDecision(disk=disk, block=block, victim=None))
                promised_blocks.add(block)
                free_slots -= 1
                continue
            victim = view.furthest_resident(exclude=promised_victims)
            if victim is None or view.next_use(victim) <= target:
                continue
            decisions.append(FetchDecision(disk=disk, block=block, victim=victim))
            promised_victims.add(victim)
            promised_blocks.add(block)
        return decisions


@dataclass(frozen=True)
class _PlannedFetch:
    block: BlockId
    victim: Optional[BlockId]
    earliest_pos: int
    miss_pos: int


class ParallelConservative(PrefetchAlgorithm):
    """MIN's replacements executed as early as possible, one queue per disk."""

    name = "parallel-conservative"

    def __init__(self) -> None:
        super().__init__()
        self._queues: Dict[int, List[_PlannedFetch]] = {}
        self._next_index: Dict[int, int] = {}

    def on_reset(self, instance: ProblemInstance) -> None:
        result = run_paging(
            instance.sequence,
            instance.cache_size,
            BeladyMIN(),
            initial_cache=instance.initial_cache,
        )
        queues: Dict[int, List[_PlannedFetch]] = {d: [] for d in range(instance.num_disks)}
        for miss_pos, block, victim in result.evictions:
            if victim is None:
                earliest = 0
            else:
                earliest = instance.sequence.previous_use_before(miss_pos, victim) + 1
            queues[instance.disk_of(block)].append(
                _PlannedFetch(block=block, victim=victim, earliest_pos=earliest, miss_pos=miss_pos)
            )
        self._queues = queues
        self._next_index = {d: 0 for d in queues}

    def decide(self, view: PolicyView) -> List[FetchDecision]:
        decisions: List[FetchDecision] = []
        promised_victims: Set[BlockId] = set()
        free_slots = view.free_slots
        for disk in view.idle_disks():
            queue = self._queues.get(disk, [])
            index = self._next_index.get(disk, 0)
            # Skip entries that became moot (block already present).
            while index < len(queue) and (
                view.is_available(queue[index].block) or view.is_in_flight(queue[index].block)
            ):
                index += 1
            self._next_index[disk] = index
            if index >= len(queue):
                continue
            planned = queue[index]
            if view.cursor < planned.earliest_pos:
                continue
            victim = planned.victim
            if victim is not None and (victim not in view.resident or victim in promised_victims):
                victim = self._fallback_victim(view, promised_victims)
            if victim is None and free_slots <= 0:
                victim = self._fallback_victim(view, promised_victims)
                if victim is None:
                    continue
            self._next_index[disk] = index + 1
            decisions.append(FetchDecision(disk=disk, block=planned.block, victim=victim))
            if victim is None:
                free_slots -= 1
            else:
                promised_victims.add(victim)
        return decisions

    @staticmethod
    def _fallback_victim(view: PolicyView, promised: Set[BlockId]) -> Optional[BlockId]:
        return view.furthest_resident(exclude=promised)
