"""Parallel-disk Aggressive and Conservative baselines (Kimbrel & Karlin).

Kimbrel and Karlin analysed the natural multi-disk generalisations of the
two classical single-disk strategies and showed their elapsed-time
approximation ratios degrade to essentially ``D``.  They serve as the
prior-work baselines for the Section 3 experiments: the paper's LP-based
algorithm achieves optimal stall time (with a little extra memory), whereas
these simple strategies can be far from optimal as ``D`` grows.

* :class:`ParallelAggressive` — every idle disk starts a prefetch for the
  next request of a block that resides on it and is neither cached nor in
  flight, provided a safe victim exists; the victim is the resident block
  whose next reference is furthest in the future.

* :class:`ParallelConservative` — performs MIN's replacements (computed
  globally, exactly as in the single-disk Conservative) but lets each disk
  work through its own queue of planned fetches concurrently.

Within one decision round the disks claim victims and cache slots in turn,
so the *order* in which idle disks are visited is a real degree of freedom
the Kimbrel–Karlin analysis leaves open.  Both variants expose it as an
``order`` knob (``asc``/``desc`` disk ids; spec form
``parallel-aggressive:order=desc``), and ParallelAggressive additionally
takes the same victim ``tiebreak`` knob as the single-disk Aggressive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .._typing import BlockId, DiskId
from ..disksim.executor import FetchDecision, PolicyView
from ..disksim.instance import ProblemInstance
from ..paging.base import run_paging
from ..paging.belady import BeladyMIN
from .aggressive import TIEBREAKS
from .base import PrefetchAlgorithm

__all__ = ["ParallelAggressive", "ParallelConservative", "DISK_ORDERS"]

#: Valid disk-visit orders for one decision round.
DISK_ORDERS: FrozenSet[str] = frozenset({"asc", "desc"})


def _ordered_disks(view: PolicyView, order: str) -> Tuple[DiskId, ...]:
    """The idle disks in the configured claim order."""
    disks = view.idle_disks()
    return tuple(reversed(disks)) if order == "desc" else disks


class ParallelAggressive(PrefetchAlgorithm):
    """Aggressive prefetching independently on every idle disk."""

    name = "parallel-aggressive"

    def __init__(self, order: str = "asc", tiebreak: str = "high") -> None:
        super().__init__()
        self.order = self.validate_choice(order, DISK_ORDERS, "order")
        self.tiebreak = self.validate_choice(tiebreak, TIEBREAKS, "tiebreak")
        knobs = [
            f"{knob}={value}"
            for knob, value, default in (
                ("order", self.order, "asc"),
                ("tiebreak", self.tiebreak, "high"),
            )
            if value != default
        ]
        if knobs:
            self.name = f"parallel-aggressive[{','.join(knobs)}]"

    def supports_streaming(self, instance: ProblemInstance) -> bool:
        """Stateless per-decision rule over the view: streaming-exact."""
        return True

    def decide(self, view: PolicyView) -> List[FetchDecision]:
        decisions: List[FetchDecision] = []
        # Track blocks promised in this decision round so two disks never pick
        # the same victim and the fetched blocks are counted as "in flight".
        promised_victims: Set[BlockId] = set()
        promised_blocks: Set[BlockId] = set()
        free_slots = view.free_slots
        for disk in _ordered_disks(view, self.order):
            target = view.next_missing_position(on_disk=disk, exclude=promised_blocks)
            if target is None:
                continue
            block = view.instance.sequence[target]
            if free_slots > 0:
                decisions.append(FetchDecision(disk=disk, block=block, victim=None))
                promised_blocks.add(block)
                free_slots -= 1
                continue
            victim = self.tie_broken_victim(
                view, self.tiebreak, exclude=frozenset(promised_victims)
            )
            if victim is None or view.next_use(victim) <= target:
                continue
            decisions.append(FetchDecision(disk=disk, block=block, victim=victim))
            promised_victims.add(victim)
            promised_blocks.add(block)
        return decisions


@dataclass(frozen=True)
class _PlannedFetch:
    block: BlockId
    victim: Optional[BlockId]
    earliest_pos: int
    miss_pos: int


class ParallelConservative(PrefetchAlgorithm):
    """MIN's replacements executed as early as possible, one queue per disk."""

    name = "parallel-conservative"

    def __init__(self, order: str = "asc") -> None:
        super().__init__()
        self.order = self.validate_choice(order, DISK_ORDERS, "order")
        if self.order != "asc":
            self.name = f"parallel-conservative[order={self.order}]"
        self._queues: Dict[int, List[_PlannedFetch]] = {}
        self._next_index: Dict[int, int] = {}

    def on_reset(self, instance: ProblemInstance) -> None:
        result = run_paging(
            instance.sequence,
            instance.cache_size,
            BeladyMIN(),
            initial_cache=instance.initial_cache,
        )
        queues: Dict[int, List[_PlannedFetch]] = {d: [] for d in range(instance.num_disks)}
        for miss_pos, block, victim in result.evictions:
            if victim is None:
                earliest = 0
            else:
                earliest = instance.sequence.previous_use_before(miss_pos, victim) + 1
            queues[instance.disk_of(block)].append(
                _PlannedFetch(block=block, victim=victim, earliest_pos=earliest, miss_pos=miss_pos)
            )
        self._queues = queues
        self._next_index = {d: 0 for d in queues}

    def decide(self, view: PolicyView) -> List[FetchDecision]:
        decisions: List[FetchDecision] = []
        promised_victims: Set[BlockId] = set()
        free_slots = view.free_slots
        for disk in _ordered_disks(view, self.order):
            queue = self._queues.get(disk, [])
            index = self._next_index.get(disk, 0)
            # Skip entries that became moot (block already present).
            while index < len(queue) and (
                view.is_available(queue[index].block) or view.is_in_flight(queue[index].block)
            ):
                index += 1
            self._next_index[disk] = index
            if index >= len(queue):
                continue
            planned = queue[index]
            if view.cursor < planned.earliest_pos:
                continue
            victim = planned.victim
            if victim is not None and (victim not in view.resident or victim in promised_victims):
                victim = self._fallback_victim(view, promised_victims)
            if victim is None and free_slots <= 0:
                victim = self._fallback_victim(view, promised_victims)
                if victim is None:
                    continue
            self._next_index[disk] = index + 1
            decisions.append(FetchDecision(disk=disk, block=planned.block, victim=victim))
            if victim is None:
                free_slots -= 1
            else:
                promised_victims.add(victim)
        return decisions

    @staticmethod
    def _fallback_victim(view: PolicyView, promised: Set[BlockId]) -> Optional[BlockId]:
        return view.furthest_resident(exclude=promised)
