"""Demand fetching: the no-prefetching baseline.

The processor fetches a block only at the moment it is needed, always paying
the full fetch time ``F`` in stall (after a cold or capacity miss).  The
victim is chosen by a pluggable classical eviction policy (MIN by default, so
the baseline is "optimal caching, no prefetching").  The integrated
algorithms of the paper are motivated precisely by how much of this stall can
be hidden by overlapping fetches with computation.
"""

from __future__ import annotations

from typing import List, Optional

from ..disksim.executor import FetchDecision, PolicyView
from ..disksim.instance import ProblemInstance
from ..paging.base import EvictionPolicy
from ..paging.belady import BeladyMIN
from .base import PrefetchAlgorithm

__all__ = ["DemandFetch"]


class DemandFetch(PrefetchAlgorithm):
    """Fetch a block only when the processor already needs it.

    Parameters
    ----------
    eviction_policy:
        Classical eviction policy consulted on each miss; defaults to Belady's
        MIN so the baseline isolates the effect of (not) prefetching.
    """

    def __init__(self, eviction_policy: Optional[EvictionPolicy] = None) -> None:
        super().__init__()
        self._policy = eviction_policy or BeladyMIN()
        self.name = f"demand[{self._policy.name}]"

    def on_reset(self, instance: ProblemInstance) -> None:
        self._policy.reset(instance.sequence, instance.cache_size)

    def decide(self, view: PolicyView) -> List[FetchDecision]:
        cursor = view.cursor
        block = view.instance.sequence[cursor]
        if view.is_available(block) or view.is_in_flight(block):
            return []
        disk = view.instance.disk_of(block)
        if not view.is_idle(disk):
            return []
        victim = None
        if view.free_slots == 0:
            victim = self._policy.choose_victim(cursor, set(view.resident), block)
        return [FetchDecision(disk=disk, block=block, victim=victim)]
