"""Demand fetching: the no-prefetching baseline.

The processor fetches a block only at the moment it is needed, always paying
the full fetch time ``F`` in stall (after a cold or capacity miss).  The
victim is chosen by a pluggable classical eviction policy (MIN by default, so
the baseline is "optimal caching, no prefetching").  The integrated
algorithms of the paper are motivated precisely by how much of this stall can
be hidden by overlapping fetches with computation.

The eviction backend is spec-addressable: :data:`EVICTION_BACKENDS` maps
``min | lru | fifo`` to the :mod:`repro.paging` policies, so
``demand:evict=lru`` runs the *online* baseline (LRU caching, no
prefetching) next to the offline-optimal one — the comparison Cao et al.
originally motivated the integrated model with.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..disksim.executor import FetchDecision, PolicyView
from ..disksim.instance import ProblemInstance
from ..paging.base import EvictionPolicy
from ..paging.belady import BeladyMIN
from ..paging.fifo import FIFO
from ..paging.lru import LRU
from .base import PrefetchAlgorithm

__all__ = ["DemandFetch", "EVICTION_BACKENDS", "make_eviction_policy"]

#: Spec-addressable eviction backends for ``demand:evict=...``.
EVICTION_BACKENDS: Dict[str, Callable[[], EvictionPolicy]] = {
    "min": BeladyMIN,
    "lru": LRU,
    "fifo": FIFO,
}


def make_eviction_policy(evict: str) -> EvictionPolicy:
    """Instantiate the eviction backend registered under ``evict``."""
    name = str(evict).strip().lower()
    if name not in EVICTION_BACKENDS:
        raise ValueError(
            f"evict must be one of {', '.join(sorted(EVICTION_BACKENDS))}, got {evict!r}"
        )
    return EVICTION_BACKENDS[name]()


class DemandFetch(PrefetchAlgorithm):
    """Fetch a block only when the processor already needs it.

    Parameters
    ----------
    eviction_policy:
        Classical eviction policy consulted on each miss; defaults to Belady's
        MIN so the baseline isolates the effect of (not) prefetching.
    evict:
        Alternative to ``eviction_policy``: the name of a registered backend
        (``min``/``lru``/``fifo``), the form the algorithm registry uses.
    """

    def __init__(
        self,
        eviction_policy: Optional[EvictionPolicy] = None,
        *,
        evict: Optional[str] = None,
    ) -> None:
        super().__init__()
        if eviction_policy is not None and evict is not None:
            raise ValueError("pass either eviction_policy or evict, not both")
        if evict is not None:
            eviction_policy = make_eviction_policy(evict)
        self._policy = eviction_policy or BeladyMIN()
        self.name = f"demand[{self._policy.name}]"
        self._fed = 0
        self._miss_at = -1

    def on_reset(self, instance: ProblemInstance) -> None:
        self._policy.reset(instance.sequence, instance.cache_size)
        self._fed = 0
        self._miss_at = -1

    def supports_streaming(self, instance: ProblemInstance) -> bool:
        """Streaming-exact iff the eviction backend is future-blind.

        LRU and FIFO derive victims from the access history alone; Belady's
        MIN reads the future of the sequence, so ``demand`` / ``demand:evict=min``
        must wait for the stream to close (deferred mode).
        """
        return isinstance(self._policy, (LRU, FIFO))

    def _feed_accesses(self, view: PolicyView) -> None:
        """Report served positions to the policy's ``on_access`` hook.

        ``run_paging`` drives stateful policies (LRU, FIFO) access by access;
        here the engine owns the serve loop, so the positions the cursor has
        passed since the last decision are replayed as hits (their misses
        were reported when the fetch was issued in :meth:`decide`).  The
        cursor only advances by serving, and ``decide`` runs before every
        serve, so no position is skipped.
        """
        sequence = view.instance.sequence
        while self._fed < view.cursor:
            if self._fed != self._miss_at:
                self._policy.on_access(self._fed, sequence[self._fed], True)
            self._fed += 1

    def decide(self, view: PolicyView) -> List[FetchDecision]:
        self._feed_accesses(view)
        cursor = view.cursor
        block = view.instance.sequence[cursor]
        if view.is_available(block) or view.is_in_flight(block):
            return []
        disk = view.instance.disk_of(block)
        if not view.is_idle(disk):
            return []
        if cursor != self._miss_at:
            # Mirror run_paging's order: the fault is reported before the
            # victim is chosen, exactly once per faulting position.
            self._policy.on_access(cursor, block, False)
            self._miss_at = cursor
        victim = None
        if view.free_slots == 0:
            victim = self._policy.choose_victim(cursor, set(view.resident), block)
        return [FetchDecision(disk=disk, block=block, victim=victim)]
