"""The Combination algorithm (Corollary 2 of the paper).

Combination inspects the instance parameters and runs whichever of the two
strategies has the smaller *proven* bound:

* ``Delay(d0)`` with the Corollary 1 parameter ``d0 = ceil((sqrt(3)-1)F/2)``
  whose ratio tends to √3, or
* the standard Aggressive strategy, whose Theorem 1 ratio
  ``1 + F/(k + ceil(k/F) - 1)`` is better whenever the cache is large relative
  to the fetch time.

The resulting approximation guarantee is
``min{1 + F/(k + ceil(k/F) - 1), ratio(Delay(d0))}`` — strictly better than
both Aggressive and Conservative over the whole parameter range.

Both components are configurable (``combination:d=3``,
``combination:alt=demand:evict=lru``): ``d`` overrides the Corollary 1 delay
parameter and ``delay``/``alt`` replace the branch algorithms by registry
spec (any comma-free spec string).  The bound comparison always uses the
Theorem 3 value of the effective ``d`` against the Theorem 1 value, so a
custom component changes what *runs*, not which side is *selected* — the
selection rule is the paper's.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.bounds import aggressive_bound_refined, best_delay_parameter, delay_bound
from ..disksim.executor import FetchDecision, PolicyView
from ..disksim.instance import ProblemInstance
from .aggressive import Aggressive
from .base import PrefetchAlgorithm
from .delay import Delay

__all__ = ["Combination"]


class Combination(PrefetchAlgorithm):
    """Run Delay(d0) or Aggressive, whichever has the smaller proven bound.

    Parameters
    ----------
    d:
        Override of the Corollary 1 delay parameter (default: ``d0``
        computed from the instance's fetch time at reset).
    delay:
        Registry spec replacing the delay-side component (default:
        ``Delay(d)``).
    alt:
        Registry spec replacing the Aggressive-side component (default:
        ``Aggressive()``).
    """

    name = "combination"

    def __init__(
        self,
        d: Optional[int] = None,
        delay: Optional[str] = None,
        alt: Optional[str] = None,
    ) -> None:
        super().__init__()
        if d is not None and d < 0:
            raise ValueError(f"Combination delay parameter d must be non-negative, got {d}")
        self.d = d
        self.delay_spec = delay
        self.alt_spec = alt
        self._delegate: Optional[PrefetchAlgorithm] = None
        # Validate component specs eagerly (building is cheap and recurses
        # into nested combinations) so a bad spec fails at construction, not
        # mid-sweep inside whichever instance happens to select that branch.
        for nested in (delay, alt):
            if nested is not None:
                from .registry import make_algorithm

                make_algorithm(nested)

    @staticmethod
    def select_for(instance: ProblemInstance) -> PrefetchAlgorithm:
        """The concrete strategy the default Combination uses on ``instance``."""
        return Combination()._select(instance)

    def _select(self, instance: ProblemInstance) -> PrefetchAlgorithm:
        """The component this (possibly customised) Combination runs."""
        k, fetch_time = instance.cache_size, instance.fetch_time
        d_effective = self.d if self.d is not None else best_delay_parameter(fetch_time)
        if delay_bound(d_effective, fetch_time) < aggressive_bound_refined(k, fetch_time):
            if self.delay_spec is not None:
                from .registry import make_algorithm

                return make_algorithm(self.delay_spec)
            return Delay(d_effective)
        if self.alt_spec is not None:
            from .registry import make_algorithm

            return make_algorithm(self.alt_spec)
        return Aggressive()

    @property
    def chosen(self) -> Optional[PrefetchAlgorithm]:
        """The delegate chosen for the current run (None before ``reset``)."""
        return self._delegate

    def supports_streaming(self, instance: ProblemInstance) -> bool:
        """Streams iff the component selected for ``instance`` streams.

        The selection rule reads only ``cache_size`` and ``fetch_time``,
        which are fixed for a session, so the answer cannot change as
        requests arrive.
        """
        return self._select(instance).supports_streaming(instance)

    def on_reset(self, instance: ProblemInstance) -> None:
        self._delegate = self._select(instance)
        self._delegate.reset(instance)
        self.name = f"combination[{self._delegate.name}]"

    def decide(self, view: PolicyView) -> List[FetchDecision]:
        assert self._delegate is not None, "reset() must run before decide()"
        return self._delegate.decide(view)
