"""The Combination algorithm (Corollary 2 of the paper).

Combination inspects the instance parameters and runs whichever of the two
strategies has the smaller *proven* bound:

* ``Delay(d0)`` with the Corollary 1 parameter ``d0 = ceil((sqrt(3)-1)F/2)``
  whose ratio tends to √3, or
* the standard Aggressive strategy, whose Theorem 1 ratio
  ``1 + F/(k + ceil(k/F) - 1)`` is better whenever the cache is large relative
  to the fetch time.

The resulting approximation guarantee is
``min{1 + F/(k + ceil(k/F) - 1), ratio(Delay(d0))}`` — strictly better than
both Aggressive and Conservative over the whole parameter range.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.bounds import aggressive_bound_refined, best_delay_parameter, delay_best_bound
from ..disksim.executor import FetchDecision, PolicyView
from ..disksim.instance import ProblemInstance
from .aggressive import Aggressive
from .base import PrefetchAlgorithm
from .delay import Delay

__all__ = ["Combination"]


class Combination(PrefetchAlgorithm):
    """Run Delay(d0) or Aggressive, whichever has the smaller proven bound."""

    name = "combination"

    def __init__(self) -> None:
        super().__init__()
        self._delegate: Optional[PrefetchAlgorithm] = None

    @staticmethod
    def select_for(instance: ProblemInstance) -> PrefetchAlgorithm:
        """The concrete strategy Combination uses on ``instance``."""
        k, fetch_time = instance.cache_size, instance.fetch_time
        if delay_best_bound(fetch_time) < aggressive_bound_refined(k, fetch_time):
            return Delay(best_delay_parameter(fetch_time))
        return Aggressive()

    @property
    def chosen(self) -> Optional[PrefetchAlgorithm]:
        """The delegate chosen for the current run (None before ``reset``)."""
        return self._delegate

    def on_reset(self, instance: ProblemInstance) -> None:
        self._delegate = self.select_for(instance)
        self._delegate.reset(instance)
        self.name = f"combination[{self._delegate.name}]"

    def decide(self, view: PolicyView) -> List[FetchDecision]:
        assert self._delegate is not None, "reset() must run before decide()"
        return self._delegate.decide(view)
