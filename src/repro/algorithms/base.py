"""Base class and shared helpers for integrated prefetching/caching algorithms.

Every algorithm in this package implements the
:class:`~repro.disksim.executor.PrefetchPolicy` protocol: the simulation
engine calls ``decide`` at each decision point and the algorithm returns the
fetches to initiate.  :class:`PrefetchAlgorithm` provides the boilerplate
(instance bookkeeping, a ``run`` convenience wrapper, deterministic victim
selection helpers) so that the individual algorithms read close to their
description in the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, List, Optional

from .._typing import INFINITY, BlockId
from ..disksim.executor import FetchDecision, PolicyView, SimulationResult, simulate
from ..disksim.instance import ProblemInstance

__all__ = ["PrefetchAlgorithm"]


class PrefetchAlgorithm(ABC):
    """Common base class of all prefetching/caching algorithms.

    Subclasses implement :meth:`decide`; :meth:`on_reset` is an optional hook
    for per-run precomputation (Conservative uses it to replay MIN).
    """

    #: Human-readable algorithm name used in result tables.
    name: str = "prefetch-algorithm"

    #: The registry spec string this object was built from (set by
    #: :func:`repro.algorithms.registry.make_algorithm`); ``None`` for
    #: directly constructed objects.  Run records carry it as the portable
    #: algorithm identity.
    spec: Optional[str] = None

    def __init__(self) -> None:
        self._instance: Optional[ProblemInstance] = None

    # -- PrefetchPolicy protocol -----------------------------------------------------

    def reset(self, instance: ProblemInstance) -> None:
        """Store the instance and run the subclass precomputation hook."""
        self._instance = instance
        self.on_reset(instance)

    def on_reset(self, instance: ProblemInstance) -> None:
        """Per-run precomputation hook (default: nothing)."""

    @abstractmethod
    def decide(self, view: PolicyView) -> List[FetchDecision]:
        """Fetches to initiate at this decision point."""

    def supports_streaming(self, instance: ProblemInstance) -> bool:
        """Whether ``decide`` is exact under bounded lookahead (open streams).

        The stepped kernel (:mod:`repro.disksim.stepped`) runs a streaming
        algorithm while requests are still arriving, guaranteeing its
        decisions equal the eventual batch run's.  That requires ``decide``
        to consult only the policy view — no sequence-derived precomputation
        at reset — and to tolerate the view's horizon guards.  The default is
        ``False``: such algorithms (Conservative's MIN replay, Belady-backed
        demand fetching) run in deferred mode, executing only once the
        stream closes.  ``instance`` lets composite algorithms answer per
        instance (Combination delegates to whichever component its selection
        rule picks).
        """
        return False

    # -- conveniences ------------------------------------------------------------------

    @property
    def instance(self) -> ProblemInstance:
        """The instance of the current run (valid after ``reset``)."""
        if self._instance is None:
            raise RuntimeError(f"{self.name}: reset() has not been called")
        return self._instance

    def run(self, instance: ProblemInstance) -> SimulationResult:
        """Simulate this algorithm over ``instance`` (wrapper around :func:`simulate`)."""
        return simulate(instance, self)

    # -- shared building blocks --------------------------------------------------------

    @staticmethod
    def furthest_next_use_victim(
        view: PolicyView,
        *,
        measured_from: Optional[int] = None,
        candidates: Optional[FrozenSet[BlockId]] = None,
    ) -> Optional[BlockId]:
        """The resident block whose next use (from ``measured_from``) is furthest away."""
        return view.furthest_resident(from_position=measured_from, candidates=candidates)

    @staticmethod
    def tie_broken_victim(
        view: PolicyView,
        tiebreak: str,
        *,
        measured_from: Optional[int] = None,
        exclude: FrozenSet[BlockId] = frozenset(),
    ) -> Optional[BlockId]:
        """Furthest-next-use victim under the named tie-break direction.

        ``"high"`` is the engine's native ordering (largest block string wins
        among equally-furthest residents) and costs one heap peek;
        ``"low"`` prefers the smallest block string and re-scans only the
        residents tied at the winning distance.
        """
        best = view.furthest_resident(from_position=measured_from, exclude=exclude)
        if best is None or tiebreak == "high":
            return best
        start = view.cursor if measured_from is None else measured_from
        distance = view.next_use(best, from_position=start)
        tied = [
            block
            for block in view.resident
            if block not in exclude
            and view.next_use(block, from_position=start) == distance
        ]
        return min(tied, key=str)

    @staticmethod
    def validate_choice(value: str, options: FrozenSet[str], knob: str) -> str:
        """Validate a knob value against its options (for direct construction)."""
        lowered = str(value).strip().lower()
        if lowered not in options:
            raise ValueError(
                f"{knob} must be one of {', '.join(sorted(options))}, got {value!r}"
            )
        return lowered

    @staticmethod
    def can_evict_for(view: PolicyView, target_position: int, victim: BlockId) -> bool:
        """Whether ``victim`` is not requested again before ``target_position``.

        This is the pre-condition all the paper's algorithms place on a fetch:
        the evicted block must not be referenced before the fetched block.
        """
        return view.next_use(victim) > target_position

    @staticmethod
    def single_disk_decision(block: BlockId, victim: Optional[BlockId]) -> List[FetchDecision]:
        """Wrap a single-disk fetch decision (disk 0) in the list the engine expects."""
        return [FetchDecision(disk=0, block=block, victim=victim)]

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"{type(self).__name__}(name={self.name!r})"
