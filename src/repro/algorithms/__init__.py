"""Integrated prefetching/caching algorithms.

Single disk (Section 2 of the paper): :class:`Aggressive`,
:class:`Conservative`, the new :class:`Delay` family and :class:`Combination`.
Parallel disks: :class:`ParallelAggressive` and :class:`ParallelConservative`
(the Kimbrel–Karlin style baselines the Section 3 LP algorithm is compared
against).  :class:`DemandFetch` is the no-prefetching baseline.
"""

from .aggressive import Aggressive
from .base import PrefetchAlgorithm
from .combination import Combination
from .conservative import Conservative
from .delay import Delay
from .demand import EVICTION_BACKENDS, DemandFetch
from .parallel_aggressive import ParallelAggressive, ParallelConservative
from .registry import (
    ALGORITHM_REGISTRY,
    AlgorithmDef,
    algorithm_catalog_rows,
    available_algorithms,
    format_algorithm_catalog,
    get_algorithm,
    make_algorithm,
    parse_algorithm,
    register_algorithm,
)

__all__ = [
    "PrefetchAlgorithm",
    "Aggressive",
    "Conservative",
    "Delay",
    "Combination",
    "DemandFetch",
    "EVICTION_BACKENDS",
    "ParallelAggressive",
    "ParallelConservative",
    "ALGORITHM_REGISTRY",
    "AlgorithmDef",
    "algorithm_catalog_rows",
    "available_algorithms",
    "format_algorithm_catalog",
    "get_algorithm",
    "make_algorithm",
    "parse_algorithm",
    "register_algorithm",
]
