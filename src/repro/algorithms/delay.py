"""The Delay(d) family of algorithms — the paper's new single-disk strategies.

Quoting Section 2 of the paper:

    "Algorithm Delay(d).  Let r_i be the next request to be served and r_j,
     j >= i, the next reference where the requested block is missing in
     cache.  If all blocks in cache are requested before r_j, serve r_i
     without initiating a fetch.  Otherwise let d' = min{d, j - i} and let b
     be the block whose next request is furthest in the future after request
     r_{i+d'-1}.  Initiate a fetch for r_j at the earliest point in time
     after r_{i-1} such that the evicted block b is not requested again
     before r_j."

``Delay(0)`` is exactly the Aggressive strategy; ``Delay(n)`` (with ``n`` the
sequence length) is the Conservative strategy.  Theorem 3 bounds the
approximation ratio of Delay(d) by
``max{(d+F)/F, (d+2F)/(d+F), 3(d+F)/(d+2F)}``, and Corollary 1 shows the best
choice ``d0 = ceil((sqrt(3)-1) F / 2)`` drives the ratio to sqrt(3) ≈ 1.73 —
better than both classical algorithms for F substantially smaller than k.

Implementation notes
--------------------
The algorithm is evaluated afresh at every decision point: with the cursor at
position ``i`` (0-based) it determines the next missing position ``j``, the
victim ``b`` (the resident block whose next use measured from position
``min(i + d, j)`` is furthest), and issues the fetch as soon as ``b`` has no
remaining reference before ``j`` — which is precisely "the earliest point in
time such that the evicted block is not requested again before r_j".  While
such a reference remains, the algorithm simply keeps serving requests, which
realises the delay.

The registry spec form is ``delay:d=<int>`` (``delay:<int>`` is a documented
legacy alias); ``d`` is required because the paper's family is parametrised
by definition — ``repro algorithms delay`` shows the schema.
"""

from __future__ import annotations

from typing import List

from ..disksim.executor import FetchDecision, PolicyView
from .base import PrefetchAlgorithm

__all__ = ["Delay"]


class Delay(PrefetchAlgorithm):
    """Delay the victim decision by up to ``d`` requests before fetching.

    Parameters
    ----------
    d:
        Non-negative delay parameter.  ``d = 0`` reproduces Aggressive;
        ``d >= n`` reproduces Conservative's behaviour on every sequence of
        length ``n``.
    """

    def __init__(self, d: int) -> None:
        super().__init__()
        if d < 0:
            raise ValueError(f"Delay parameter d must be non-negative, got {d}")
        self.d = d
        self.name = f"delay({d})"

    def supports_streaming(self, instance) -> bool:
        """Stateless per-decision rule over the view: streaming-exact."""
        return True

    def decide(self, view: PolicyView) -> List[FetchDecision]:
        if not view.is_idle(0):
            return []
        target = view.next_missing_position()
        if target is None:
            return []
        sequence = view.instance.sequence
        if view.free_slots > 0:
            return self.single_disk_decision(sequence[target], None)

        cursor = view.cursor
        # d' = min{d, j - i}; the victim is judged from position i + d' (the
        # reference point "after request r_{i+d'-1}" in 1-based paper terms).
        effective_delay = min(self.d, target - cursor)
        judge_from = cursor + effective_delay
        victim = view.furthest_resident(from_position=judge_from)
        if victim is None:
            return []
        if view.next_use(victim, from_position=judge_from) <= target:
            # Every cached block is requested (at or after the judging point)
            # before the missing block: serve without initiating a fetch.
            return []
        if view.next_use(victim) <= target:
            # The chosen victim still has a reference between the cursor and
            # the miss: wait (keep serving) until that reference has been
            # served, i.e. start the fetch at the earliest consistent time.
            return []
        return self.single_disk_decision(sequence[target], victim)
