"""The Aggressive algorithm (Cao et al.), single-disk version.

Aggressive starts prefetch operations as early as possible:

    "Whenever the algorithm is not prefetching a block, it initiates a
     prefetch for the next missing block in the sequence provided it can
     evict a block from cache that is not requested before the block to be
     fetched.  In this case it evicts the block whose next reference is
     furthest in the future."

Theorem 1 of the paper shows its elapsed-time approximation ratio is at most
``min{1 + F/(k + ceil(k/F) - 1), 2}`` (improving the ``min{1 + F/k, 2}``
bound of Cao et al.), and Theorem 2 shows this is essentially tight.  The
closed forms live in :mod:`repro.core.bounds`; this module is the executable
algorithm whose measured ratios the E1/E2 experiments compare against those
bounds.

The paper's eviction rule leaves the choice among *equally* furthest blocks
open; the engine's native order (and the historical behaviour of this
reproduction) breaks ties towards the largest block string.  The
``tiebreak`` knob (``aggressive:tiebreak=low`` in spec form) flips that
direction, opening a cheap sensitivity axis for the experiments without
changing the proven bounds — any tie-break satisfies the Theorem 1 analysis.
"""

from __future__ import annotations

from typing import FrozenSet, List

from ..disksim.executor import FetchDecision, PolicyView
from .base import PrefetchAlgorithm

__all__ = ["Aggressive", "TIEBREAKS"]

#: Valid victim tie-break directions: ``high`` (largest block string among
#: the equally furthest, the engine's native order) or ``low`` (smallest).
TIEBREAKS: FrozenSet[str] = frozenset({"high", "low"})


class Aggressive(PrefetchAlgorithm):
    """Start the next prefetch as soon as a safe victim exists (single disk)."""

    name = "aggressive"

    def __init__(self, tiebreak: str = "high") -> None:
        super().__init__()
        self.tiebreak = self.validate_choice(tiebreak, TIEBREAKS, "tiebreak")
        if self.tiebreak != "high":
            self.name = f"aggressive[tiebreak={self.tiebreak}]"

    def supports_streaming(self, instance) -> bool:
        """Stateless per-decision rule over the view: streaming-exact."""
        return True

    def decide(self, view: PolicyView) -> List[FetchDecision]:
        if not view.is_idle(0):
            return []
        target = view.next_missing_position()
        if target is None:
            return []
        if view.free_slots > 0:
            # A free cache slot (cold start, or the extra-memory experiments):
            # fetching into it is always safe and never worse than evicting.
            return self.single_disk_decision(view.instance.sequence[target], None)
        victim = self.tie_broken_victim(view, self.tiebreak)
        if victim is None or not self.can_evict_for(view, target, victim):
            # Every cached block is requested before the next missing block;
            # Aggressive waits (serving requests) until that changes.
            return []
        return self.single_disk_decision(view.instance.sequence[target], victim)
