"""The Aggressive algorithm (Cao et al.), single-disk version.

Aggressive starts prefetch operations as early as possible:

    "Whenever the algorithm is not prefetching a block, it initiates a
     prefetch for the next missing block in the sequence provided it can
     evict a block from cache that is not requested before the block to be
     fetched.  In this case it evicts the block whose next reference is
     furthest in the future."

Theorem 1 of the paper shows its elapsed-time approximation ratio is at most
``min{1 + F/(k + ceil(k/F) - 1), 2}`` (improving the ``min{1 + F/k, 2}``
bound of Cao et al.), and Theorem 2 shows this is essentially tight.  The
closed forms live in :mod:`repro.core.bounds`; this module is the executable
algorithm whose measured ratios the E1/E2 experiments compare against those
bounds.
"""

from __future__ import annotations

from typing import List

from ..disksim.executor import FetchDecision, PolicyView
from .base import PrefetchAlgorithm

__all__ = ["Aggressive"]


class Aggressive(PrefetchAlgorithm):
    """Start the next prefetch as soon as a safe victim exists (single disk)."""

    name = "aggressive"

    def decide(self, view: PolicyView) -> List[FetchDecision]:
        if not view.is_idle(0):
            return []
        target = view.next_missing_position()
        if target is None:
            return []
        if view.free_slots > 0:
            # A free cache slot (cold start, or the extra-memory experiments):
            # fetching into it is always safe and never worse than evicting.
            return self.single_disk_decision(view.instance.sequence[target], None)
        victim = view.evictable_for(target)
        if victim is None:
            # Every cached block is requested before the next missing block;
            # Aggressive waits (serving requests) until that changes.
            return []
        return self.single_disk_decision(view.instance.sequence[target], victim)
