"""Command-line interface: ``repro <command>`` / ``python -m repro <command>``.

Commands
--------
``simulate``  — run one algorithm on a workload and print metrics (optionally
                a Gantt chart / timeline).
``compare``   — run several algorithms on the same workload and print their
                measured ratios against the LP optimum.
``sweep``     — run an algorithm x parameter grid through the batched
                experiment runner (multi-process, cached, JSON/CSV output);
                ``--watch`` instead polls a running sweep's manifest in the
                run store and exits when every point is complete.
``ratios``    — run a workload x algorithm grid with optimum computation:
                every record carries the certified optimum, the
                approximation ratios and the solve wall time; optima are
                solved once per instance, dispatched interleaved with the
                simulations and persisted in the run store
                (``<cache-dir>/runs.sqlite``).
``store``     — operate the SQLite run store: ``stats`` (what it holds),
                ``gc`` (drop finished sweep manifests, compact the file),
                ``import`` (migrate a legacy per-point JSON cache directory).
``workloads`` — print the typed workload catalog: every registered spec name,
                its parameter schema and an example spec, plus the layouts.
``algorithms``— print the typed algorithm catalog: every registered algorithm,
                its parameter schema and an example spec.
``lowerbound``— build the Theorem 2 adversarial instance and report
                Aggressive's measured ratio next to the theoretical bound.
``bounds``    — print the Section 2 bound formulas for a (k, F) grid.
``bench``     — run the repository microbenchmarks; ``bench engine`` measures
                loop/scan/vector-batch throughput and, with ``--gate``,
                enforces the stored perf floor (exit 1 on regression).
``serve``     — run the resident prefetch service: a multi-tenant HTTP
                daemon where each session is a resumable stepped simulation
                (feed requests incrementally, query upcoming decisions and
                projected stall); SIGTERM flushes session snapshots so a
                restarted server resumes every tenant, and ``--replay``
                streams a workload spec through an in-process service and
                verifies it against the offline batch run.
``check``     — run the AST invariant lint over the package source: the
                determinism, error-discipline, engine-parity, registry-hygiene
                and float-equality rules, gated against a committed baseline
                (exit 1 on any new finding; ``--list-rules`` shows the
                battery, ``--json`` writes the findings artifact).
``coordinator``—serve a grid over HTTP to pull-based workers (the
                distributed sweep fabric): chunks are leased out with
                deadlines and heartbeats, expired leases re-issued, every
                result persisted in the run store by the coordinator
                itself; SIGTERM flushes the sweep manifest so the same
                command resumes where it stopped.
``worker``    — attach one pull worker to a running coordinator: lease
                chunks, evaluate them through the standard runner entry
                points, POST results back; retries transient transport
                errors with capped exponential backoff and exits cleanly
                when the sweep is done or the coordinator goes away.

Workload and algorithm specs share the grammar ``name[:key=value,...]``
(``zipf:n=200,blocks=50,skew=0.8``, ``delay:d=3``, ``demand:evict=lru``) so
common experiments can be run without writing Python (``repro workloads`` /
``repro algorithms`` list the catalogs); anything more elaborate should use
the library API directly (see the examples/ directory).  Parsing is strict:
unknown or duplicate parameters and uncoercible values exit with a one-line
configuration error instead of silently running a different experiment.

List-valued options (``--algorithms``, ``--workloads``) are split on ``;``
when one is present and on ``,`` otherwise — parametrised specs carry
``key=value`` pairs separated by commas, so use ``;`` (or a trailing ``;``)
whenever a listed spec takes more than one parameter.
"""

from __future__ import annotations

import argparse
import json as json_module
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .algorithms import format_algorithm_catalog, make_algorithm
from .analysis.backends import BACKEND_NAMES
from .analysis.ratios import measure_parallel_stall, measure_ratios
from .analysis.reporting import (
    format_ratio_table,
    format_report,
    format_result_set,
    format_table,
)
from .analysis.runner import ExperimentSpec, prepare_sweep, run_experiments
from .analysis.store import RunStore, store_path_for
from .analysis.results import ResultSet
from .core.bounds import SingleDiskBounds
from .disksim.executor import simulate, simulate_with_engine
from .disksim.instance import ProblemInstance
from .errors import ConfigurationError, CoordinatorShutdown, ReproError
from .viz.gantt import render_gantt
from .viz.timeline import render_timeline
from .workloads import theorem2_sequence
from .workloads.spec import (
    LAYOUT_BUILDERS,
    build_workload_instance,
    format_workload_catalog,
    parse_workload,
)

__all__ = ["main", "build_parser", "parse_workload"]


def _make_instance(args: argparse.Namespace) -> ProblemInstance:
    return build_workload_instance(
        args.workload,
        cache_size=args.cache_size,
        fetch_time=args.fetch_time,
        disks=args.disks,
        layout=args.layout,
    )


def _split_specs(text: str) -> List[str]:
    """Split a list-valued spec option.

    ``;`` is the primary separator (parametrised specs contain commas);
    plain comma-separated lists of parameterless specs — the historical
    form, e.g. ``aggressive,conservative,delay:3`` — keep working because
    the split falls back to ``,`` only when no ``;`` is present.
    """
    separator = ";" if ";" in text else ","
    return [item.strip() for item in text.split(separator) if item.strip()]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Integrated prefetching and caching (Albers & Büttner) — simulator and experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workload", "-w", default="zipf:n=200,blocks=50",
                       help="workload spec, e.g. zipf:n=200,blocks=50,skew=0.8 "
                       "(see 'repro workloads' for the catalog)")
        p.add_argument("--cache-size", "-k", type=int, default=16)
        p.add_argument("--fetch-time", "-F", type=int, default=8)
        p.add_argument("--disks", "-D", type=int, default=1)
        p.add_argument("--layout", default="striped",
                       choices=sorted(LAYOUT_BUILDERS),
                       help="block placement when --disks > 1")

    _ENGINE_CHOICES = ["auto", "loop", "indexed", "scan", "vector"]

    p_sim = sub.add_parser("simulate", help="run one algorithm and print metrics")
    add_common(p_sim)
    p_sim.add_argument("--algorithm", "-a", default="aggressive")
    p_sim.add_argument("--engine", default="loop", choices=_ENGINE_CHOICES,
                       help="simulation engine (loop = the indexed event loop; "
                       "vector = the numpy batch kernel, falling back to loop "
                       "where uncovered; auto = vector when available)")
    p_sim.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")
    p_sim.add_argument("--timeline", action="store_true", help="print the event timeline")

    p_cmp = sub.add_parser("compare", help="compare algorithms against the optimum")
    add_common(p_cmp)
    p_cmp.add_argument(
        "--algorithms", "-a", default="aggressive,conservative,combination,demand",
        help="algorithm specs separated by ';' (or ',' when none is parametrised), "
        "e.g. 'aggressive;delay:d=3;demand:evict=lru' "
        "(see 'repro algorithms' for the catalog)",
    )
    p_cmp.add_argument(
        "--cache-dir", default=None,
        help="run-store directory shared with sweep/ratios: the optimum is "
        "served from (and persisted to) <cache-dir>/runs.sqlite",
    )

    def add_grid_options(p: argparse.ArgumentParser, *, name_default: str) -> None:
        p.add_argument(
            "--workloads", "-w", default="zipf:n=200,blocks=50",
            help="comma-free list of workload specs separated by ';', "
            "e.g. 'zipf:n=200,blocks=50;loop:blocks=30,loops=10'",
        )
        p.add_argument("--cache-sizes", "-k", default="16",
                       help="comma-separated cache sizes")
        p.add_argument("--fetch-times", "-F", default="8",
                       help="comma-separated fetch times")
        p.add_argument("--disks", "-D", default="1", help="comma-separated disk counts")
        p.add_argument(
            "--layouts", default="striped",
            help="comma-separated block placements swept when a disk count > 1 "
            f"(available: {', '.join(sorted(LAYOUT_BUILDERS))})",
        )
        p.add_argument(
            "--algorithms", "-a", default="aggressive,conservative,combination,demand",
            help="algorithm specs separated by ';' (or ',' when none is parametrised), "
            "e.g. 'aggressive;delay:d=3;demand:evict=lru'",
        )
        p.add_argument("--seeds", default="",
                       help="comma-separated seeds substituted into the workload specs")
        p.add_argument("--workers", type=int, default=0,
                       help="worker-pool size (0/1 = run in-process)")
        p.add_argument("--backend", default="auto", choices=BACKEND_NAMES,
                       help="execution backend for the grid points "
                       "(auto = serial at workers<=1, process fan-out otherwise)")
        p.add_argument("--engine", default="loop",
                       choices=["auto", "loop", "indexed", "scan", "vector"],
                       help="simulation engine; vector/auto let the planner "
                       "stack same-shape points into batched kernel passes "
                       "(uncovered points fall back to the loop engine)")
        p.add_argument("--cache-dir", default=None,
                       help="directory for the run store (a single SQLite file, "
                       "runs.sqlite, holding records, optima and sweep manifests)")
        p.add_argument("--resume", action="store_true",
                       help="reconcile this grid's sweep manifest against the run "
                       "store, report exactly what remains, and run only that "
                       "(requires --cache-dir)")
        p.add_argument("--json", dest="json_path", default=None,
                       help="write results as deterministic JSON to this path")
        p.add_argument("--csv", dest="csv_path", default=None,
                       help="write results as CSV to this path")
        p.add_argument("--name", default=name_default, help="experiment name")

    p_sweep = sub.add_parser(
        "sweep", help="run an algorithm x parameter grid via the experiment runner"
    )
    add_grid_options(p_sweep, name_default="cli-sweep")
    p_sweep.add_argument("--watch", action="store_true",
                         help="poll this grid's sweep manifest in the run store "
                         "instead of executing it; print progress until every "
                         "point is complete (requires --cache-dir)")
    p_sweep.add_argument("--watch-interval", type=float, default=2.0,
                         help="seconds between --watch polls")
    p_sweep.add_argument("--coordinator", default=None, metavar="URL",
                         help="with --watch: also poll this coordinator's "
                         "/status endpoint and print per-worker lease progress")

    p_ratios = sub.add_parser(
        "ratios",
        help="run a workload x algorithm grid with cached optimum computation "
        "and print the approximation-ratio table",
    )
    add_grid_options(p_ratios, name_default="cli-ratios")
    p_ratios.add_argument(
        "--method", default="auto", choices=["auto", "milp", "lp-rounding"],
        help="optimum method for multi-disk instances (single-disk is always exact)",
    )

    p_store = sub.add_parser(
        "store", help="operate the SQLite run store (stats, gc, import)"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)

    def add_store_location(p: argparse.ArgumentParser) -> None:
        p.add_argument("--db", default=None,
                       help="path of the run-store database file")
        p.add_argument("--cache-dir", default=None,
                       help="cache directory holding the store (same option the "
                       "sweep/ratios commands take); the database is "
                       "<cache-dir>/runs.sqlite")

    p_store_stats = store_sub.add_parser(
        "stats", help="print what the store holds (runs, optima, sweep progress)"
    )
    add_store_location(p_store_stats)
    p_store_stats.add_argument("--json", dest="json_path", default=None,
                               help="also write the stats as JSON to this path")

    p_store_gc = store_sub.add_parser(
        "gc", help="drop finished sweep manifests and compact the database"
    )
    add_store_location(p_store_gc)

    p_store_import = store_sub.add_parser(
        "import", help="migrate a legacy per-point JSON cache directory into the store"
    )
    p_store_import.add_argument("json_cache_dir",
                                help="directory of legacy <key>.json result files "
                                "(with an optional optima/ subdirectory)")
    add_store_location(p_store_import)

    p_wl = sub.add_parser(
        "workloads", help="list the workload catalog and parameter schemas"
    )
    p_wl.add_argument("name", nargs="?", default=None,
                      help="show only this workload (with per-parameter help)")

    p_alg = sub.add_parser(
        "algorithms", help="list the algorithm catalog and parameter schemas"
    )
    p_alg.add_argument("name", nargs="?", default=None,
                       help="show only this algorithm (with per-parameter help)")

    p_lb = sub.add_parser("lowerbound", help="run the Theorem 2 adversarial construction")
    p_lb.add_argument("--cache-size", "-k", type=int, default=13)
    p_lb.add_argument("--fetch-time", "-F", type=int, default=4)
    p_lb.add_argument("--phases", type=int, default=6)

    p_bounds = sub.add_parser("bounds", help="print the Section 2 bound formulas")
    p_bounds.add_argument("--cache-sizes", default="8,16,32,64")
    p_bounds.add_argument("--fetch-times", default="2,4,8,16")

    p_bench = sub.add_parser(
        "bench", help="run the repository's microbenchmarks"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_bench_engine = bench_sub.add_parser(
        "engine",
        help="engine throughput benchmark (loop vs scan vs vector batch), "
        "optionally enforced as a perf gate",
    )
    p_bench_engine.add_argument("--num-requests", type=int, default=None,
                                help="requests per instance (default: the "
                                "BENCH_engine grid, or the floor file's under --gate)")
    p_bench_engine.add_argument("--batch-size", type=int, default=None,
                                help="instances per stacked vector pass (default: "
                                "the BENCH_engine grid, or the floor file's under --gate)")
    p_bench_engine.add_argument("--reps", type=int, default=3,
                                help="best-of repetitions per timed cell")
    p_bench_engine.add_argument("--no-scan", action="store_true",
                                help="skip the (slow, quadratic) scan reference rows")
    p_bench_engine.add_argument("--json", dest="json_path", default=None,
                                help="write the report as JSON to this path")
    p_bench_engine.add_argument("--gate", action="store_true",
                                help="enforce the perf gate: exit 1 if any cell's "
                                "vector-batch throughput is below the stored floor "
                                "or below 5x the loop engine")
    p_bench_engine.add_argument("--floor", default=None,
                                help="gate floor file (default with --gate: "
                                "./BENCH_engine_floor.json if present)")

    p_serve = sub.add_parser(
        "serve",
        help="run the resident multi-tenant prefetch service (HTTP front end "
        "over the stepped simulation kernel)",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="interface to bind the HTTP server on")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="TCP port to listen on (0 picks a free port)")
    p_serve.add_argument("--state-dir", default=".repro-service",
                         help="directory of session snapshots and journals; a "
                         "restarted server resumes every session found here")
    p_serve.add_argument("--replay", default=None, metavar="WORKLOAD",
                         help="instead of serving, stream this workload spec "
                         "through an in-process session chunk by chunk and "
                         "verify the outcome against the offline batch run "
                         "(exit 1 on mismatch)")
    p_serve.add_argument("--chunk", type=int, default=64,
                         help="requests per feed batch under --replay")
    p_serve.add_argument("--algorithm", "-a", default="aggressive",
                         help="algorithm spec for the --replay session")
    p_serve.add_argument("--cache-size", "-k", type=int, default=16)
    p_serve.add_argument("--fetch-time", "-F", type=int, default=8)

    p_coord = sub.add_parser(
        "coordinator",
        help="serve a grid to pull-based 'repro worker' processes "
        "(distributed sweep fabric; results persist in the run store)",
    )
    add_grid_options(p_coord, name_default="cli-coordinator")
    p_coord.add_argument("--host", default="127.0.0.1",
                         help="interface to bind the coordinator on")
    p_coord.add_argument("--port", type=int, default=0,
                         help="TCP port to listen on (0 picks a free port)")
    p_coord.add_argument("--lease-timeout", type=float, default=30.0,
                         help="seconds a leased chunk may go without a "
                         "heartbeat before it is re-issued to another worker")
    p_coord.add_argument("--chunk-size", type=int, default=None,
                         help="tasks per leased chunk (default: adaptive, "
                         "sized like the process pool's)")
    p_coord.add_argument("--linger", type=float, default=1.0,
                         help="seconds to keep serving after completion so "
                         "attached workers observe the 'done' state")
    p_coord.add_argument("--optimum", action="store_true",
                         help="also compute every point's LP optimum "
                         "(the ratios pipeline) through the workers")
    p_coord.add_argument("--method", default="auto",
                         choices=["auto", "milp", "lp-rounding"],
                         help="optimum method for multi-disk instances "
                         "(with --optimum)")

    p_worker = sub.add_parser(
        "worker",
        help="attach one pull worker to a running 'repro coordinator'",
    )
    p_worker.add_argument("--coordinator", required=True, metavar="URL",
                          help="base URL the coordinator printed, "
                          "e.g. http://127.0.0.1:8643")
    p_worker.add_argument("--id", default=None,
                          help="worker name shown in coordinator status "
                          "(default: a pid-derived name)")
    p_worker.add_argument("--poll-interval", type=float, default=0.25,
                          help="seconds between lease polls while idle")
    p_worker.add_argument("--backoff-base", type=float, default=0.25,
                          help="first retry delay on transport errors")
    p_worker.add_argument("--backoff-cap", type=float, default=4.0,
                          help="ceiling on the exponential retry delay")
    p_worker.add_argument("--max-retries", type=int, default=6,
                          help="transport retries before giving the coordinator "
                          "up for gone")
    p_worker.add_argument("--fault-kill-after", type=int, default=None,
                          metavar="N",
                          help="fault injection: die (lease held) when the "
                          "N+1-th chunk is leased — test/smoke harness only")
    p_worker.add_argument("--fault-drop-completions", type=int, default=0,
                          metavar="N",
                          help="fault injection: swallow the first N completion "
                          "POSTs so their leases expire")
    p_worker.add_argument("--fault-duplicate-completions", type=int, default=0,
                          metavar="N",
                          help="fault injection: send the first N completions "
                          "twice")
    p_worker.add_argument("--fault-delay", type=float, default=0.0,
                          metavar="SECONDS",
                          help="fault injection: stall before every completion "
                          "POST")

    p_check = sub.add_parser(
        "check",
        help="run the AST invariant lint (determinism, error discipline, "
        "engine parity, registry hygiene, float equality)",
    )
    p_check.add_argument("paths", nargs="*", default=None,
                         help="files or directories to check (default: the "
                         "installed repro package source)")
    p_check.add_argument("--baseline", default=None,
                         help="baseline file of grandfathered findings; new "
                         "findings beyond it fail the gate")
    p_check.add_argument("--update-baseline", action="store_true",
                         help="rewrite --baseline to absorb the current "
                         "findings instead of failing on them")
    p_check.add_argument("--json", dest="json_path", default=None,
                         help="write the full report as JSON to this path "
                         "(the CI findings artifact)")
    p_check.add_argument("--only", default=None,
                         help="comma-separated rule ids to run exclusively")
    p_check.add_argument("--disable", default=None,
                         help="comma-separated rule ids to skip")
    p_check.add_argument("--list-rules", action="store_true",
                         help="list the registered rules and exit")

    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    instance = _make_instance(args)
    algorithm = make_algorithm(args.algorithm)
    result, engine = simulate_with_engine(instance, algorithm, engine=args.engine)
    print(f"instance: {instance.describe()}")
    print(f"algorithm: {result.policy_name}")
    if engine != args.engine:
        print(f"engine: {engine} (requested {args.engine})")
    rows = [result.metrics.as_dict()]
    print(format_table(rows, columns=[
        "num_requests", "stall_time", "elapsed_time", "num_fetches",
        "num_demand_fetches", "hit_rate", "peak_cache_used",
    ]))
    if args.gantt:
        print()
        print(render_gantt(result))
    if args.timeline:
        print()
        print(render_timeline(result, limit=200))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    instance = _make_instance(args)
    algorithms = [make_algorithm(spec) for spec in _split_specs(args.algorithms)]
    store = (
        RunStore(store_path_for(args.cache_dir)) if args.cache_dir is not None else None
    )
    try:
        if instance.num_disks > 1:
            report = measure_parallel_stall(instance, algorithms, store=store)
        else:
            report = measure_ratios(instance, algorithms, store=store)
    finally:
        if store is not None:
            store.close()
    print(format_report(report))
    return 0


def _parse_int_list(text: str) -> List[int]:
    return [int(v) for v in text.split(",") if v.strip()]


def _grid_spec(args: argparse.Namespace, **extra) -> ExperimentSpec:
    """The :class:`ExperimentSpec` described by the shared grid options.

    This is the single place the ``sweep`` and ``ratios`` subcommands parse
    their axes and specs through, so the two can never drift on grid
    handling.
    """
    seeds = tuple(_parse_int_list(args.seeds)) or (None,)
    return ExperimentSpec(
        name=args.name,
        workloads=tuple(w.strip() for w in args.workloads.split(";") if w.strip()),
        cache_sizes=tuple(_parse_int_list(args.cache_sizes)),
        fetch_times=tuple(_parse_int_list(args.fetch_times)),
        disks=tuple(_parse_int_list(args.disks)),
        layouts=tuple(l.strip() for l in args.layouts.split(",") if l.strip()),
        algorithms=tuple(_split_specs(args.algorithms)),
        seeds=seeds,
        engine=args.engine,
        backend=args.backend,
        **extra,
    )


def _write_outputs(run, args: argparse.Namespace) -> None:
    if args.json_path:
        run.write_json(args.json_path)
        print(f"wrote JSON to {args.json_path}")
    if args.csv_path:
        run.write_csv(args.csv_path)
        print(f"wrote CSV to {args.csv_path}")


def _report_resume(spec: ExperimentSpec, store: RunStore) -> None:
    """Print the manifest state a ``--resume`` run starts from."""
    progress = prepare_sweep(spec, store)
    print(f"resume {progress.describe()}")
    shown = progress.remaining_labels[:10]
    for label in shown:
        print(f"  - {label}")
    if len(progress.remaining_labels) > len(shown):
        print(f"  ... and {len(progress.remaining_labels) - len(shown)} more")


def _run_grid_command(args: argparse.Namespace, **extra) -> ResultSet:
    """Shared ``sweep``/``ratios`` execution: spec, resume report, run, summary.

    One code path builds the spec, honours ``--resume``, executes the grid
    and prints the summary line, so the two grid subcommands cannot drift
    on axis handling, backend selection or store behaviour.  A ``--resume``
    run opens the store once and shares the connection between the report
    and the execution.
    """
    spec = _grid_spec(args, **extra)
    store = None
    backend = None
    if args.backend == "remote":
        # The remote backend needs attached workers; serve on a free port and
        # tell the operator where to point them.  `repro coordinator` is the
        # full-featured front end (lease timeouts, SIGTERM resume, linger).
        from .analysis.remote import RemoteBackend

        backend = RemoteBackend(args.workers)
        url = backend.start()
        print(
            f"serving grid on {url} "
            f"(attach workers with: repro worker --coordinator {url})",
            flush=True,
        )
    try:
        if args.resume:
            if args.cache_dir is None:
                raise ConfigurationError(
                    "--resume needs --cache-dir (the run store location)"
                )
            store = RunStore(store_path_for(args.cache_dir))
            _report_resume(spec, store)
        run = run_experiments(
            spec,
            workers=args.workers,
            backend=backend,
            cache_dir=None if store is not None else args.cache_dir,
            store=store,
        )
    finally:
        if backend is not None:
            backend.close()
        if store is not None:
            store.close()
    print(
        f"{args.command} {run.name!r}: {len(run.records)} points "
        f"({run.cached_points} cached, {run.simulated_points} simulated, "
        f"{run.optimum_requests} optimum requests, workers={args.workers}, "
        f"backend={run.backend})"
    )
    return run


def _coordinator_status(url: str) -> Optional[dict]:
    """One tolerant GET of a coordinator's ``/status`` (None when unreachable)."""
    import urllib.request

    try:
        with urllib.request.urlopen(url.rstrip("/") + "/status", timeout=5) as response:
            return json_module.loads(response.read().decode("utf-8"))
    except (OSError, ValueError):
        return None


def _format_worker_lines(status: dict) -> List[str]:
    """Per-worker lease-progress lines of a coordinator status payload."""
    lines = []
    for name, stats in status.get("workers", {}).items():
        active = stats.get("active_chunk")
        holding = f"chunk {active}" if active is not None else "idle"
        lines.append(
            f"  worker {name}: {holding} "
            f"({stats.get('completed_chunks', 0)} chunks / "
            f"{stats.get('completed_tasks', 0)} tasks done)"
        )
    reissued = status.get("reissued_leases", 0)
    duplicates = status.get("duplicate_completions", 0)
    if reissued or duplicates:
        lines.append(
            f"  leases re-issued: {reissued}, duplicate completions: {duplicates}"
        )
    return lines


def _watch_sweep(args: argparse.Namespace) -> int:
    """Poll the grid's sweep manifest until every point is complete.

    The watcher is read-mostly: each poll re-registers the manifest (a
    no-op once it exists) and reconciles it against the records other
    processes have written, so it converges no matter which worker — or
    how many — is actually executing the sweep.  With ``--coordinator`` it
    additionally shows each attached worker's lease progress.
    """
    import time as time_module

    if args.cache_dir is None:
        raise ConfigurationError("--watch needs --cache-dir (the run store location)")
    spec = _grid_spec(args)
    with RunStore(store_path_for(args.cache_dir)) as store:
        while True:
            progress = prepare_sweep(spec, store)
            print(f"watch {progress.describe()}", flush=True)
            if args.coordinator is not None:
                status = _coordinator_status(args.coordinator)
                if status is None:
                    print("  (coordinator unreachable)", flush=True)
                else:
                    for line in _format_worker_lines(status):
                        print(line, flush=True)
            if progress.complete:
                print("sweep complete")
                return 0
            time_module.sleep(args.watch_interval)


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.watch:
        return _watch_sweep(args)
    run = _run_grid_command(args)
    print(format_result_set(run))
    _write_outputs(run, args)
    return 0


def _cmd_ratios(args: argparse.Namespace) -> int:
    run = _run_grid_command(args, compute_optimum=True, optimum_method=args.method)
    print(format_ratio_table(run))
    _write_outputs(run, args)
    return 0


def _store_db_path(args: argparse.Namespace) -> Path:
    """The database path the ``repro store`` options select."""
    if args.db is not None:
        return Path(args.db)
    if args.cache_dir is not None:
        return store_path_for(args.cache_dir)
    raise ConfigurationError("repro store needs --db or --cache-dir")


def _cmd_store(args: argparse.Namespace) -> int:
    path = _store_db_path(args)
    if args.store_command != "import" and not path.exists():
        raise ConfigurationError(f"no run store at {path}")
    with RunStore(path) as store:
        if args.store_command == "stats":
            stats = store.stats()
            width = max(len(key) for key in stats)
            for key, value in stats.items():
                print(f"{key:<{width}}  {value}")
            if args.json_path:
                Path(args.json_path).write_text(
                    json_module.dumps(stats, indent=2, sort_keys=True) + "\n"
                )
                print(f"wrote JSON to {args.json_path}")
        elif args.store_command == "gc":
            outcome = store.gc()
            print(
                f"removed {outcome['sweeps_removed']} finished sweep manifest(s) "
                f"({outcome['points_removed']} point rows), reclaimed "
                f"{outcome['reclaimed_bytes']} bytes"
            )
        else:  # import
            report = store.import_json_cache(args.json_cache_dir)
            print(report.describe())
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    print(format_workload_catalog(args.name))
    return 0


def _cmd_algorithms(args: argparse.Namespace) -> int:
    print(format_algorithm_catalog(args.name))
    return 0


def _cmd_lowerbound(args: argparse.Namespace) -> int:
    from .algorithms import Aggressive

    construction = theorem2_sequence(args.cache_size, args.fetch_time, args.phases)
    result = simulate(construction.instance, Aggressive())
    bounds = SingleDiskBounds(args.cache_size, args.fetch_time)
    print(f"instance: {construction.instance.describe()}")
    print(format_table([
        {
            "phases": construction.num_phases,
            "aggressive_elapsed": result.elapsed_time,
            "predicted_aggressive": construction.num_phases
            * construction.aggressive_time_per_phase,
            "predicted_optimal": construction.num_phases * construction.optimal_time_per_phase,
            "predicted_ratio": round(construction.predicted_ratio, 4),
            "thm2_bound": round(bounds.aggressive_lower, 4),
            "thm1_bound": round(bounds.aggressive_refined, 4),
        }
    ]))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .analysis import enginebench

    floor = None
    if args.floor is not None:
        floor = enginebench.load_floor(args.floor)
    elif args.gate and Path("BENCH_engine_floor.json").exists():
        floor = enginebench.load_floor("BENCH_engine_floor.json")
    # Under --gate the floor file pins the grid it was calibrated on; explicit
    # options still win so a mismatch fails loudly in gate_failures.
    pinned = floor or {}
    num_requests = args.num_requests or pinned.get("num_requests") or enginebench.N_REQUESTS
    batch_size = args.batch_size or pinned.get("batch_size") or enginebench.BATCH_SIZE
    report = enginebench.run_engine_benchmark(
        num_requests=num_requests,
        batch_size=batch_size,
        include_scan=not args.no_scan,
        reps=args.reps,
    )
    print(enginebench.format_engine_report(report))
    if args.json_path:
        Path(args.json_path).write_text(
            json_module.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote JSON to {args.json_path}")
    if args.gate:
        failures = enginebench.gate_failures(report, floor)
        for failure in failures:
            print(f"PERF GATE: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("perf gate passed")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .service import PrefetchService, make_server, replay_workload

    if args.replay is not None:
        report = replay_workload(
            args.replay,
            algorithm=args.algorithm,
            cache_size=args.cache_size,
            fetch_time=args.fetch_time,
            chunk=args.chunk,
        )
        print(report.describe())
        return 0 if report.match else 1

    state_dir = Path(args.state_dir)
    service = PrefetchService(state_dir=state_dir)
    restored = service.load_all()
    if restored:
        print(f"restored {len(restored)} session(s): {', '.join(restored)}")
    server = make_server(service, args.host, args.port)

    def _request_shutdown(signum, frame) -> None:
        # serve_forever runs in this (main) thread; shutdown() blocks until
        # the loop exits, so it must be issued from a helper thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _request_shutdown)
    signal.signal(signal.SIGINT, _request_shutdown)
    host, port = server.server_address[0], server.server_address[1]
    print(
        f"prefetch service listening on http://{host}:{port} (state: {state_dir})",
        flush=True,
    )
    try:
        server.serve_forever()
    finally:
        server.server_close()
        written = service.save_all()
        service.close()
        print(f"saved {len(written)} session snapshot(s) to {state_dir}")
    return 0


def _cmd_coordinator(args: argparse.Namespace) -> int:
    import signal
    import time as time_module

    from .analysis.remote import RemoteBackend

    if args.backend not in ("auto", "remote"):
        raise ConfigurationError(
            f"repro coordinator always executes on the remote backend; "
            f"drop --backend {args.backend}"
        )
    if args.cache_dir is None:
        raise ConfigurationError(
            "repro coordinator needs --cache-dir (the run store that makes a "
            "stopped sweep resumable)"
        )
    args.backend = "remote"
    extra = (
        {"compute_optimum": True, "optimum_method": args.method}
        if args.optimum
        else {}
    )
    spec = _grid_spec(args, **extra)
    backend = RemoteBackend(
        args.workers,
        host=args.host,
        port=args.port,
        lease_timeout=args.lease_timeout,
        chunk_size=args.chunk_size,
    )
    url = backend.start()
    print(
        f"coordinator serving {spec.name!r} on {url} "
        f"(attach workers with: repro worker --coordinator {url})",
        flush=True,
    )

    def _request_shutdown(signum, frame) -> None:
        # The map iterator runs in this thread; flipping the flag is enough —
        # results() observes it and raises CoordinatorShutdown.
        backend.request_shutdown()

    import threading

    if threading.current_thread() is threading.main_thread():
        # Signal handlers are only installable from the main thread (tests
        # drive this command from worker threads; there, the in-process
        # request_shutdown() hook is the equivalent control surface).
        signal.signal(signal.SIGTERM, _request_shutdown)
        signal.signal(signal.SIGINT, _request_shutdown)
    store = RunStore(store_path_for(args.cache_dir))
    try:
        if args.resume:
            _report_resume(spec, store)
        try:
            run = run_experiments(
                spec, workers=args.workers, backend=backend, store=store
            )
        except CoordinatorShutdown:
            # Every result received so far is already in the store; flushing
            # the manifest (reconcile) makes the same command resume exactly
            # the remaining points — the `repro serve` SIGTERM contract.
            progress = prepare_sweep(spec, store)
            print(f"coordinator stopping: {progress.describe()}", flush=True)
            print("manifest flushed; re-run the same grid to resume")
            return 0
        print(
            f"coordinator {run.name!r}: {len(run.records)} points "
            f"({run.cached_points} cached, {run.simulated_points} simulated, "
            f"{run.optimum_requests} optimum requests, backend={run.backend})"
        )
        _write_outputs(run, args)
        # Keep serving briefly so polling workers observe 'done' and exit
        # cleanly instead of burning their transport retries.
        time_module.sleep(args.linger)
        return 0
    finally:
        backend.close()
        store.close()


def _cmd_worker(args: argparse.Namespace) -> int:
    from .analysis.remote import FaultPlan, run_worker

    plan = FaultPlan(
        drop_completions=args.fault_drop_completions,
        duplicate_completions=args.fault_duplicate_completions,
        delay_seconds=args.fault_delay,
        kill_after_chunks=args.fault_kill_after,
    )
    report = run_worker(
        args.coordinator,
        worker_id=args.id,
        poll_interval=args.poll_interval,
        backoff_base=args.backoff_base,
        backoff_cap=args.backoff_cap,
        max_retries=args.max_retries,
        fault_plan=plan,
    )
    print(report.describe())
    # Losing the coordinator (or dying to an injected fault) is a normal
    # teardown path for a pull worker, not an error: held leases expire and
    # the work lands elsewhere.
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .checks import Baseline, CheckConfig, all_checkers, run_checks

    if args.list_rules:
        for checker in all_checkers():
            print(f"{checker.rule_id} ({checker.severity}): {checker.description}")
        return 0
    config = CheckConfig.from_option_strings(
        args.only or "", args.disable or ""
    )
    baseline_path = Path(args.baseline) if args.baseline else None
    if args.update_baseline and baseline_path is None:
        raise ConfigurationError("--update-baseline needs --baseline (the file to write)")
    baseline = None
    if baseline_path is not None and baseline_path.exists() and not args.update_baseline:
        baseline = Baseline.load(baseline_path)
    report = run_checks(args.paths or None, config=config, baseline=baseline)
    if args.update_baseline:
        Baseline.from_findings(report.findings).save(baseline_path)
        print(
            f"wrote baseline {baseline_path} absorbing "
            f"{len(report.findings)} finding(s)"
        )
        return 0
    if args.json_path:
        Path(args.json_path).write_text(
            json_module.dumps(report.to_json_dict(), indent=2, sort_keys=True) + "\n"
        )
    print(report.format_text())
    return 0 if report.ok else 1


def _cmd_bounds(args: argparse.Namespace) -> int:
    cache_sizes = [int(v) for v in args.cache_sizes.split(",") if v]
    fetch_times = [int(v) for v in args.fetch_times.split(",") if v]
    rows = []
    for k in cache_sizes:
        for fetch_time in fetch_times:
            rows.append(SingleDiskBounds(k, fetch_time).as_dict())
    print(format_table(rows))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "compare": _cmd_compare,
        "sweep": _cmd_sweep,
        "ratios": _cmd_ratios,
        "store": _cmd_store,
        "workloads": _cmd_workloads,
        "algorithms": _cmd_algorithms,
        "lowerbound": _cmd_lowerbound,
        "bounds": _cmd_bounds,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
        "check": _cmd_check,
        "coordinator": _cmd_coordinator,
        "worker": _cmd_worker,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
