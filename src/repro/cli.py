"""Command-line interface: ``repro <command>`` / ``python -m repro <command>``.

Commands
--------
``simulate``  — run one algorithm on a workload and print metrics (optionally
                a Gantt chart / timeline).
``compare``   — run several algorithms on the same workload and print their
                measured ratios against the LP optimum.
``lowerbound``— build the Theorem 2 adversarial instance and report
                Aggressive's measured ratio next to the theoretical bound.
``bounds``    — print the Section 2 bound formulas for a (k, F) grid.

Workload specs are small strings like ``zipf:n=200,blocks=50,skew=0.8`` or
``trace:path=/tmp/trace.txt`` so common experiments can be run without
writing Python; anything more elaborate should use the library API directly
(see the examples/ directory).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from .algorithms import make_algorithm
from .analysis.ratios import measure_parallel_stall, measure_ratios
from .analysis.reporting import format_report, format_table
from .core.bounds import SingleDiskBounds
from .disksim.executor import simulate
from .disksim.instance import ProblemInstance
from .errors import ConfigurationError, ReproError
from .viz.gantt import render_gantt
from .viz.timeline import render_timeline
from .workloads import (
    cao_f_ge_k_sequence,
    database_join_trace,
    file_scan_trace,
    load_trace,
    looping_scan,
    multimedia_stream_trace,
    sequential_scan,
    theorem2_sequence,
    uniform_random,
    zipf,
)
from .workloads.multidisk import striped_instance

__all__ = ["main", "build_parser", "parse_workload"]

_WORKLOAD_BUILDERS = {
    "zipf": lambda p: zipf(
        int(p.get("n", 200)), int(p.get("blocks", 50)), skew=float(p.get("skew", 1.0)),
        seed=int(p.get("seed", 0)),
    ),
    "uniform": lambda p: uniform_random(
        int(p.get("n", 200)), int(p.get("blocks", 50)), seed=int(p.get("seed", 0))
    ),
    "loop": lambda p: looping_scan(int(p.get("blocks", 20)), int(p.get("loops", 5))),
    "scan": lambda p: sequential_scan(int(p.get("blocks", 100))),
    "filescan": lambda p: file_scan_trace(
        int(p.get("files", 4)), int(p.get("blocks", 25)), rescans=int(p.get("rescans", 1))
    ),
    "join": lambda p: database_join_trace(
        int(p.get("outer", 8)), int(p.get("inner", 12)),
    ),
    "stream": lambda p: multimedia_stream_trace(
        int(p.get("streams", 3)), int(p.get("blocks", 40))
    ),
    "trace": lambda p: load_trace(p["path"]),
}


def parse_workload(spec: str):
    """Parse a workload spec string into a request sequence."""
    name, _, params_text = spec.partition(":")
    params: Dict[str, str] = {}
    if params_text:
        for item in params_text.split(","):
            if not item:
                continue
            key, _, value = item.partition("=")
            params[key.strip()] = value.strip()
    builder = _WORKLOAD_BUILDERS.get(name.strip().lower())
    if builder is None:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: {', '.join(sorted(_WORKLOAD_BUILDERS))}"
        )
    return builder(params)


def _make_instance(args: argparse.Namespace) -> ProblemInstance:
    sequence = parse_workload(args.workload)
    if args.disks > 1:
        return striped_instance(sequence, args.cache_size, args.fetch_time, args.disks)
    return ProblemInstance.single_disk(sequence, args.cache_size, args.fetch_time)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Integrated prefetching and caching (Albers & Büttner) — simulator and experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workload", "-w", default="zipf:n=200,blocks=50",
                       help="workload spec, e.g. zipf:n=200,blocks=50,skew=0.8")
        p.add_argument("--cache-size", "-k", type=int, default=16)
        p.add_argument("--fetch-time", "-F", type=int, default=8)
        p.add_argument("--disks", "-D", type=int, default=1)

    p_sim = sub.add_parser("simulate", help="run one algorithm and print metrics")
    add_common(p_sim)
    p_sim.add_argument("--algorithm", "-a", default="aggressive")
    p_sim.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")
    p_sim.add_argument("--timeline", action="store_true", help="print the event timeline")

    p_cmp = sub.add_parser("compare", help="compare algorithms against the optimum")
    add_common(p_cmp)
    p_cmp.add_argument(
        "--algorithms", "-a", default="aggressive,conservative,combination,demand",
        help="comma-separated algorithm specs",
    )

    p_lb = sub.add_parser("lowerbound", help="run the Theorem 2 adversarial construction")
    p_lb.add_argument("--cache-size", "-k", type=int, default=13)
    p_lb.add_argument("--fetch-time", "-F", type=int, default=4)
    p_lb.add_argument("--phases", type=int, default=6)

    p_bounds = sub.add_parser("bounds", help="print the Section 2 bound formulas")
    p_bounds.add_argument("--cache-sizes", default="8,16,32,64")
    p_bounds.add_argument("--fetch-times", default="2,4,8,16")

    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    instance = _make_instance(args)
    algorithm = make_algorithm(args.algorithm)
    result = simulate(instance, algorithm)
    print(f"instance: {instance.describe()}")
    print(f"algorithm: {result.policy_name}")
    rows = [result.metrics.as_dict()]
    print(format_table(rows, columns=[
        "num_requests", "stall_time", "elapsed_time", "num_fetches",
        "num_demand_fetches", "hit_rate", "peak_cache_used",
    ]))
    if args.gantt:
        print()
        print(render_gantt(result))
    if args.timeline:
        print()
        print(render_timeline(result, limit=200))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    instance = _make_instance(args)
    algorithms = [make_algorithm(spec) for spec in args.algorithms.split(",") if spec]
    if instance.num_disks > 1:
        report = measure_parallel_stall(instance, algorithms)
    else:
        report = measure_ratios(instance, algorithms)
    print(format_report(report))
    return 0


def _cmd_lowerbound(args: argparse.Namespace) -> int:
    from .algorithms import Aggressive

    construction = theorem2_sequence(args.cache_size, args.fetch_time, args.phases)
    result = simulate(construction.instance, Aggressive())
    bounds = SingleDiskBounds(args.cache_size, args.fetch_time)
    print(f"instance: {construction.instance.describe()}")
    print(format_table([
        {
            "phases": construction.num_phases,
            "aggressive_elapsed": result.elapsed_time,
            "predicted_aggressive": construction.num_phases
            * construction.aggressive_time_per_phase,
            "predicted_optimal": construction.num_phases * construction.optimal_time_per_phase,
            "predicted_ratio": round(construction.predicted_ratio, 4),
            "thm2_bound": round(bounds.aggressive_lower, 4),
            "thm1_bound": round(bounds.aggressive_refined, 4),
        }
    ]))
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    cache_sizes = [int(v) for v in args.cache_sizes.split(",") if v]
    fetch_times = [int(v) for v in args.fetch_times.split(",") if v]
    rows = []
    for k in cache_sizes:
        for fetch_time in fetch_times:
            rows.append(SingleDiskBounds(k, fetch_time).as_dict())
    print(format_table(rows))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "compare": _cmd_compare,
        "lowerbound": _cmd_lowerbound,
        "bounds": _cmd_bounds,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
