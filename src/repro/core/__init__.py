"""Theory toolkit: the paper's closed-form bounds, the dominance machinery of
the Section 2 proofs, phase partitions, and the synchronized-schedule notions
of Section 3."""

from .bounds import (
    SQRT3,
    SingleDiskBounds,
    aggressive_bound_cao,
    aggressive_bound_refined,
    aggressive_lower_bound,
    best_delay_parameter,
    combination_bound,
    conservative_bound,
    delay_best_bound,
    delay_bound,
)
from .dominance import AlgorithmState, dominates, hole_positions, state_of
from .phases import PhaseBreakdown, phase_boundaries, phase_breakdown, phase_length
from .synchronized import (
    SynchronizedComparison,
    compare_synchronized_to_optimal,
    is_fully_synchronized,
    is_synchronized,
    proper_intersections,
)

__all__ = [
    "SQRT3",
    "SingleDiskBounds",
    "aggressive_bound_cao",
    "aggressive_bound_refined",
    "aggressive_lower_bound",
    "best_delay_parameter",
    "combination_bound",
    "conservative_bound",
    "delay_best_bound",
    "delay_bound",
    "AlgorithmState",
    "dominates",
    "hole_positions",
    "state_of",
    "PhaseBreakdown",
    "phase_boundaries",
    "phase_breakdown",
    "phase_length",
    "SynchronizedComparison",
    "compare_synchronized_to_optimal",
    "is_fully_synchronized",
    "is_synchronized",
    "proper_intersections",
]
