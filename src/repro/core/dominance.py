"""Cursor/hole/state dominance — the machinery behind the Theorem 1 analysis.

Cao et al. (and the paper's refined analysis) compare two prefetching
algorithms through *dominance*: algorithm A's state dominates B's when A's
cursor is at least as far and each of A's "holes" (the first references to
the blocks missing from A's cache) occurs no earlier than B's corresponding
hole.  The key Lemma 1 states that dominance is preserved by a prefetch step
when both algorithms fetch their next missing block and evict the
furthest-in-future resident block.

These functions let tests and the E9 ablation *check* dominance empirically:
they compute hole profiles from simulator states and verify, e.g., that
Aggressive's state dominates the state of any other algorithm at phase
boundaries — the structural fact on which the Theorem 1 proof rests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Sequence, Tuple

from .._typing import INFINITY, BlockId
from ..disksim.instance import ProblemInstance
from ..disksim.sequence import RequestSequence

__all__ = ["AlgorithmState", "hole_positions", "state_of", "dominates"]


@dataclass(frozen=True)
class AlgorithmState:
    """Cursor position plus hole profile of an algorithm at some instant."""

    cursor: int
    holes: Tuple[int, ...]

    def hole(self, j: int) -> int:
        """The ``j``-th hole (1-based); ``INFINITY`` when fewer holes exist."""
        if j < 1:
            raise ValueError("hole index is 1-based")
        return self.holes[j - 1] if j <= len(self.holes) else INFINITY


def hole_positions(
    sequence: RequestSequence, cursor: int, resident: Iterable[BlockId]
) -> Tuple[int, ...]:
    """Positions of the first references to the blocks missing from ``resident``.

    ``hole_positions(...)[j-1]`` is the paper's ``h(i, j)``: the position of
    the first reference (at or after ``cursor``) to the ``j``-th distinct
    missing block.  Blocks in flight are *not* considered present — the
    definition is purely about cache contents, so callers decide whether to
    include in-flight blocks in ``resident``.
    """
    resident_set = frozenset(resident)
    holes = []
    seen_missing = set()
    for position in range(cursor, len(sequence)):
        block = sequence[position]
        if block in resident_set or block in seen_missing:
            continue
        seen_missing.add(block)
        holes.append(position)
    return tuple(holes)


def state_of(
    instance: ProblemInstance, cursor: int, resident: Iterable[BlockId]
) -> AlgorithmState:
    """Bundle a cursor and cache contents into an :class:`AlgorithmState`."""
    return AlgorithmState(
        cursor=cursor, holes=hole_positions(instance.sequence, cursor, resident)
    )


def dominates(state_a: AlgorithmState, state_b: AlgorithmState) -> bool:
    """Whether ``state_a`` dominates ``state_b`` (cursor and every hole).

    Following the paper: A's cursor must be at least B's, and for every ``j``
    the position of A's ``j``-th hole must be at least the position of B's
    ``j``-th hole.  An algorithm with *fewer* holes is treated as having its
    missing holes at infinity, which can only help it.
    """
    if state_a.cursor < state_b.cursor:
        return False
    max_holes = max(len(state_a.holes), len(state_b.holes))
    for j in range(1, max_holes + 1):
        if state_a.hole(j) < state_b.hole(j):
            return False
    return True
