"""Phase partitions used in the Theorem 1 analysis (and its E9 ablation).

The refined analysis of Aggressive partitions the request sequence into
phases of exactly ``k + ceil(k/F) - 1`` consecutive requests (Cao et al. used
phases of ``k`` requests, which is what yields the weaker ``1 + F/k`` bound).
The induction shows Aggressive loses at most ``F`` time units per phase
relative to the optimum, giving the ratio ``1 + F/(phase length)``.

This module computes phase boundaries for either convention and measures the
per-phase elapsed time of a simulated run from its event log, so the E9
ablation can show the per-phase overhead is indeed bounded by ``F`` and that
the longer phases of the refined analysis are what tighten the bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..disksim.events import EventKind
from ..disksim.executor import SimulationResult
from ..errors import ConfigurationError

__all__ = ["phase_length", "phase_boundaries", "PhaseBreakdown", "phase_breakdown"]


def phase_length(cache_size: int, fetch_time: int, *, refined: bool = True) -> int:
    """Phase length: ``k + ceil(k/F) - 1`` (refined, Theorem 1) or ``k`` (Cao et al.)."""
    if cache_size < 1 or fetch_time < 1:
        raise ConfigurationError("cache_size and fetch_time must be positive")
    if not refined:
        return cache_size
    return cache_size + math.ceil(cache_size / fetch_time) - 1


def phase_boundaries(
    num_requests: int, cache_size: int, fetch_time: int, *, refined: bool = True
) -> List[Tuple[int, int]]:
    """Half-open request ranges ``[lo, hi)`` of the phases covering the sequence."""
    if num_requests < 0:
        raise ConfigurationError("num_requests must be non-negative")
    length = phase_length(cache_size, fetch_time, refined=refined)
    boundaries = []
    lo = 0
    while lo < num_requests:
        hi = min(lo + length, num_requests)
        boundaries.append((lo, hi))
        lo = hi
    return boundaries


@dataclass(frozen=True)
class PhaseBreakdown:
    """Per-phase elapsed-time decomposition of one simulated run."""

    boundaries: Tuple[Tuple[int, int], ...]
    elapsed_per_phase: Tuple[int, ...]
    stall_per_phase: Tuple[int, ...]

    @property
    def num_phases(self) -> int:
        """Number of phases covering the run."""
        return len(self.boundaries)

    def max_stall(self) -> int:
        """Largest per-phase stall (Theorem 1 predicts at most ``F`` on average)."""
        return max(self.stall_per_phase) if self.stall_per_phase else 0

    def average_stall(self) -> float:
        """Mean per-phase stall."""
        if not self.stall_per_phase:
            return 0.0
        return sum(self.stall_per_phase) / len(self.stall_per_phase)


def phase_breakdown(
    result: SimulationResult, *, refined: bool = True
) -> PhaseBreakdown:
    """Split a run's elapsed time across the Theorem 1 phases.

    Stall events are attributed to the phase of the request the processor was
    waiting for; serve events to the phase of the request served.
    """
    instance = result.instance
    boundaries = phase_boundaries(
        instance.num_requests,
        instance.cache_size,
        instance.fetch_time,
        refined=refined,
    )

    def phase_of(position: int) -> int:
        for idx, (lo, hi) in enumerate(boundaries):
            if lo <= position < hi:
                return idx
        return len(boundaries) - 1

    elapsed = [0] * len(boundaries)
    stall = [0] * len(boundaries)
    for event in result.events:
        if event.kind == EventKind.SERVE and event.request_index is not None:
            elapsed[phase_of(event.request_index)] += 1
        elif event.kind == EventKind.STALL and event.request_index is not None:
            idx = phase_of(event.request_index)
            elapsed[idx] += event.duration
            stall[idx] += event.duration
    return PhaseBreakdown(
        boundaries=tuple(boundaries),
        elapsed_per_phase=tuple(elapsed),
        stall_per_phase=tuple(stall),
    )
