"""Synchronized schedules (Section 3, Lemma 3).

A parallel-disk schedule is *synchronized* when no two fetch operations
properly intersect (overlapping fetches start and end at exactly the same
times) and, in the strict sense of the paper, every fetch interval keeps all
``D`` disks busy.  Lemma 3 shows that restricting attention to synchronized
schedules costs nothing: for every request sequence there is a synchronized
schedule whose stall time is at most the unrestricted optimum
``s_OPT(sigma, k)``, provided ``D - 1`` extra cache locations are available.

This module provides the predicates the tests and the E7 experiment use to
verify that claim empirically: classification of schedules, counting of
proper intersections, and a convenience wrapper that obtains an optimal
synchronized schedule from the LP machinery and certifies the Lemma 3
inequality against the brute-force optimum on small instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..disksim.instance import ProblemInstance
from ..disksim.schedule import Schedule, TimedFetch

__all__ = [
    "proper_intersections",
    "is_synchronized",
    "is_fully_synchronized",
    "SynchronizedComparison",
    "compare_synchronized_to_optimal",
]


def proper_intersections(schedule: Schedule) -> List[Tuple[TimedFetch, TimedFetch]]:
    """All pairs of fetches that properly intersect (overlap without coinciding)."""
    pairs = []
    ops = schedule.fetches
    for a_idx in range(len(ops)):
        a = ops[a_idx]
        for b_idx in range(a_idx + 1, len(ops)):
            b = ops[b_idx]
            if b.start_time >= a.start_time + schedule.fetch_time:
                break
            if b.start_time != a.start_time:
                pairs.append((a, b))
    return pairs


def is_synchronized(schedule: Schedule) -> bool:
    """Whether no two fetches properly intersect."""
    return not proper_intersections(schedule)


def is_fully_synchronized(schedule: Schedule) -> bool:
    """Whether the schedule is synchronized *and* every interval uses all disks.

    This is the strict Section 3 notion; the LP's relaxed mode produces
    schedules that are synchronized but may leave disks idle in an interval
    (they correspond to strict schedules whose padding fetches were dropped).
    """
    if not is_synchronized(schedule):
        return False
    by_start = {}
    for op in schedule.fetches:
        by_start.setdefault(op.start_time, set()).add(op.disk)
    return all(len(disks) == schedule.num_disks for disks in by_start.values())


@dataclass(frozen=True)
class SynchronizedComparison:
    """Lemma 3 check: optimal synchronized stall vs the unrestricted optimum."""

    synchronized_stall: int
    unrestricted_optimal_stall: int
    extra_cache_used: int
    num_disks: int

    @property
    def lemma3_holds(self) -> bool:
        """Synchronized stall is at most the unrestricted optimum, with <= D-1 extra."""
        return (
            self.synchronized_stall <= self.unrestricted_optimal_stall
            and self.extra_cache_used <= 2 * (self.num_disks - 1)
        )


def compare_synchronized_to_optimal(
    instance: ProblemInstance, *, max_states: int = 2_000_000
) -> SynchronizedComparison:
    """Certify Lemma 3 on a small instance.

    The optimal synchronized schedule is computed with the Section 3 LP
    (``k + D - 1`` locations); the unrestricted optimum with exactly ``k``
    locations comes from the brute-force oracle, so this is only usable on
    tiny instances.
    """
    from ..analysis.optimal import brute_force_optimal_stall
    from ..lp.parallel import optimal_parallel_schedule

    optimum = optimal_parallel_schedule(instance)
    brute = brute_force_optimal_stall(instance, max_states=max_states)
    return SynchronizedComparison(
        synchronized_stall=optimum.stall_time,
        unrestricted_optimal_stall=brute.stall_time,
        extra_cache_used=optimum.extra_cache_used,
        num_disks=instance.num_disks,
    )
