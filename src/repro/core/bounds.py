"""Closed-form approximation bounds proved in the paper (Section 2).

These are the quantitative claims of Theorems 1–3 and Corollaries 1–2 as pure
functions of the model parameters ``k`` (cache size), ``F`` (fetch time) and
``d`` (delay parameter).  The experiments compare *measured* approximation
ratios of the executable algorithms against these formulas; the property
tests check structural facts the paper states about them (monotonicity, the
√3 limit, Combination dominating both classical algorithms, the new Theorem 1
bound improving on the original Cao et al. bound).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = [
    "aggressive_bound_cao",
    "aggressive_bound_refined",
    "aggressive_lower_bound",
    "delay_bound",
    "best_delay_parameter",
    "delay_best_bound",
    "combination_bound",
    "conservative_bound",
    "SingleDiskBounds",
]

SQRT3 = math.sqrt(3.0)


def _validate(k: int, fetch_time: int) -> None:
    if k < 1:
        raise ConfigurationError(f"cache size k must be >= 1, got {k}")
    if fetch_time < 1:
        raise ConfigurationError(f"fetch time F must be >= 1, got {fetch_time}")


def aggressive_bound_cao(k: int, fetch_time: int) -> float:
    """Original Cao et al. upper bound for Aggressive: ``min{1 + F/k, 2}``."""
    _validate(k, fetch_time)
    return min(1.0 + fetch_time / k, 2.0)


def aggressive_bound_refined(k: int, fetch_time: int) -> float:
    """Theorem 1: Aggressive's ratio is at most ``min{1 + F/(k + ceil(k/F) - 1), 2}``.

    The refinement adds ``ceil(k/F) - 1`` to the denominator of the Cao et al.
    bound; it therefore never exceeds :func:`aggressive_bound_cao`.
    """
    _validate(k, fetch_time)
    denominator = k + math.ceil(k / fetch_time) - 1
    return min(1.0 + fetch_time / denominator, 2.0)


def aggressive_lower_bound(k: int, fetch_time: int) -> float:
    """Theorem 2: Aggressive's ratio is in general not smaller than
    ``min{1 + F/(k + (k-1)/(F-1)), 2}`` (for ``F > 1``).

    For ``F = 1`` prefetching is trivial (every fetch can be fully hidden
    behind a single request) and the lower bound degenerates to 1.
    """
    _validate(k, fetch_time)
    if fetch_time == 1:
        return 1.0
    denominator = k + (k - 1) / (fetch_time - 1)
    return min(1.0 + fetch_time / denominator, 2.0)


def conservative_bound() -> float:
    """Cao et al.: Conservative is a (tight) 2-approximation for elapsed time."""
    return 2.0


def delay_bound(d: int, fetch_time: int) -> float:
    """Theorem 3: Delay(d)'s approximation ratio is at most
    ``max{(d+F)/F, (d+2F)/(d+F), 3(d+F)/(d+2F)}``."""
    if d < 0:
        raise ConfigurationError(f"delay d must be non-negative, got {d}")
    if fetch_time < 1:
        raise ConfigurationError(f"fetch time F must be >= 1, got {fetch_time}")
    f = float(fetch_time)
    return max((d + f) / f, (d + 2 * f) / (d + f), 3 * (d + f) / (d + 2 * f))


def best_delay_parameter(fetch_time: int) -> int:
    """Corollary 1's choice ``d0 = ceil((sqrt(3) - 1) / 2 * F)``."""
    if fetch_time < 1:
        raise ConfigurationError(f"fetch time F must be >= 1, got {fetch_time}")
    return math.ceil((SQRT3 - 1.0) / 2.0 * fetch_time)


def delay_best_bound(fetch_time: int) -> float:
    """The ratio of Delay(d0) with the Corollary 1 parameter; tends to √3 as F grows."""
    return delay_bound(best_delay_parameter(fetch_time), fetch_time)


def combination_bound(k: int, fetch_time: int) -> float:
    """Corollary 2: the Combination algorithm achieves
    ``min{1 + F/(k + ceil(k/F) - 1), ratio(Delay(d0))}`` which tends to
    ``min{1 + F/(k + ceil(k/F) - 1), sqrt(3)}``."""
    return min(aggressive_bound_refined(k, fetch_time), delay_best_bound(fetch_time))


@dataclass(frozen=True)
class SingleDiskBounds:
    """All Section 2 bounds evaluated for one ``(k, F)`` pair.

    Convenience container used by the reporting code so a single row of an
    experiment table can show every theoretical value next to the measured
    ratios.
    """

    cache_size: int
    fetch_time: int

    @property
    def aggressive_cao(self) -> float:
        """``min{1 + F/k, 2}`` (Cao et al.)."""
        return aggressive_bound_cao(self.cache_size, self.fetch_time)

    @property
    def aggressive_refined(self) -> float:
        """Theorem 1 upper bound."""
        return aggressive_bound_refined(self.cache_size, self.fetch_time)

    @property
    def aggressive_lower(self) -> float:
        """Theorem 2 lower bound."""
        return aggressive_lower_bound(self.cache_size, self.fetch_time)

    @property
    def conservative(self) -> float:
        """Conservative's (tight) ratio of 2."""
        return conservative_bound()

    @property
    def best_delay(self) -> int:
        """Corollary 1's delay parameter d0."""
        return best_delay_parameter(self.fetch_time)

    @property
    def delay_best(self) -> float:
        """Ratio bound of Delay(d0)."""
        return delay_best_bound(self.fetch_time)

    @property
    def combination(self) -> float:
        """Corollary 2 bound for the Combination algorithm."""
        return combination_bound(self.cache_size, self.fetch_time)

    def as_dict(self) -> dict:
        """Plain-dict view for report tables."""
        return {
            "k": self.cache_size,
            "F": self.fetch_time,
            "aggressive_cao": self.aggressive_cao,
            "aggressive_refined": self.aggressive_refined,
            "aggressive_lower": self.aggressive_lower,
            "conservative": self.conservative,
            "d0": self.best_delay,
            "delay_best": self.delay_best,
            "combination": self.combination,
        }
