"""Fetch intervals — the time structure of the Section 3 linear program.

An interval ``I = (i, j)`` (paper notation, with ``0 <= i < j <= n``)
represents a synchronized fetch that starts after request ``r_i`` has been
served and completes before ``r_j`` is served.  Its *length* ``|I| = j-i-1``
is the number of requests that overlap the fetch, so ``F - |I|`` units of
stall are charged at its end; intervals longer than ``F`` are never useful
and are not enumerated.

The interval set — and the derived containment/coverage indices the LP
builder queries — depends only on ``(n, F)``, not on the blocks or the
layout.  :func:`interval_structure` therefore memoises one
:class:`IntervalStructure` per ``(n, F)`` pair, so solving several
algorithms' instances of the same shape (the common case in a ratio sweep:
one optimum per instance, many instances of identical length) reuses the
enumeration and the window index instead of rebuilding them per model.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterator, List, Tuple

from ..errors import ConfigurationError

__all__ = [
    "Interval",
    "IntervalStructure",
    "interval_structure",
    "enumerate_intervals",
    "intervals_within",
    "intervals_covering_slot",
]


@dataclass(frozen=True, order=True)
class Interval:
    """A fetch interval ``(start, end)`` in the paper's index convention."""

    start: int
    end: int

    def __post_init__(self):
        if self.end <= self.start:
            raise ConfigurationError(f"interval ({self.start}, {self.end}) is empty")

    @property
    def length(self) -> int:
        """Number of requests served during the fetch (the paper's ``|I|``)."""
        return self.end - self.start - 1

    def charged_stall(self, fetch_time: int) -> int:
        """Stall charged at the interval's end: ``max(0, F - |I|)``."""
        return max(0, fetch_time - self.length)

    def contains(self, other: "Interval") -> bool:
        """Containment in the paper's sense: ``other ⊆ self``."""
        return self.start <= other.start and other.end <= self.end

    def contained_in(self, lo: int, hi: int) -> bool:
        """Whether this interval lies within the window ``(lo, hi)``."""
        return lo <= self.start and self.end <= hi

    def covers_slot(self, request_index: int) -> bool:
        """Whether the fetch overlaps the service of 1-based request ``request_index``.

        Slot ``p`` is covered exactly when ``(p-1, p+1) ⊆ I``, i.e.
        ``start <= p - 1`` and ``end >= p + 1``.
        """
        return self.start <= request_index - 1 and self.end >= request_index + 1

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"I({self.start},{self.end})"


class IntervalStructure:
    """The shared per-``(n, F)`` interval enumeration and its derived indices.

    Instances are produced (and memoised) by :func:`interval_structure`.
    ``intervals`` is an immutable tuple in the canonical enumeration order;
    :meth:`window` and :meth:`covering` answer the two queries the LP
    builder makes — intervals contained in an epoch window, intervals
    overlapping a request slot — with per-structure memoisation, so the
    work is shared by every model built over the same sequence length and
    fetch time (warm-start reuse across algorithms and instances).
    """

    def __init__(self, num_requests: int, fetch_time: int):
        if num_requests < 1:
            raise ConfigurationError("num_requests must be positive")
        if fetch_time < 1:
            raise ConfigurationError("fetch_time must be positive")
        self.num_requests = num_requests
        self.fetch_time = fetch_time
        intervals: List[Interval] = []
        for start in range(num_requests):
            last_end = min(num_requests, start + fetch_time + 1)
            for end in range(start + 1, last_end + 1):
                if end > num_requests:
                    break
                intervals.append(Interval(start, end))
        self.intervals: Tuple[Interval, ...] = tuple(intervals)
        self._windows: Dict[Tuple[int, int], Tuple[Interval, ...]] = {}
        self._covering: Dict[int, Tuple[Interval, ...]] = {}

    def window(self, lo: int, hi: int) -> Tuple[Interval, ...]:
        """Intervals fully contained in the window ``(lo, hi)`` (memoised)."""
        key = (lo, hi)
        cached = self._windows.get(key)
        if cached is None:
            cached = tuple(i for i in self.intervals if i.contained_in(lo, hi))
            self._windows[key] = cached
        return cached

    def covering(self, request_index: int) -> Tuple[Interval, ...]:
        """Intervals overlapping 1-based request ``request_index`` (memoised)."""
        cached = self._covering.get(request_index)
        if cached is None:
            cached = tuple(i for i in self.intervals if i.covers_slot(request_index))
            self._covering[request_index] = cached
        return cached


@lru_cache(maxsize=64)
def interval_structure(num_requests: int, fetch_time: int) -> IntervalStructure:
    """The memoised :class:`IntervalStructure` for ``(num_requests, fetch_time)``."""
    return IntervalStructure(num_requests, fetch_time)


def enumerate_intervals(num_requests: int, fetch_time: int) -> List[Interval]:
    """All candidate fetch intervals for a sequence of ``num_requests`` requests.

    ``i`` ranges over ``0 .. n-1`` and ``j`` over ``i+1 .. min(n, i+F+1)``:
    intervals longer than ``F`` incur no stall but waste no less disk time, so
    restricting to ``|I| <= F`` loses no optimal solution (exactly the
    restriction used in the paper and in Albers–Garg–Leonardi).  Backed by
    the memoised :func:`interval_structure`; the returned list is a fresh
    copy the caller may mutate.
    """
    return list(interval_structure(num_requests, fetch_time).intervals)


def intervals_within(intervals: List[Interval], lo: int, hi: int) -> Iterator[Interval]:
    """Intervals fully contained in the window ``(lo, hi)``."""
    for interval in intervals:
        if interval.contained_in(lo, hi):
            yield interval


def intervals_covering_slot(intervals: List[Interval], request_index: int) -> Iterator[Interval]:
    """Intervals overlapping the service of 1-based request ``request_index``."""
    for interval in intervals:
        if interval.covers_slot(request_index):
            yield interval
