"""Fetch intervals — the time structure of the Section 3 linear program.

An interval ``I = (i, j)`` (paper notation, with ``0 <= i < j <= n``)
represents a synchronized fetch that starts after request ``r_i`` has been
served and completes before ``r_j`` is served.  Its *length* ``|I| = j-i-1``
is the number of requests that overlap the fetch, so ``F - |I|`` units of
stall are charged at its end; intervals longer than ``F`` are never useful
and are not enumerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..errors import ConfigurationError

__all__ = ["Interval", "enumerate_intervals", "intervals_within", "intervals_covering_slot"]


@dataclass(frozen=True, order=True)
class Interval:
    """A fetch interval ``(start, end)`` in the paper's index convention."""

    start: int
    end: int

    def __post_init__(self):
        if self.end <= self.start:
            raise ConfigurationError(f"interval ({self.start}, {self.end}) is empty")

    @property
    def length(self) -> int:
        """Number of requests served during the fetch (the paper's ``|I|``)."""
        return self.end - self.start - 1

    def charged_stall(self, fetch_time: int) -> int:
        """Stall charged at the interval's end: ``max(0, F - |I|)``."""
        return max(0, fetch_time - self.length)

    def contains(self, other: "Interval") -> bool:
        """Containment in the paper's sense: ``other ⊆ self``."""
        return self.start <= other.start and other.end <= self.end

    def contained_in(self, lo: int, hi: int) -> bool:
        """Whether this interval lies within the window ``(lo, hi)``."""
        return lo <= self.start and self.end <= hi

    def covers_slot(self, request_index: int) -> bool:
        """Whether the fetch overlaps the service of 1-based request ``request_index``.

        Slot ``p`` is covered exactly when ``(p-1, p+1) ⊆ I``, i.e.
        ``start <= p - 1`` and ``end >= p + 1``.
        """
        return self.start <= request_index - 1 and self.end >= request_index + 1

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"I({self.start},{self.end})"


def enumerate_intervals(num_requests: int, fetch_time: int) -> List[Interval]:
    """All candidate fetch intervals for a sequence of ``num_requests`` requests.

    ``i`` ranges over ``0 .. n-1`` and ``j`` over ``i+1 .. min(n, i+F+1)``:
    intervals longer than ``F`` incur no stall but waste no less disk time, so
    restricting to ``|I| <= F`` loses no optimal solution (exactly the
    restriction used in the paper and in Albers–Garg–Leonardi).
    """
    if num_requests < 1:
        raise ConfigurationError("num_requests must be positive")
    if fetch_time < 1:
        raise ConfigurationError("fetch_time must be positive")
    intervals: List[Interval] = []
    for start in range(num_requests):
        last_end = min(num_requests, start + fetch_time + 1)
        for end in range(start + 1, last_end + 1):
            if end > num_requests:
                break
            intervals.append(Interval(start, end))
    return intervals


def intervals_within(intervals: List[Interval], lo: int, hi: int) -> Iterator[Interval]:
    """Intervals fully contained in the window ``(lo, hi)``."""
    for interval in intervals:
        if interval.contained_in(lo, hi):
            yield interval


def intervals_covering_slot(intervals: List[Interval], request_index: int) -> Iterator[Interval]:
    """Intervals overlapping the service of 1-based request ``request_index``."""
    for interval in intervals:
        if interval.covers_slot(request_index):
            yield interval
