"""Static validation of synchronized-LP solutions (the Section 3 program).

The simulator already validates *schedules* dynamically; this module checks
*LP solutions* — assignments to the Section 3 variables ``x(I)``, ``f(I,a)``
and ``e(I,a)`` — against the model's own constraint matrices (slot
coverage, per-disk fetch counts, fetch/evict balance, epoch feasibility and
the ``[0, 1]`` bounds).  It is used by tests to make sure the matrices
encode what the docstrings claim, and by the Lemma 4 rounding code to
detect when a time-sliced solution stopped being a feasible 0/1 point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from .model import LPSolution, SynchronizedLPModel

__all__ = ["ValidationReport", "validate_solution", "solution_vector"]


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of checking a solution vector against the LP's constraints."""

    max_equality_violation: float
    max_inequality_violation: float
    max_bound_violation: float
    objective: float

    @property
    def is_feasible(self) -> bool:
        """Whether all constraint violations are within numerical tolerance."""
        tol = 1e-6
        return (
            self.max_equality_violation <= tol
            and self.max_inequality_violation <= tol
            and self.max_bound_violation <= tol
        )


def solution_vector(model: SynchronizedLPModel, solution: LPSolution) -> np.ndarray:
    """Reconstruct the raw variable vector corresponding to ``solution``."""
    vector = np.zeros(model.num_variables)
    for interval, value in solution.x.items():
        vector[model._x_index[interval]] = value
    for key, value in solution.fetches.items():
        vector[model._f_index[key]] = value
    for key, value in solution.evictions.items():
        vector[model._e_index[key]] = value
    return vector


def validate_solution(model: SynchronizedLPModel, solution: LPSolution) -> ValidationReport:
    """Check ``solution`` against the model's equality/inequality systems."""
    vector = solution_vector(model, solution)
    A_eq, b_eq = model.equality_system()
    A_ub, b_ub = model.inequality_system()
    eq_violation = 0.0
    ub_violation = 0.0
    if A_eq is not None:
        eq_violation = float(np.max(np.abs(A_eq @ vector - b_eq))) if A_eq.shape[0] else 0.0
    if A_ub is not None:
        ub_violation = float(np.max(A_ub @ vector - b_ub)) if A_ub.shape[0] else 0.0
        ub_violation = max(0.0, ub_violation)
    bound_violation = float(max(0.0, np.max(-vector), np.max(vector - 1.0)))
    return ValidationReport(
        max_equality_violation=eq_violation,
        max_inequality_violation=ub_violation,
        max_bound_violation=bound_violation,
        objective=float(np.dot(model.objective, vector)),
    )
