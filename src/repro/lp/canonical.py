"""Canonical instance identity: normalization and fingerprinting for optima.

Before this module existed, every consumer that wanted to cache or compare
optimum computations hashed (or canonicalised) problem instances its own
way: the experiment runner fingerprinted raw instance content, the ratio
harness solved whatever instance it was handed, and the brute-force oracle
explored states keyed by user-chosen block names.  Two instances that are
*equivalent for the optimum* — they differ only in the names of
never-requested warm blocks — would therefore never share a cached
optimum.  This module is the single definition both of *normalization*
(the equivalence-class representative an optimum is solved on) and of the
*fingerprint* (the SHA-256 cache key the optimum is stored under).

Normalization
-------------
The optimal stall time of an instance depends on the request sequence, the
cache size ``k``, the fetch time ``F``, the placement of the *requested*
blocks on disks, and the set of warm (initially resident) blocks — but
never on the *names* of warm blocks that are not requested: such blocks
only ever occupy slots until they are evicted once, so they are pairwise
interchangeable (this is exactly the role of the Section 3 dummy blocks).
:func:`normalize_instance` renames them to ``__nr0, __nr1, ...`` (in
sorted order, so the map is deterministic) and drops them from the disk
layout: a never-fetched block's disk assignment cannot influence any
schedule.

Fingerprint
-----------
:func:`instance_fingerprint` hashes the canonical payload of the
*normalized* instance — sequence, ``k``, ``F``, ``D``, warm set and the
requested blocks' placement — plus an optional solver-configuration key,
with SHA-256.  Equal fingerprints therefore guarantee equal optima, and
equivalent instances produced by different code paths share cache entries.
"""

from __future__ import annotations

import hashlib
from typing import List

from .._typing import BlockId
from ..disksim.disk import DiskLayout
from ..disksim.instance import ProblemInstance

__all__ = [
    "NEVER_REQUESTED_PREFIX",
    "never_requested_blocks",
    "normalize_instance",
    "canonical_payload",
    "instance_fingerprint",
]

#: Prefix of the canonical names normalization gives never-requested warm blocks.
NEVER_REQUESTED_PREFIX = "__nr"


def never_requested_blocks(instance: ProblemInstance) -> List[BlockId]:
    """The initially resident blocks the sequence never requests, sorted.

    These are the interchangeable blocks normalization renames; the LP
    model's "evicted at most once" constraint (constraint 6) applies to
    exactly this set plus the synthesised dummies.
    """
    sequence = instance.sequence
    return sorted(
        (b for b in instance.initial_cache if not sequence.contains_block(b)),
        key=repr,
    )


def normalize_instance(instance: ProblemInstance) -> ProblemInstance:
    """The canonical representative of ``instance``'s optimum-equivalence class.

    Never-requested warm blocks are renamed to ``__nr{i}`` (deterministic:
    the rename follows their sorted order) and removed from the disk
    layout; everything that can influence the optimal stall time — the
    sequence, ``k``, ``F``, the requested blocks' placement and the *number*
    of never-requested warm blocks — is preserved.  Instances that are
    already canonical (no never-requested warm blocks, which is every cold
    instance) are returned unchanged.
    """
    never = never_requested_blocks(instance)
    if not never:
        return instance
    renamed = {block: f"{NEVER_REQUESTED_PREFIX}{i}" for i, block in enumerate(never)}
    initial = frozenset(renamed.get(block, block) for block in instance.initial_cache)
    layout = DiskLayout(
        instance.num_disks,
        {b: instance.disk_of(b) for b in instance.requested_blocks},
    )
    return ProblemInstance(
        sequence=instance.sequence,
        cache_size=instance.cache_size,
        fetch_time=instance.fetch_time,
        layout=layout,
        initial_cache=initial,
    )


def canonical_payload(instance: ProblemInstance, solver_key: str = "") -> str:
    """The exact string :func:`instance_fingerprint` hashes (exposed for tests).

    Built from the *normalized* instance, so equivalent instances produce
    identical payloads.  Covers the request sequence, ``k``, ``F``, the warm
    set, the disk count and the placement of every requested block, plus the
    caller's solver-configuration key.
    """
    normalized = normalize_instance(instance)
    parts = [
        f"k={normalized.cache_size}",
        f"F={normalized.fetch_time}",
        "warm=" + ";".join(sorted(repr(b) for b in normalized.initial_cache)),
        "seq=" + "\x00".join(repr(b) for b in normalized.sequence.requests),
        f"D={normalized.num_disks}",
        "placement=" + ";".join(
            f"{b!r}->{normalized.disk_of(b)}"
            for b in sorted(normalized.requested_blocks, key=repr)
        ),
        f"solver={solver_key}",
    ]
    return "|".join(parts)


def instance_fingerprint(instance: ProblemInstance, solver_key: str = "") -> str:
    """SHA-256 fingerprint of the normalized instance + solver configuration.

    This is the cache key of the optimum service: equal fingerprints imply
    equal optima (same canonical instance, same solver settings), so disk
    and in-memory optimum caches can be shared across serial runs, process
    pools and repeated invocations.
    """
    return hashlib.sha256(canonical_payload(instance, solver_key).encode()).hexdigest()
