"""Theorem 4 driver: minimum-stall schedules for parallel disk systems.

Given a request sequence over ``D`` disks, :func:`optimal_parallel_schedule`
computes a prefetching/caching schedule whose stall time is at most the
optimal stall time ``s_OPT(sigma, k)`` of schedules that use only ``k`` cache
locations, while itself using at most ``2(D - 1)`` extra locations — the
paper's Theorem 4.  The pipeline is:

1. build the synchronized LP over ``k + D - 1`` cache locations
   (:class:`~repro.lp.model.SynchronizedLPModel`); by Lemma 3 its optimum is
   at most ``s_OPT(sigma, k)``;
2. obtain an integral solution — either the LP relaxation happens to be
   integral, or the paper's time-slicing rounding succeeds
   (:mod:`repro.lp.rounding`), or the exact MILP is solved (the documented
   substitution for the paper's integrality argument);
3. execute the schedule with the simulator to certify its actual stall time
   and peak cache usage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Literal, Optional

from ..disksim.executor import SimulationResult, execute_interval_schedule
from ..disksim.instance import ProblemInstance
from ..disksim.schedule import IntervalSchedule
from ..errors import InvalidScheduleError, SolverError
from .model import LPSolution, SynchronizedLPModel
from .rounding import round_solution
from .solver import solve_integral, solve_relaxation

__all__ = ["ParallelOptimum", "optimal_parallel_schedule"]

Method = Literal["auto", "milp", "lp-rounding"]


@dataclass(frozen=True)
class ParallelOptimum:
    """A certified minimum-stall parallel-disk schedule."""

    instance: ProblemInstance
    schedule: IntervalSchedule
    solution: LPSolution
    execution: SimulationResult
    lp_lower_bound: float
    method_used: str
    allowed_capacity: int

    @property
    def stall_time(self) -> int:
        """Actual stall time of the schedule (measured by the simulator)."""
        return self.execution.stall_time

    @property
    def elapsed_time(self) -> int:
        """Actual elapsed time of the schedule."""
        return self.execution.elapsed_time

    @property
    def extra_cache_used(self) -> int:
        """Peak cache slots used beyond the instance's ``k`` (paper bound: 2(D-1))."""
        return max(0, self.execution.metrics.peak_cache_used - self.instance.cache_size)

    @property
    def charged_stall(self) -> int:
        """Stall charged by the LP objective for the selected intervals."""
        return self.solution.charged_stall(self.instance.fetch_time)


def optimal_parallel_schedule(
    instance: ProblemInstance,
    *,
    method: Method = "auto",
    extra_cache: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> ParallelOptimum:
    """Compute a schedule with stall time at most ``s_OPT(sigma, k)`` (Theorem 4).

    Parameters
    ----------
    instance:
        The parallel-disk problem instance (single-disk instances are accepted
        and reduce to the exact optimum).
    method:
        ``"auto"`` (default) uses the LP relaxation when it is integral and
        falls back to the exact MILP otherwise; ``"milp"`` always solves the
        MILP; ``"lp-rounding"`` follows the paper's rounding procedure and
        falls back to the MILP only if the rounded schedule fails validation.
    extra_cache:
        Cache locations granted to the LP beyond ``k``; defaults to ``D - 1``
        as in the paper.  The executed schedule may use up to ``D - 1`` more
        (rounding), never exceeding ``k + 2(D - 1)``.
    time_limit:
        Optional MILP time limit in seconds.
    """
    num_disks = instance.num_disks
    if extra_cache is None:
        extra_cache = num_disks - 1
    allowed_capacity = instance.cache_size + extra_cache + (num_disks - 1)

    started = time.perf_counter()
    model = SynchronizedLPModel(
        instance,
        extra_cache=extra_cache,
        require_all_disks=(method == "lp-rounding"),
    )
    relaxation = solve_relaxation(model)
    lower_bound = relaxation.objective

    if method == "lp-rounding":
        rounded = round_solution(model, relaxation)
        try:
            execution = execute_interval_schedule(
                model.augmented_instance,
                rounded.schedule,
                capacity_override=allowed_capacity,
            )
            if execution.stall_time <= lower_bound + 1e-6:
                return ParallelOptimum(
                    instance=instance,
                    schedule=rounded.schedule,
                    solution=relaxation,
                    execution=execution.with_solve_seconds(
                        time.perf_counter() - started
                    ),
                    lp_lower_bound=lower_bound,
                    method_used="lp-rounding",
                    allowed_capacity=allowed_capacity,
                )
        except InvalidScheduleError:
            pass
        # The rounded schedule did not validate (see module docstring of
        # repro.lp.rounding): fall back to the exact MILP.
        model = SynchronizedLPModel(instance, extra_cache=extra_cache, require_all_disks=False)
        relaxation = solve_relaxation(model)
        lower_bound = min(lower_bound, relaxation.objective)
        method_used = "lp-rounding->milp"
    elif method == "milp":
        method_used = "milp"
    elif method == "auto":
        method_used = "auto"
    else:
        raise SolverError(f"unknown method {method!r}")

    if relaxation.is_integral and method != "milp":
        solution = relaxation
        if method_used == "auto":
            method_used = "lp-integral"
    else:
        solution = solve_integral(model, time_limit=time_limit)
        if method_used == "auto":
            method_used = "milp"

    schedule = model.extract_schedule(solution)
    solve_seconds = time.perf_counter() - started
    execution = execute_interval_schedule(
        model.augmented_instance, schedule, capacity_override=allowed_capacity
    )
    return ParallelOptimum(
        instance=instance,
        schedule=schedule,
        solution=solution,
        execution=execution.with_solve_seconds(solve_seconds),
        lp_lower_bound=lower_bound,
        method_used=method_used,
        allowed_capacity=allowed_capacity,
    )
