"""The optimum service: cached, batched, parallel-safe LP/optimum computation.

The paper's headline numbers (Theorems 1–4) are competitive ratios against
the optimum certified by the Section 3 LP — exact on a single disk
(:mod:`repro.lp.single_disk`), the Theorem 4 schedule on parallel disks
(:mod:`repro.lp.parallel`) — which makes the optimum solve the most
expensive stage of every ratio experiment.  This module turns it into an
infrastructure service instead of an ad-hoc call:

* **Canonical identity** — every instance is normalized and fingerprinted
  through :mod:`repro.lp.canonical` (SHA-256 over the normalized instance
  plus the solver configuration), so equivalent instances produced by any
  code path share one optimum.
* **Layered cache** — an in-memory map per service plus up to two durable
  layers: a duck-typed *store* (any object with
  ``get_optimum(fingerprint)``/``put_optimum(record)`` — in practice the
  SQLite :class:`~repro.analysis.store.RunStore`, which is concurrent-
  writer safe by construction) and/or a legacy JSON disk cache (one file
  per fingerprint, written atomically via ``os.replace``).  Both are safe
  between serial runs and pool workers: concurrent writers of the same
  fingerprint write identical bytes, and a torn read is treated as a miss
  and re-solved.
* **One solver policy** — :class:`SolverConfig` pins the method
  (``auto | milp | lp-rounding``), the extra-cache allowance, the MILP time
  limit and whether the dominance-pruned single-disk model is used, and is
  part of the fingerprint, so records solved under different policies can
  never be confused.
* **Accounted cost** — every :class:`OptimumRecord` carries the solve
  wall-clock seconds (as measured by the LP drivers and recorded on
  ``SimMetrics.solve_seconds``), making solver cost a first-class metric of
  the experiment pipeline.

The experiment runner (:mod:`repro.analysis.runner`) fans
:func:`compute_optimum_record` out alongside algorithm simulations and
attaches the results to its :class:`~repro.analysis.results.RunRecord` s;
the ratio harness (:mod:`repro.analysis.ratios`) routes its per-instance
optima through the same service.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Mapping, Optional

from ..disksim.instance import ProblemInstance
from ..errors import ConfigurationError
from .canonical import instance_fingerprint, normalize_instance
from .parallel import optimal_parallel_schedule
from .single_disk import optimal_single_disk

__all__ = ["SolverConfig", "OptimumRecord", "OptimumService", "compute_optimum_record"]

_METHODS = ("auto", "milp", "lp-rounding")


@dataclass(frozen=True)
class SolverConfig:
    """Everything that can change what an optimum solve returns.

    The canonical :meth:`key` participates in the instance fingerprint, so
    optima solved under different configurations never share cache entries.
    ``method``/``extra_cache``/``time_limit`` are forwarded to
    :func:`repro.lp.parallel.optimal_parallel_schedule` (single-disk solves
    are always exact); ``reduced_single_disk`` selects the dominance-pruned
    single-disk model of :mod:`repro.lp.model`, which is property-tested to
    produce the same optimum as the full model.
    """

    method: str = "auto"
    extra_cache: Optional[int] = None
    time_limit: Optional[float] = None
    reduced_single_disk: bool = True

    def __post_init__(self):
        if self.method not in _METHODS:
            raise ConfigurationError(
                f"unknown optimum method {self.method!r}; available: {', '.join(_METHODS)}"
            )

    def key(self) -> str:
        """Canonical string form hashed into every optimum fingerprint."""
        extra = "default" if self.extra_cache is None else str(self.extra_cache)
        limit = "none" if self.time_limit is None else repr(float(self.time_limit))
        return (
            f"method={self.method};extra_cache={extra};time_limit={limit};"
            f"reduced={int(self.reduced_single_disk)}"
        )


@dataclass(frozen=True)
class OptimumRecord:
    """One certified optimum: the values, their provenance and their cost."""

    fingerprint: str
    stall_time: int
    elapsed_time: int
    lp_lower_bound: float
    method_used: str
    solve_seconds: float
    extra_cache_used: int = 0
    num_requests: int = 0
    solver_key: str = ""

    def as_json_dict(self) -> Dict[str, object]:
        """JSON-safe encoding (see :meth:`from_json_dict`)."""
        return {
            "fingerprint": self.fingerprint,
            "stall_time": self.stall_time,
            "elapsed_time": self.elapsed_time,
            "lp_lower_bound": self.lp_lower_bound,
            "method_used": self.method_used,
            "solve_seconds": self.solve_seconds,
            "extra_cache_used": self.extra_cache_used,
            "num_requests": self.num_requests,
            "solver_key": self.solver_key,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, object]) -> "OptimumRecord":
        """Rebuild a record from :meth:`as_json_dict` output."""
        return cls(
            fingerprint=str(payload["fingerprint"]),
            stall_time=int(payload["stall_time"]),
            elapsed_time=int(payload["elapsed_time"]),
            lp_lower_bound=float(payload["lp_lower_bound"]),
            method_used=str(payload["method_used"]),
            solve_seconds=float(payload["solve_seconds"]),
            extra_cache_used=int(payload.get("extra_cache_used", 0)),
            num_requests=int(payload.get("num_requests", 0)),
            solver_key=str(payload.get("solver_key", "")),
        )


def compute_optimum_record(instance: ProblemInstance, config: SolverConfig) -> OptimumRecord:
    """Solve ``instance``'s optimum under ``config`` (no caching).

    Module-level on purpose: it is the single chokepoint every LP solve of
    the service goes through, so tests can monkeypatch it to count solves —
    or to fail loudly when a code path that must be a pure cache hit would
    re-solve.  Single-disk instances get the exact optimum
    (:func:`optimal_single_disk`, reduced model per the config); multi-disk
    instances get the Theorem 4 schedule
    (:func:`optimal_parallel_schedule`), whose stall is at most
    ``s_OPT(sigma, k)``.
    """
    normalized = normalize_instance(instance)
    if normalized.num_disks == 1:
        optimum = optimal_single_disk(
            normalized,
            time_limit=config.time_limit,
            reduced=config.reduced_single_disk,
        )
        method_used = "single-disk-exact"
        extra_cache_used = 0
    else:
        optimum = optimal_parallel_schedule(
            normalized,
            method=config.method,
            extra_cache=config.extra_cache,
            time_limit=config.time_limit,
        )
        method_used = optimum.method_used
        extra_cache_used = optimum.extra_cache_used
    return OptimumRecord(
        fingerprint=instance_fingerprint(instance, config.key()),
        stall_time=optimum.stall_time,
        elapsed_time=optimum.elapsed_time,
        lp_lower_bound=optimum.lp_lower_bound,
        method_used=method_used,
        solve_seconds=optimum.execution.metrics.solve_seconds,
        extra_cache_used=extra_cache_used,
        num_requests=instance.num_requests,
        solver_key=config.key(),
    )


class OptimumService:
    """Facade over optimum computation: fingerprint, look up, solve, store.

    One service instance pins one :class:`SolverConfig`.  ``cache_dir``
    enables the legacy JSON disk cache (one ``<fingerprint>.json`` per
    optimum, atomic writes); ``store`` plugs in a durable record store —
    any object exposing ``get_optimum(fingerprint)`` and
    ``put_optimum(record)``, in practice the runner's SQLite
    :class:`~repro.analysis.store.RunStore`.  Without either the service
    still deduplicates in memory, so repeated algorithms over the same
    instance within a process solve one LP.  ``solves`` counts the LP
    computations actually performed by *this* service object — the
    "re-running is a 100% cache hit" acceptance tests assert it stays 0 on
    warmed caches.
    """

    def __init__(
        self,
        cache_dir: Optional[os.PathLike] = None,
        config: Optional[SolverConfig] = None,
        store=None,
    ):
        self.config = config or SolverConfig()
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.record_store = store
        self._memory: Dict[str, OptimumRecord] = {}
        self.solves = 0

    # -- identity -------------------------------------------------------------------

    def fingerprint(self, instance: ProblemInstance) -> str:
        """The canonical cache key of ``instance`` under this service's config."""
        return instance_fingerprint(instance, self.config.key())

    # -- cache ----------------------------------------------------------------------

    def _path(self, fingerprint: str) -> Path:
        return self.cache_dir / f"{fingerprint}.json"

    def lookup(self, fingerprint: str) -> Optional[OptimumRecord]:
        """The cached record under ``fingerprint``: memory, then store, then disk."""
        record = self._memory.get(fingerprint)
        if record is not None:
            return record
        if self.record_store is not None:
            record = self.record_store.get_optimum(fingerprint)
            if record is not None:
                self._memory[fingerprint] = record
                return record
        if self.cache_dir is None:
            return None
        path = self._path(fingerprint)
        try:
            payload = json.loads(path.read_text())
            record = OptimumRecord.from_json_dict(payload)
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            # Missing, torn or pre-format entries are misses, never fatal.
            return None
        self._memory[fingerprint] = record
        return record

    def store(self, record: OptimumRecord) -> None:
        """Cache ``record`` in memory and in every durable layer.

        The record store serializes concurrent writers itself (SQLite
        transactions); the JSON layer writes to a process-unique temporary
        file first and publishes it with ``os.replace``, so a concurrent
        reader sees either the previous state or the complete record —
        never a torn file — and concurrent writers of the same fingerprint
        are idempotent.
        """
        self._memory[record.fingerprint] = record
        if self.record_store is not None:
            self.record_store.put_optimum(record)
        if self.cache_dir is None:
            return
        path = self._path(record.fingerprint)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_text(json.dumps(record.as_json_dict(), sort_keys=True))
        os.replace(tmp, path)

    def cached_optimum(self, instance: ProblemInstance) -> Optional[OptimumRecord]:
        """The cached optimum of ``instance``, or None without solving."""
        return self.lookup(self.fingerprint(instance))

    # -- the one entry point ---------------------------------------------------------

    def optimum(self, instance: ProblemInstance) -> OptimumRecord:
        """The optimum of ``instance``: cache hit or solve-and-store."""
        fingerprint = self.fingerprint(instance)
        record = self.lookup(fingerprint)
        if record is None:
            record = compute_optimum_record(instance, self.config)
            if record.fingerprint != fingerprint:  # pragma: no cover - safety net
                record = replace(record, fingerprint=fingerprint)
            self.solves += 1
            self.store(record)
        return record
