"""Endpoint normalisation of synchronized-LP solutions (Section 3 of the paper).

An (integral or fractional) solution of the synchronized LP may select two
intervals ``I = (i, j)`` and ``I' = (i', j')`` with ``I`` strictly nested in
``I'`` (``i' < i`` and ``j < j'``).  Such a pair is *not* realisable at its
charged stall by executing the fetches serially: the inner interval's fetch
consumes disk time inside the outer interval's window, so the outer fetch can
no longer overlap all of its |I'| requests.  The paper therefore modifies the
solution so that any two selected intervals where one contains the other
share an endpoint: the pair ``(I, I')`` is replaced by ``J = (i', j)`` and
``J' = (i, j')``, with ``J`` taking over ``I``'s fetches and ``I'``'s
evictions and ``J'`` taking over ``I'``'s fetches and ``I``'s evictions.  The
objective is unchanged (``|I| + |I'| = |J| + |J'|``) and the covered request
slots are preserved, so the modified solution is still optimal and feasible —
but now realisable.

This module implements that transformation for integral solutions (the form
in which the solvers hand solutions to schedule extraction).  Termination is
guaranteed because the sum of squared interval spans strictly decreases with
every replacement.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .._typing import BlockId
from ..errors import SolverError
from .intervals import Interval
from .model import LPSolution

__all__ = ["normalize_integral_solution"]

_MAX_ITERATIONS = 100_000


def normalize_integral_solution(solution: LPSolution) -> LPSolution:
    """Return an equivalent integral solution whose nested intervals share endpoints."""
    if not solution.is_integral:
        raise SolverError("normalize_integral_solution expects an integral solution")

    selected: Set[Interval] = {i for i, v in solution.x.items() if v > 0.5}
    fetch_map: Dict[Interval, List[BlockId]] = {i: [] for i in selected}
    evict_map: Dict[Interval, List[BlockId]] = {i: [] for i in selected}
    for (interval, block), value in solution.fetches.items():
        if value > 0.5 and interval in fetch_map:
            fetch_map[interval].append(block)
    for (interval, block), value in solution.evictions.items():
        if value > 0.5 and interval in evict_map:
            evict_map[interval].append(block)

    for _ in range(_MAX_ITERATIONS):
        pair = _find_strictly_nested(selected)
        if pair is None:
            break
        inner, outer = pair
        replacement_a = Interval(outer.start, inner.end)
        replacement_b = Interval(inner.start, outer.end)
        if replacement_a in selected or replacement_b in selected:
            # Cannot merge without exceeding the x <= 1 bound; such a
            # configuration would violate the slot constraints of the original
            # solution, so treat it as a modelling error.
            raise SolverError(
                f"normalisation would duplicate interval {replacement_a} or {replacement_b}"
            )
        selected.discard(inner)
        selected.discard(outer)
        selected.add(replacement_a)
        selected.add(replacement_b)
        fetch_map[replacement_a] = fetch_map.pop(inner)
        evict_map[replacement_a] = evict_map.pop(outer)
        fetch_map[replacement_b] = fetch_map.pop(outer)
        evict_map[replacement_b] = evict_map.pop(inner)
    else:  # pragma: no cover - safety net
        raise SolverError("endpoint normalisation did not terminate")

    x = {interval: 1.0 for interval in selected}
    fetches = {
        (interval, block): 1.0 for interval, blocks in fetch_map.items() for block in blocks
    }
    evictions = {
        (interval, block): 1.0 for interval, blocks in evict_map.items() for block in blocks
    }
    return LPSolution(
        objective=solution.objective,
        x=x,
        fetches=fetches,
        evictions=evictions,
        is_integral=True,
    )


def _find_strictly_nested(selected: Set[Interval]) -> Tuple[Interval, Interval] | None:
    """A pair (inner, outer) of selected intervals nested with both endpoints strict."""
    ordered = sorted(selected)
    for outer_idx, outer in enumerate(ordered):
        for inner in ordered[outer_idx + 1 :]:
            if inner.start >= outer.end:
                break
            if outer.start < inner.start and inner.end < outer.end:
                return inner, outer
    return None
