"""Optimal single-disk prefetching/caching schedules.

For ``D = 1`` every schedule is trivially synchronized (a single disk never
runs two fetches at once), so the Section 3 model with ``extra_cache = 0``
computes the true optimum ``s_OPT(sigma, k)`` — this is the Albers–Garg–
Leonardi result that optimal single-disk schedules can be found in polynomial
time, realised here through the same LP as the parallel case (variables
``x(I)``/``f(I,a)``/``e(I,a)``, the Section 3 constraints, objective
``sum_I x(I)(F - |I|)``; see :mod:`repro.lp.model`).  The single-disk
experiments (E1–E5) use these optima as the denominator of every measured
approximation ratio.

``reduced=True`` builds the dominance-pruned single-disk model
(``aggregate_never_requested`` — interchangeable never-requested resident
blocks share one aggregated eviction budget), which shrinks cold-instance
models by roughly the cache-size factor without changing the optimum; the
equivalence is property-tested against the full model.  The wall-clock cost
of build + solve + extraction is recorded on the returned execution's
metrics (``SimMetrics.solve_seconds``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..disksim.executor import SimulationResult, execute_interval_schedule
from ..disksim.instance import ProblemInstance
from ..disksim.schedule import IntervalSchedule
from ..errors import ConfigurationError
from .model import LPSolution, SynchronizedLPModel
from .solver import solve_integral, solve_relaxation

__all__ = ["SingleDiskOptimum", "optimal_single_disk", "optimal_single_disk_elapsed"]


@dataclass(frozen=True)
class SingleDiskOptimum:
    """An optimal single-disk schedule plus its certified stall time."""

    instance: ProblemInstance
    schedule: IntervalSchedule
    solution: LPSolution
    execution: SimulationResult
    lp_lower_bound: float

    @property
    def stall_time(self) -> int:
        """Optimal stall time ``s_OPT(sigma, k)`` (as executed by the simulator)."""
        return self.execution.stall_time

    @property
    def elapsed_time(self) -> int:
        """Optimal elapsed time ``n + s_OPT(sigma, k)``."""
        return self.execution.elapsed_time

    @property
    def charged_stall(self) -> int:
        """Stall charged by the LP objective (an upper bound on the executed stall)."""
        return self.solution.charged_stall(self.instance.fetch_time)


def optimal_single_disk(
    instance: ProblemInstance,
    *,
    time_limit: Optional[float] = None,
    reduced: bool = False,
) -> SingleDiskOptimum:
    """Compute an optimal single-disk schedule for ``instance``.

    ``reduced=True`` uses the dominance-pruned model (same optimum, smaller
    LP — see the module docstring).  Raises :class:`ConfigurationError` if
    the instance uses more than one disk; use
    :func:`repro.lp.parallel.optimal_parallel_schedule` for the multi-disk
    problem.
    """
    if instance.num_disks != 1:
        raise ConfigurationError(
            f"optimal_single_disk needs a single-disk instance, got D={instance.num_disks}"
        )
    started = time.perf_counter()
    model = SynchronizedLPModel(
        instance,
        extra_cache=0,
        require_all_disks=False,
        aggregate_never_requested=reduced,
    )
    relaxation = solve_relaxation(model)
    solution = relaxation if relaxation.is_integral else solve_integral(model, time_limit=time_limit)
    schedule = model.extract_schedule(solution)
    solve_seconds = time.perf_counter() - started
    execution = execute_interval_schedule(
        model.augmented_instance, schedule, capacity_override=model.capacity
    )
    return SingleDiskOptimum(
        instance=instance,
        schedule=schedule,
        solution=solution,
        execution=execution.with_solve_seconds(solve_seconds),
        lp_lower_bound=relaxation.objective,
    )


def optimal_single_disk_elapsed(
    instance: ProblemInstance, *, time_limit: Optional[float] = None
) -> int:
    """Shortcut returning only the optimal elapsed time (requests + minimum stall)."""
    return optimal_single_disk(instance, time_limit=time_limit).elapsed_time
