"""The synchronized prefetching/caching linear program (Section 3 of the paper).

Variables
---------
* ``x(I)``   for every candidate fetch interval ``I`` — 1 iff a (synchronized)
  fetch is performed in ``I``.
* ``f(I,a)`` — 1 iff block ``a`` is fetched in interval ``I``.
* ``e(I,a)`` — 1 iff block ``a`` is evicted in interval ``I``.

The objective minimises the charged stall ``sum_I x(I) (F - |I|)``.

Constraints (following the paper, with the variable-sparsity refinements
described below):

1. at most one fetch interval overlaps the service of any request;
2. per interval and disk, the number of blocks fetched from that disk equals
   (strict mode) or is at most (relaxed mode) ``x(I)``;
3. per interval, #fetches = #evictions (cache occupancy stays constant);
4. every requested block is in cache at each of its references: it is fetched
   before its first reference (unless initially resident), and between
   consecutive references it is fetched exactly as often as it is evicted;
5. blocks are never fetched or evicted during an interval overlapping one of
   their own references;
6. initially-resident blocks that are never requested can be evicted at most
   once.

Variable sparsity
-----------------
``f(I,a)``/``e(I,a)`` variables are only created for intervals ``I`` lying
inside one of ``a``'s *epochs* (the windows between consecutive references,
plus the prefix before the first and the suffix after the last reference).
Constraint 5 then holds by construction and the model size drops from
``O(n^2 F)`` per block to ``O(n F)`` summed over all blocks.

Dominance-pruned reduced model (single disk)
--------------------------------------------
With ``aggregate_never_requested=True`` (single-disk models only) the
per-block eviction variables of the never-requested resident blocks — the
user's unreferenced warm blocks plus every synthesised dummy, typically
``k`` blocks on a cold instance — are replaced by a single aggregate
variable ``e(I, __nragg)`` per interval with one budget constraint
``sum_I e(I, __nragg) <= #never-requested``.  The pruning is a dominance
argument: never-requested resident blocks are pairwise interchangeable
(each is fetched never and evicted at most once, so any one of them
dominates any other as an eviction victim), and on a single disk each
interval performs at most one fetch — hence at most one eviction — so the
aggregate variable stays within the ``[0, 1]`` bounds shared by all
variables.  Solutions map both ways without changing the objective;
:meth:`SynchronizedLPModel.solution_from_vector` decomposes integral
aggregate evictions back into concrete block names so schedule extraction
and execution are unchanged.  The model drops from
``O(k·nF)`` eviction variables to ``O(nF)`` on cold instances, which is
the bulk of the single-disk LP.

Deviations from the paper (documented substitutions)
----------------------------------------------------
* The paper assumes the cache initially holds ``k + D - 1`` blocks that are
  never requested.  The builder synthesises such dummy blocks to fill the
  effective capacity whatever the user-supplied initial cache is, so warm
  starts are supported.
* In strict mode (``require_all_disks=True``, the paper's synchronized
  schedules) every selected interval must fetch one block from *every* disk.
  Late in the sequence a disk may have no requested block left to fetch; the
  paper's Lemma 3 pads such intervals with "an arbitrary block from that
  disk".  The builder adds one never-requested *padding block* per disk whose
  fetch and eviction amounts are tied together per interval, which makes the
  padding representable without affecting the objective.
* Relaxed mode (the default for computing optimal synchronized schedules via
  the exact MILP) replaces the per-disk equality by ``<=``, i.e. intervals may
  leave some disks idle.  Every strict solution maps to a relaxed one by
  dropping padding fetches, so the relaxed optimum is never worse and the
  Lemma 3 guarantee (stall <= s_OPT(sigma, k) with ``k + D - 1`` locations)
  carries over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from .._typing import BlockId
from ..disksim.instance import ProblemInstance
from ..disksim.schedule import IntervalFetch, IntervalSchedule
from ..errors import ConfigurationError, SolverError
from .intervals import Interval, interval_structure

__all__ = [
    "LPSolution",
    "SynchronizedLPModel",
    "DUMMY_PREFIX",
    "PADDING_PREFIX",
    "AGGREGATE_BLOCK",
]

#: Prefix of synthesised never-requested blocks that fill the initial cache.
DUMMY_PREFIX = "__initdummy"
#: Prefix of synthesised per-disk padding blocks (strict mode only).
PADDING_PREFIX = "__pad"
#: Sentinel block standing for *any* never-requested resident block in the
#: dominance-pruned reduced model (``aggregate_never_requested=True``).
AGGREGATE_BLOCK = "__nragg"


@dataclass(frozen=True)
class LPSolution:
    """A solution of the synchronized LP (fractional or integral)."""

    objective: float
    x: Dict[Interval, float]
    fetches: Dict[Tuple[Interval, BlockId], float]
    evictions: Dict[Tuple[Interval, BlockId], float]
    is_integral: bool

    def selected_intervals(self, threshold: float = 0.5) -> List[Interval]:
        """Intervals with ``x(I)`` above ``threshold``, in the canonical order."""
        chosen = [interval for interval, value in self.x.items() if value > threshold]
        return sorted(chosen)

    def charged_stall(self, fetch_time: int, threshold: float = 0.5) -> int:
        """Total charged stall of the selected intervals (integral solutions)."""
        return sum(i.charged_stall(fetch_time) for i in self.selected_intervals(threshold))


class SynchronizedLPModel:
    """Builder/solver wrapper for the synchronized prefetching/caching LP."""

    def __init__(
        self,
        instance: ProblemInstance,
        *,
        extra_cache: Optional[int] = None,
        require_all_disks: bool = False,
        aggregate_never_requested: bool = False,
    ):
        self.instance = instance
        self.num_disks = instance.num_disks
        if extra_cache is None:
            extra_cache = self.num_disks - 1
        if extra_cache < 0:
            raise ConfigurationError("extra_cache must be non-negative")
        if aggregate_never_requested and self.num_disks != 1:
            # The [0, 1] bound on the aggregate variable relies on "at most
            # one fetch (hence eviction) per interval", which only holds on a
            # single disk (see the module docstring).
            raise ConfigurationError(
                "aggregate_never_requested is a single-disk reduction (D == 1)"
            )
        self.extra_cache = extra_cache
        self.capacity = instance.cache_size + extra_cache
        self.require_all_disks = require_all_disks
        self.aggregate_never_requested = aggregate_never_requested
        self.fetch_time = instance.fetch_time
        self.num_requests = instance.num_requests

        self._build()

    # -- construction -------------------------------------------------------------

    def _build(self) -> None:
        instance = self.instance
        sequence = instance.sequence
        n = self.num_requests

        # The enumeration and its window/coverage indices depend only on
        # (n, F); the memoised structure is shared across every model of the
        # same shape (warm-start reuse across algorithms and instances).
        self._structure = interval_structure(n, self.fetch_time)
        self.intervals: List[Interval] = list(self._structure.intervals)

        # --- block bookkeeping -----------------------------------------------------
        requested = sorted(sequence.distinct_blocks, key=str)
        initially_resident = set(instance.initial_cache)
        # Dummy blocks fill the initial cache up to the effective capacity so
        # that "#fetches == #evictions per interval" keeps occupancy constant
        # at exactly `capacity`.
        num_dummies = self.capacity - len(initially_resident)
        if num_dummies < 0:
            raise ConfigurationError(
                f"initial cache ({len(initially_resident)}) exceeds effective capacity "
                f"({self.capacity})"
            )
        self.dummy_blocks: List[BlockId] = [f"{DUMMY_PREFIX}{i}" for i in range(num_dummies)]
        self.padding_blocks: Dict[int, BlockId] = {}
        self.active_disks: List[int] = sorted(
            {instance.disk_of(b) for b in requested}
        ) or [0]
        if self.require_all_disks:
            self.padding_blocks = {d: f"{PADDING_PREFIX}{d}" for d in self.active_disks}

        # The instance handed to the executor: same sequence, capacity extended,
        # initial cache padded with the dummies.
        self.augmented_instance = ProblemInstance(
            sequence=sequence,
            cache_size=self.capacity,
            fetch_time=self.fetch_time,
            layout=instance.layout,
            initial_cache=frozenset(initially_resident) | frozenset(self.dummy_blocks),
        )

        # --- variable indexing -------------------------------------------------------
        self._x_index: Dict[Interval, int] = {}
        self._f_index: Dict[Tuple[Interval, BlockId], int] = {}
        self._e_index: Dict[Tuple[Interval, BlockId], int] = {}
        counter = 0
        for interval in self.intervals:
            self._x_index[interval] = counter
            counter += 1

        def add_f(interval: Interval, block: BlockId) -> None:
            nonlocal counter
            key = (interval, block)
            if key not in self._f_index:
                self._f_index[key] = counter
                counter += 1

        def add_e(interval: Interval, block: BlockId) -> None:
            nonlocal counter
            key = (interval, block)
            if key not in self._e_index:
                self._e_index[key] = counter
                counter += 1

        # Epochs of requested blocks (1-based request positions, paper style).
        self._epochs_fetch: Dict[BlockId, List[Tuple[int, int]]] = {}
        self._epochs_evict: Dict[BlockId, List[Tuple[int, int]]] = {}
        for block in requested:
            positions = [p + 1 for p in sequence.positions(block)]
            fetch_epochs: List[Tuple[int, int]] = []
            evict_epochs: List[Tuple[int, int]] = []
            fetch_epochs.append((0, positions[0]))
            evict_epochs.append((0, positions[0]))
            for prev, nxt in zip(positions, positions[1:]):
                fetch_epochs.append((prev, nxt))
                evict_epochs.append((prev, nxt))
            evict_epochs.append((positions[-1], n))
            self._epochs_fetch[block] = fetch_epochs
            self._epochs_evict[block] = evict_epochs
            for lo, hi in fetch_epochs:
                for interval in self._window(lo, hi):
                    add_f(interval, block)
            for lo, hi in evict_epochs:
                for interval in self._window(lo, hi):
                    add_e(interval, block)

        # Never-requested initial blocks (user supplied or dummies): evictable
        # at most once, anywhere.  They are pairwise interchangeable, so the
        # reduced model replaces their per-block eviction variables with one
        # aggregate variable per interval (see the module docstring).
        self.never_requested_initial: List[BlockId] = sorted(
            (b for b in initially_resident if not sequence.contains_block(b)), key=str
        ) + list(self.dummy_blocks)
        if self.aggregate_never_requested and self.never_requested_initial:
            for interval in self.intervals:
                add_e(interval, AGGREGATE_BLOCK)
        else:
            for block in self.never_requested_initial:
                for interval in self.intervals:
                    add_e(interval, block)

        # Padding blocks: fetch and evict variables everywhere (strict mode).
        for block in self.padding_blocks.values():
            for interval in self.intervals:
                add_f(interval, block)
                add_e(interval, block)

        self.num_variables = counter
        self.requested_blocks = requested
        self.initially_resident = initially_resident

        # --- objective ---------------------------------------------------------------
        objective = np.zeros(self.num_variables)
        for interval, idx in self._x_index.items():
            objective[idx] = interval.charged_stall(self.fetch_time)
        self.objective = objective

        # --- constraints ---------------------------------------------------------------
        eq_rows: List[Tuple[List[int], List[float], float]] = []
        ub_rows: List[Tuple[List[int], List[float], float]] = []

        # 1. at most one interval overlaps each request slot.
        for slot in range(1, n):
            cols = [
                self._x_index[interval]
                for interval in self._structure.covering(slot)
            ]
            if cols:
                ub_rows.append((cols, [1.0] * len(cols), 1.0))

        # 2. per interval and active disk: sum of fetches from the disk vs x(I).
        blocks_by_disk: Dict[int, List[BlockId]] = {d: [] for d in self.active_disks}
        for block in requested:
            blocks_by_disk[instance.disk_of(block)].append(block)
        for interval in self.intervals:
            x_col = self._x_index[interval]
            for disk in self.active_disks:
                cols = [x_col]
                coefs = [-1.0]
                for block in blocks_by_disk[disk]:
                    key = (interval, block)
                    if key in self._f_index:
                        cols.append(self._f_index[key])
                        coefs.append(1.0)
                pad = self.padding_blocks.get(disk)
                if pad is not None:
                    cols.append(self._f_index[(interval, pad)])
                    coefs.append(1.0)
                if self.require_all_disks:
                    eq_rows.append((cols, coefs, 0.0))
                else:
                    ub_rows.append((cols, coefs, 0.0))

        # 3. per interval: #fetches == #evictions.
        fetch_cols_by_interval: Dict[Interval, List[int]] = {i: [] for i in self.intervals}
        evict_cols_by_interval: Dict[Interval, List[int]] = {i: [] for i in self.intervals}
        for (interval, _block), idx in self._f_index.items():
            fetch_cols_by_interval[interval].append(idx)
        for (interval, _block), idx in self._e_index.items():
            evict_cols_by_interval[interval].append(idx)
        for interval in self.intervals:
            cols = fetch_cols_by_interval[interval] + evict_cols_by_interval[interval]
            coefs = [1.0] * len(fetch_cols_by_interval[interval]) + [-1.0] * len(
                evict_cols_by_interval[interval]
            )
            if cols:
                eq_rows.append((cols, coefs, 0.0))

        # 4. per requested block: epoch constraints.
        for block in requested:
            first_lo, first_hi = self._epochs_fetch[block][0]
            first_f = self._epoch_cols(self._f_index, block, first_lo, first_hi)
            first_e = self._epoch_cols(self._e_index, block, first_lo, first_hi)
            if block in initially_resident:
                # Already resident: fetched exactly as often as evicted before
                # the first reference, and at most once.
                cols = first_f + first_e
                coefs = [1.0] * len(first_f) + [-1.0] * len(first_e)
                if cols:
                    eq_rows.append((cols, coefs, 0.0))
                if first_f:
                    ub_rows.append((first_f, [1.0] * len(first_f), 1.0))
            else:
                # Must be fetched exactly once before the first reference and
                # not evicted before it.
                if not first_f:
                    raise SolverError(
                        f"block {block!r} is requested at position {first_hi} but no "
                        "fetch interval fits before it (n or F too small)"
                    )
                eq_rows.append((first_f, [1.0] * len(first_f), 1.0))
                if first_e:
                    eq_rows.append((first_e, [1.0] * len(first_e), 0.0))

            for lo, hi in self._epochs_fetch[block][1:]:
                f_cols = self._epoch_cols(self._f_index, block, lo, hi)
                e_cols = self._epoch_cols(self._e_index, block, lo, hi)
                cols = f_cols + e_cols
                coefs = [1.0] * len(f_cols) + [-1.0] * len(e_cols)
                if cols:
                    eq_rows.append((cols, coefs, 0.0))
                if f_cols:
                    ub_rows.append((f_cols, [1.0] * len(f_cols), 1.0))

            last_lo, last_hi = self._epochs_evict[block][-1]
            last_e = self._epoch_cols(self._e_index, block, last_lo, last_hi)
            if last_e:
                ub_rows.append((last_e, [1.0] * len(last_e), 1.0))

        # 6. never-requested initial blocks: evicted at most once overall.
        # Reduced model: one budget row for the aggregate variable instead of
        # one row (and one variable set) per interchangeable block.
        if self.aggregate_never_requested and self.never_requested_initial:
            cols = [
                self._e_index[(interval, AGGREGATE_BLOCK)]
                for interval in self.intervals
            ]
            ub_rows.append(
                (cols, [1.0] * len(cols), float(len(self.never_requested_initial)))
            )
        else:
            for block in self.never_requested_initial:
                cols = [
                    self._e_index[(interval, block)]
                    for interval in self.intervals
                    if (interval, block) in self._e_index
                ]
                if cols:
                    ub_rows.append((cols, [1.0] * len(cols), 1.0))

        # Padding blocks: fetch amount == evict amount in every interval.
        for block in self.padding_blocks.values():
            for interval in self.intervals:
                eq_rows.append(
                    (
                        [self._f_index[(interval, block)], self._e_index[(interval, block)]],
                        [1.0, -1.0],
                        0.0,
                    )
                )

        self._A_eq, self._b_eq = self._assemble(eq_rows)
        self._A_ub, self._b_ub = self._assemble(ub_rows)

    def _window(self, lo: int, hi: int) -> Tuple[Interval, ...]:
        """Intervals contained in the window ``(lo, hi)`` (shared memo)."""
        return self._structure.window(lo, hi)

    def _epoch_cols(
        self, index: Dict[Tuple[Interval, BlockId], int], block: BlockId, lo: int, hi: int
    ) -> List[int]:
        return [
            index[(interval, block)]
            for interval in self._window(lo, hi)
            if (interval, block) in index
        ]

    @staticmethod
    def _assemble(
        rows: List[Tuple[List[int], List[float], float]]
    ) -> Tuple[Optional[sparse.csr_matrix], Optional[np.ndarray]]:
        if not rows:
            return None, None
        data: List[float] = []
        row_idx: List[int] = []
        col_idx: List[int] = []
        rhs = np.zeros(len(rows))
        ncols = 0
        for r, (cols, coefs, b) in enumerate(rows):
            rhs[r] = b
            for c, coef in zip(cols, coefs):
                row_idx.append(r)
                col_idx.append(c)
                data.append(coef)
                ncols = max(ncols, c + 1)
        return (
            sparse.csr_matrix((data, (row_idx, col_idx)), shape=(len(rows), ncols)),
            rhs,
        )

    # -- matrix access (padded to the full variable count) --------------------------------

    def equality_system(self) -> Tuple[Optional[sparse.csr_matrix], Optional[np.ndarray]]:
        """``(A_eq, b_eq)`` with ``A_eq`` padded to ``num_variables`` columns."""
        return self._pad(self._A_eq), self._b_eq

    def inequality_system(self) -> Tuple[Optional[sparse.csr_matrix], Optional[np.ndarray]]:
        """``(A_ub, b_ub)`` with ``A_ub`` padded to ``num_variables`` columns."""
        return self._pad(self._A_ub), self._b_ub

    def _pad(self, matrix: Optional[sparse.csr_matrix]) -> Optional[sparse.csr_matrix]:
        if matrix is None:
            return None
        if matrix.shape[1] == self.num_variables:
            return matrix
        extra = self.num_variables - matrix.shape[1]
        return sparse.hstack(
            [matrix, sparse.csr_matrix((matrix.shape[0], extra))], format="csr"
        )

    # -- solution handling -------------------------------------------------------------

    def solution_from_vector(self, vector: np.ndarray, *, tol: float = 1e-6) -> LPSolution:
        """Package a raw solver vector into an :class:`LPSolution`.

        In the reduced model, integral evictions of the aggregate
        never-requested block are decomposed back into concrete block names
        (walking the selected intervals in canonical order and handing each
        one the next unused never-requested block), so downstream schedule
        extraction sees an ordinary full-model solution.  Fractional
        aggregate mass is left on the sentinel — such solutions are only
        ever read for their objective value.
        """
        x = {
            interval: float(vector[idx])
            for interval, idx in self._x_index.items()
            if vector[idx] > tol
        }
        fetches = {
            key: float(vector[idx]) for key, idx in self._f_index.items() if vector[idx] > tol
        }
        evictions = {
            key: float(vector[idx]) for key, idx in self._e_index.items() if vector[idx] > tol
        }
        if self.aggregate_never_requested:
            evictions = self._decompose_aggregate_evictions(evictions)
        integral = all(
            abs(v - round(v)) <= 1e-6
            for v in list(x.values()) + list(fetches.values()) + list(evictions.values())
        )
        objective = float(np.dot(self.objective, vector))
        return LPSolution(
            objective=objective, x=x, fetches=fetches, evictions=evictions, is_integral=integral
        )

    def _decompose_aggregate_evictions(
        self, evictions: Dict[Tuple[Interval, BlockId], float], *, tol: float = 1e-6
    ) -> Dict[Tuple[Interval, BlockId], float]:
        """Map integral aggregate evictions onto concrete never-requested blocks.

        The aggregate's budget constraint guarantees at most
        ``len(never_requested_initial)`` units of integral mass, so the
        deterministic interval-ordered assignment always has a fresh block
        available.  Fractional entries stay on :data:`AGGREGATE_BLOCK`.
        """
        available = list(self.never_requested_initial)
        out: Dict[Tuple[Interval, BlockId], float] = {}
        aggregate = sorted(
            (key for key in evictions if key[1] == AGGREGATE_BLOCK),
            key=lambda key: key[0],
        )
        for key, value in evictions.items():
            if key[1] != AGGREGATE_BLOCK:
                out[key] = value
        for interval, _sentinel in aggregate:
            value = evictions[(interval, AGGREGATE_BLOCK)]
            if abs(value - 1.0) <= tol and available:
                out[(interval, available.pop(0))] = 1.0
            else:
                out[(interval, AGGREGATE_BLOCK)] = value
        return out

    def extract_schedule(self, solution: LPSolution, *, threshold: float = 0.5) -> IntervalSchedule:
        """Convert an integral solution into an executable :class:`IntervalSchedule`.

        Padding-block operations and degenerate fetch+evict pairs of the same
        block in the same interval are dropped; evictions are paired with the
        remaining fetches of their interval in deterministic order.

        The extraction then applies the paper's fetch-ordering normalisation
        (property (1) of Section 3): per disk, the fetched blocks are
        re-assigned to the selected intervals so that, walking the intervals
        in increasing deadline order, blocks are fetched in increasing order
        of the reference they are needed for.  Without this step an integral
        LP point can charge its stall to different intervals than a serial
        execution would actually incur it in, and the executed stall could
        exceed the LP objective; with it the executed stall never does (a
        property the test-suite checks on randomised instances).
        """
        if not solution.is_integral:
            raise SolverError("extract_schedule needs an integral solution")
        # Endpoint normalisation (nested intervals must share an endpoint) is a
        # precondition for the solution to be realisable at its charged stall.
        from .normalize import normalize_integral_solution

        solution = normalize_integral_solution(solution)
        synthetic = set(self.padding_blocks.values())
        sequence = self.instance.sequence

        # Collect per-interval fetch/evict sets (padding dropped, degenerate
        # same-block pairs cancelled).
        raw: List[Tuple[Interval, List[BlockId], List[BlockId]]] = []
        for interval in solution.selected_intervals(threshold):
            fetched = sorted(
                (
                    block
                    for (iv, block), value in solution.fetches.items()
                    if iv == interval and value > threshold and block not in synthetic
                ),
                key=str,
            )
            evicted = sorted(
                (
                    block
                    for (iv, block), value in solution.evictions.items()
                    if iv == interval and value > threshold and block not in synthetic
                ),
                key=str,
            )
            both = set(fetched) & set(evicted)
            fetched = [b for b in fetched if b not in both]
            evicted = [b for b in evicted if b not in both]
            raw.append((interval, fetched, evicted))

        # Property (1): per disk, re-assign fetch jobs (block + the reference
        # position it must arrive for) to that disk's fetch slots so that the
        # slot with the earlier interval deadline receives the job with the
        # earlier needed-by position.
        slots_by_disk: Dict[int, List[Tuple[Interval, int]]] = {}
        jobs_by_disk: Dict[int, List[Tuple[int, BlockId]]] = {}
        for raw_idx, (interval, fetched, _evicted) in enumerate(raw):
            for block in fetched:
                disk = self.instance.disk_of(block)
                # 1-based position of the reference this fetch is for.
                needed_by = sequence.next_use_from(interval.end - 1, block)
                needed_by = needed_by + 1 if needed_by < 10**17 else 10**17
                slots_by_disk.setdefault(disk, []).append((interval, raw_idx))
                jobs_by_disk.setdefault(disk, []).append((needed_by, block))
        assignment: Dict[Tuple[int, int], BlockId] = {}
        for disk, slots in slots_by_disk.items():
            ordered_slots = sorted(
                range(len(slots)), key=lambda s: (slots[s][0].start, slots[s][0].end, s)
            )
            ordered_jobs = sorted(jobs_by_disk[disk], key=lambda job: (job[0], str(job[1])))
            for slot_rank, slot_idx in enumerate(ordered_slots):
                interval, raw_idx = slots[slot_idx]
                assignment[(disk, slot_idx)] = ordered_jobs[slot_rank][1]

        # Rebuild the per-interval fetch lists from the normalised assignment.
        normalised: Dict[int, List[BlockId]] = {idx: [] for idx in range(len(raw))}
        for disk, slots in slots_by_disk.items():
            for slot_idx, (interval, raw_idx) in enumerate(slots):
                normalised[raw_idx].append(assignment[(disk, slot_idx)])

        fetch_ops: List[IntervalFetch] = []
        for raw_idx, (interval, _original_fetched, evicted) in enumerate(raw):
            fetched = sorted(normalised[raw_idx], key=str)
            victims = list(evicted)
            # A block re-assigned into an interval that also evicts it would be
            # both victim and fetched block; hand that eviction to another
            # fetch of the same interval instead.
            victims = [v for v in victims if v not in fetched] + [
                v for v in victims if v in fetched
            ]
            for pos, block in enumerate(fetched):
                victim = victims[pos] if pos < len(victims) else None
                if victim == block:
                    victim = None
                fetch_ops.append(
                    IntervalFetch(
                        start_pos=interval.start,
                        end_pos=interval.end,
                        disk=self.instance.disk_of(block),
                        block=block,
                        victim=victim,
                    )
                )
        return IntervalSchedule(
            fetch_time=self.fetch_time,
            num_disks=self.num_disks,
            num_requests=self.num_requests,
            fetches=tuple(fetch_ops),
            initial_cache=self.augmented_instance.initial_cache,
        )

    # -- introspection --------------------------------------------------------------------

    @property
    def num_intervals(self) -> int:
        """Number of candidate fetch intervals."""
        return len(self.intervals)

    def describe(self) -> str:
        """One-line summary of the model size."""
        return (
            f"synchronized LP: {self.num_variables} variables "
            f"({len(self._x_index)} intervals, {len(self._f_index)} fetch, "
            f"{len(self._e_index)} evict), "
            f"{0 if self._A_eq is None else self._A_eq.shape[0]} equalities, "
            f"{0 if self._A_ub is None else self._A_ub.shape[0]} inequalities"
        )
