"""Linear-programming machinery for optimal prefetching/caching schedules.

The Section 3 synchronized LP (:mod:`repro.lp.model` — variables
``x(I)``/``f(I,a)``/``e(I,a)`` over fetch intervals, objective
``sum_I x(I)(F - |I|)``), its LP/MILP solvers (:mod:`repro.lp.solver`), the
paper's time-slicing rounding (:mod:`repro.lp.rounding`), the two
user-facing drivers — :func:`optimal_single_disk` (exact single-disk
optimum, the denominator of every Section 2 approximation ratio) and
:func:`optimal_parallel_schedule` (the Theorem 4 algorithm) — and the
optimum service (:mod:`repro.lp.service`): canonical instance
fingerprinting (:mod:`repro.lp.canonical`) plus a disk-backed,
parallel-safe cache that makes optimum computation a batched pipeline
stage instead of a per-call expense.
"""

from .canonical import canonical_payload, instance_fingerprint, normalize_instance
from .intervals import Interval, IntervalStructure, enumerate_intervals, interval_structure
from .model import (
    AGGREGATE_BLOCK,
    DUMMY_PREFIX,
    PADDING_PREFIX,
    LPSolution,
    SynchronizedLPModel,
)
from .normalize import normalize_integral_solution
from .parallel import ParallelOptimum, optimal_parallel_schedule
from .rounding import RoundedSolution, candidate_offsets, round_solution
from .service import OptimumRecord, OptimumService, SolverConfig, compute_optimum_record
from .single_disk import SingleDiskOptimum, optimal_single_disk, optimal_single_disk_elapsed
from .solver import solve_integral, solve_relaxation
from .validation import ValidationReport, solution_vector, validate_solution

__all__ = [
    "canonical_payload",
    "instance_fingerprint",
    "normalize_instance",
    "Interval",
    "IntervalStructure",
    "interval_structure",
    "enumerate_intervals",
    "AGGREGATE_BLOCK",
    "DUMMY_PREFIX",
    "PADDING_PREFIX",
    "LPSolution",
    "SynchronizedLPModel",
    "OptimumRecord",
    "OptimumService",
    "SolverConfig",
    "compute_optimum_record",
    "normalize_integral_solution",
    "ParallelOptimum",
    "optimal_parallel_schedule",
    "RoundedSolution",
    "candidate_offsets",
    "round_solution",
    "SingleDiskOptimum",
    "optimal_single_disk",
    "optimal_single_disk_elapsed",
    "solve_integral",
    "solve_relaxation",
    "ValidationReport",
    "solution_vector",
    "validate_solution",
]
