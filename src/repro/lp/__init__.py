"""Linear-programming machinery for optimal prefetching/caching schedules.

The Section 3 synchronized LP (:mod:`repro.lp.model`), its LP/MILP solvers
(:mod:`repro.lp.solver`), the paper's time-slicing rounding
(:mod:`repro.lp.rounding`), and the two user-facing drivers:
:func:`optimal_single_disk` (exact single-disk optimum, the denominator of
every Section 2 approximation ratio) and :func:`optimal_parallel_schedule`
(the Theorem 4 algorithm).
"""

from .intervals import Interval, enumerate_intervals
from .model import DUMMY_PREFIX, PADDING_PREFIX, LPSolution, SynchronizedLPModel
from .normalize import normalize_integral_solution
from .parallel import ParallelOptimum, optimal_parallel_schedule
from .rounding import RoundedSolution, candidate_offsets, round_solution
from .single_disk import SingleDiskOptimum, optimal_single_disk, optimal_single_disk_elapsed
from .solver import solve_integral, solve_relaxation
from .validation import ValidationReport, solution_vector, validate_solution

__all__ = [
    "Interval",
    "enumerate_intervals",
    "DUMMY_PREFIX",
    "PADDING_PREFIX",
    "LPSolution",
    "SynchronizedLPModel",
    "normalize_integral_solution",
    "ParallelOptimum",
    "optimal_parallel_schedule",
    "RoundedSolution",
    "candidate_offsets",
    "round_solution",
    "SingleDiskOptimum",
    "optimal_single_disk",
    "optimal_single_disk_elapsed",
    "solve_integral",
    "solve_relaxation",
    "ValidationReport",
    "solution_vector",
    "validate_solution",
]
