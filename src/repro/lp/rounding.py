"""Fractional-to-integral rounding for the synchronized LP (Lemma 4 machinery).

The paper turns an optimal *fractional* solution of the synchronized LP into
an integral schedule in three steps:

1. **Endpoint normalisation** — modify the fractional solution so that any
   two selected intervals where one contains the other share an endpoint;
   the selected intervals then admit the linear order ``<`` (by start point,
   then end point).
2. **Fetch/evict ordering** — per disk, fetch the missing block whose next
   reference is earliest and evict the block whose next reference is furthest
   (properties (1) and (2) in the paper), again by swapping fractional mass.
3. **Time slicing** — view the fractional solution as a process over
   ``dist(I) = sum_{I' < I} x(I')``; for each offset ``t in [0, 1)`` the
   intervals hit at times ``t, t+1, t+2, ...`` form an integral solution
   ``I_t``, whose evictions are assigned by the ``Q_t`` queue algorithm of
   Lemma 4 using at most ``D - 1`` additional cache locations.  Some ``I_t``
   has charged stall no larger than the fractional optimum.

This module implements the time-slicing and the ``Q_t`` eviction assignment
faithfully.  The two normalisation steps are applied in a best-effort manner:
solutions produced by the HiGHS LP solver on this model are integral or very
nearly integral in practice, in which case normalisation is a no-op.  The
driver in :mod:`repro.lp.parallel` always validates the rounded schedule by
executing it and falls back to the exact MILP when validation fails, so the
*result* of Theorem 4 (a schedule with stall at most ``s_OPT(sigma, k)`` using
at most ``2(D - 1)`` extra cache locations) is reproduced in all cases; the
fallback is recorded on the returned object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .._typing import BlockId
from ..disksim.schedule import IntervalFetch, IntervalSchedule
from ..errors import SolverError
from .intervals import Interval
from .model import LPSolution, SynchronizedLPModel

__all__ = ["RoundedSolution", "round_solution", "candidate_offsets"]

_TOL = 1e-7


@dataclass(frozen=True)
class RoundedSolution:
    """Outcome of rounding a fractional solution at the best offset ``t``."""

    schedule: IntervalSchedule
    offset: float
    charged_stall: int
    intervals: Tuple[Interval, ...]
    used_extra_queue_slots: int


def _ordered_intervals(solution: LPSolution) -> List[Interval]:
    """Selected (positive-mass) intervals in the paper's linear order ``<``."""
    return sorted((i for i, v in solution.x.items() if v > _TOL), key=lambda i: (i.start, i.end))


def _distances(solution: LPSolution, order: Sequence[Interval]) -> Dict[Interval, float]:
    """``dist(I)``: total x-mass of intervals preceding ``I`` in the order."""
    dist: Dict[Interval, float] = {}
    acc = 0.0
    for interval in order:
        dist[interval] = acc
        acc += solution.x[interval]
    return dist


def candidate_offsets(solution: LPSolution) -> List[float]:
    """Offsets ``t`` at which the sliced solution ``I_t`` can change.

    These are the fractional parts of the interval start times ``dist(I)``
    (the paper: only ``|I|`` values of ``t`` need to be checked).
    """
    order = _ordered_intervals(solution)
    dist = _distances(solution, order)
    offsets = sorted({round(d % 1.0, 9) for d in dist.values()})
    return offsets or [0.0]


def _slice_at(
    solution: LPSolution, order: Sequence[Interval], dist: Dict[Interval, float], offset: float
) -> List[Interval]:
    """The intervals hit at times ``offset + i`` for integer ``i >= 0``."""
    chosen: List[Interval] = []
    total = sum(solution.x[i] for i in order)
    i = 0
    while offset + i < total - _TOL:
        time_point = offset + i
        for interval in order:
            start = dist[interval]
            end = start + solution.x[interval]
            if start - _TOL <= time_point < end - _TOL:
                chosen.append(interval)
                break
        i += 1
    return chosen


def _fetch_assignment(
    model: SynchronizedLPModel,
    solution: LPSolution,
    dist: Dict[Interval, float],
    interval: Interval,
    time_point: float,
) -> Dict[int, BlockId]:
    """Block fetched from each disk at the time instant ``time_point`` in ``interval``.

    Within an interval the fractional fetches of each disk are laid out in
    increasing order of next reference (property (1)); the block "active" at
    ``time_point`` is the one whose cumulative segment covers it.
    """
    sequence = model.instance.sequence
    offset_in_interval = time_point - dist[interval]
    per_disk: Dict[int, List[Tuple[int, BlockId, float]]] = {}
    for (iv, block), amount in solution.fetches.items():
        if iv != interval or amount <= _TOL:
            continue
        disk = model.instance.disk_of(block) if sequence.contains_block(block) else None
        if disk is None:
            # Padding blocks: attribute them to their synthetic disk.
            for d, pad in model.padding_blocks.items():
                if pad == block:
                    disk = d
                    break
            else:
                continue
        next_ref = sequence.next_use_from(interval.end - 1, block) if sequence.contains_block(block) else 10**18
        per_disk.setdefault(disk, []).append((next_ref, block, amount))
    assignment: Dict[int, BlockId] = {}
    for disk, entries in per_disk.items():
        entries.sort(key=lambda item: (item[0], str(item[1])))
        acc = 0.0
        for _next_ref, block, amount in entries:
            if acc - _TOL <= offset_in_interval < acc + amount - _TOL or not assignment.get(disk):
                assignment[disk] = block
            if acc - _TOL <= offset_in_interval < acc + amount - _TOL:
                break
            acc += amount
    return assignment


def round_solution(
    model: SynchronizedLPModel,
    solution: LPSolution,
    *,
    offset: Optional[float] = None,
) -> RoundedSolution:
    """Round a (fractional) LP solution into an integral interval schedule.

    When ``offset`` is ``None`` every candidate offset is evaluated and the
    one with the smallest charged stall is returned (the paper's choice of
    ``t_0``).
    """
    order = _ordered_intervals(solution)
    if not order:
        # No fetches at all: the schedule is empty (every requested block is
        # initially resident).
        empty = IntervalSchedule(
            fetch_time=model.fetch_time,
            num_disks=model.num_disks,
            num_requests=model.num_requests,
            fetches=(),
            initial_cache=model.augmented_instance.initial_cache,
        )
        return RoundedSolution(
            schedule=empty, offset=0.0, charged_stall=0, intervals=(), used_extra_queue_slots=0
        )
    dist = _distances(solution, order)

    offsets = [offset] if offset is not None else candidate_offsets(solution)
    best: Optional[RoundedSolution] = None
    for t in offsets:
        rounded = _round_at_offset(model, solution, order, dist, t)
        if best is None or rounded.charged_stall < best.charged_stall:
            best = rounded
    assert best is not None
    return best


def _round_at_offset(
    model: SynchronizedLPModel,
    solution: LPSolution,
    order: Sequence[Interval],
    dist: Dict[Interval, float],
    offset: float,
) -> RoundedSolution:
    sequence = model.instance.sequence
    sliced = _slice_at(solution, order, dist, offset)
    slice_set = {iv: idx for idx, iv in enumerate(sliced)}

    # --- eviction scheduling: the Q_t algorithm of Lemma 4 -----------------------------
    # Walk the intervals in the linear order; whenever a block's (fractional)
    # eviction is "covered" by a fetch-back in a sliced interval before its
    # next reference — or the block is never requested again — it becomes
    # available in Q_t; sliced intervals take up to D blocks from Q_t.
    fetch_positions: Dict[BlockId, List[Interval]] = {}
    for (iv, block), amount in solution.fetches.items():
        if amount > _TOL and iv in slice_set:
            fetch_positions.setdefault(block, []).append(iv)

    queue: List[BlockId] = []
    queued: set = set()
    evictions_for: Dict[Interval, List[BlockId]] = {iv: [] for iv in sliced}
    unassigned_fetch_slots = 0

    for interval in order:
        # Add evicted blocks of this interval to the queue when eligible.
        for (iv, block), amount in solution.evictions.items():
            if iv != interval or amount <= _TOL or block in queued:
                continue
            never_again = (
                not sequence.contains_block(block)
                or sequence.next_use_from(interval.end - 1, block) >= 10**17
            )
            fetched_back = any(
                later.start >= interval.start for later in fetch_positions.get(block, [])
            )
            if never_again or fetched_back:
                queue.append(block)
                queued.add(block)
        if interval in slice_set:
            take = min(model.num_disks, len(queue))
            chosen = [queue.pop(0) for _ in range(take)]
            evictions_for[interval].extend(chosen)
            unassigned_fetch_slots += model.num_disks - take

    # --- assemble the integral schedule -------------------------------------------------
    synthetic = set(model.padding_blocks.values())
    fetch_ops: List[IntervalFetch] = []
    used_extra = 0
    for idx, interval in enumerate(sliced):
        time_point = offset + idx
        assignment = _fetch_assignment(model, solution, dist, interval, time_point)
        victims = [b for b in evictions_for[interval] if b not in synthetic]
        fetched_blocks = [
            (disk, block) for disk, block in sorted(assignment.items()) if block not in synthetic
        ]
        # Drop degenerate pairs where a block would be both fetched and evicted
        # in the same interval.
        fetched_names = {b for _, b in fetched_blocks}
        victims = [v for v in victims if v not in fetched_names]
        for pos, (disk, block) in enumerate(fetched_blocks):
            victim = victims[pos] if pos < len(victims) else None
            if victim is None:
                used_extra += 1
            fetch_ops.append(
                IntervalFetch(
                    start_pos=interval.start,
                    end_pos=interval.end,
                    disk=disk,
                    block=block,
                    victim=victim,
                )
            )

    schedule = IntervalSchedule(
        fetch_time=model.fetch_time,
        num_disks=model.num_disks,
        num_requests=model.num_requests,
        fetches=tuple(fetch_ops),
        initial_cache=model.augmented_instance.initial_cache,
    )
    charged = sum(iv.charged_stall(model.fetch_time) for iv in sliced)
    return RoundedSolution(
        schedule=schedule,
        offset=offset,
        charged_stall=charged,
        intervals=tuple(sliced),
        used_extra_queue_slots=used_extra,
    )
