"""LP / MILP backends for the synchronized prefetching/caching model.

Two entry points:

* :func:`solve_relaxation` — the continuous relaxation via ``scipy``'s HiGHS
  LP solver.  Its optimal value lower-bounds the best synchronized schedule
  and (by Lemma 3) the optimal unrestricted stall time ``s_OPT(sigma, k)``
  when the model is built with ``extra_cache = D - 1``.

* :func:`solve_integral` — the exact 0/1 optimum via ``scipy.optimize.milp``
  (HiGHS branch and bound).  The paper instead proves that an optimal
  *fractional* solution decomposes into integral solutions of no larger stall
  (Lemma 4); the MILP is the computational substitution documented in
  DESIGN.md and is cross-checked against the LP bound and against brute force
  in the tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import optimize, sparse

from ..errors import InfeasibleError, SolverError
from .model import LPSolution, SynchronizedLPModel

__all__ = ["solve_relaxation", "solve_integral"]


def _linear_constraints(model: SynchronizedLPModel):
    constraints = []
    A_eq, b_eq = model.equality_system()
    if A_eq is not None:
        constraints.append(optimize.LinearConstraint(A_eq, b_eq, b_eq))
    A_ub, b_ub = model.inequality_system()
    if A_ub is not None:
        constraints.append(
            optimize.LinearConstraint(A_ub, np.full_like(b_ub, -np.inf), b_ub)
        )
    return constraints


def solve_relaxation(model: SynchronizedLPModel) -> LPSolution:
    """Solve the continuous relaxation (all variables in ``[0, 1]``)."""
    A_eq, b_eq = model.equality_system()
    A_ub, b_ub = model.inequality_system()
    result = optimize.linprog(
        c=model.objective,
        A_ub=A_ub,
        b_ub=b_ub,
        A_eq=A_eq,
        b_eq=b_eq,
        bounds=(0.0, 1.0),
        method="highs",
    )
    if result.status == 2:
        raise InfeasibleError(
            "the synchronized LP relaxation is infeasible; this indicates a modelling "
            "bug because demand-fetching every block is always a feasible schedule"
        )
    if not result.success:
        raise SolverError(f"LP relaxation failed: {result.message}")
    return model.solution_from_vector(np.asarray(result.x))


def solve_integral(model: SynchronizedLPModel, *, time_limit: Optional[float] = None) -> LPSolution:
    """Solve the 0/1 program exactly with HiGHS branch and bound."""
    constraints = _linear_constraints(model)
    options = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    result = optimize.milp(
        c=model.objective,
        constraints=constraints,
        integrality=np.ones(model.num_variables),
        bounds=optimize.Bounds(0.0, 1.0),
        options=options or None,
    )
    if result.status == 2:
        raise InfeasibleError(
            "the synchronized MILP is infeasible; this indicates a modelling bug because "
            "demand-fetching every block is always a feasible schedule"
        )
    if result.x is None:
        raise SolverError(f"MILP solve failed: {result.message}")
    vector = np.round(np.asarray(result.x))
    solution = model.solution_from_vector(vector)
    if not solution.is_integral:
        raise SolverError("MILP returned a non-integral vector after rounding")
    return solution
