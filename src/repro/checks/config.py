"""Per-rule enable/disable configuration for a check run.

The configuration is deliberately tiny: a run enables every registered
rule by default, an explicit ``only`` set restricts the run to those
rules, and a ``disabled`` set switches individual rules off.  Unknown
rule ids are rejected with a :class:`~repro.errors.ConfigurationError`
naming the valid rules — a typo in ``--disable`` must not silently run a
different gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple

from ..errors import ConfigurationError

__all__ = ["CheckConfig"]


@dataclass(frozen=True)
class CheckConfig:
    """Which rules a check run executes.

    ``only`` empty means "all registered rules"; ``disabled`` is applied
    afterwards either way.
    """

    only: FrozenSet[str] = frozenset()
    disabled: FrozenSet[str] = frozenset()

    def is_enabled(self, rule_id: str) -> bool:
        """Whether the rule participates in this run."""
        if rule_id in self.disabled:
            return False
        return not self.only or rule_id in self.only

    def validate(self, known_rules: Iterable[str]) -> None:
        """Reject configured rule ids that name no registered rule."""
        known = set(known_rules)
        unknown = sorted((self.only | self.disabled) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown check rule(s) {', '.join(repr(r) for r in unknown)}; "
                f"registered rules: {', '.join(sorted(known))}"
            )

    @classmethod
    def from_option_strings(
        cls, only: str = "", disable: str = ""
    ) -> "CheckConfig":
        """Build a config from comma-separated CLI option strings."""

        def parse(text: str) -> Tuple[str, ...]:
            return tuple(item.strip() for item in text.split(",") if item.strip())

        return cls(only=frozenset(parse(only)), disabled=frozenset(parse(disable)))
