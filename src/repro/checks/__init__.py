"""AST-based static-analysis subsystem: ``repro check``.

The test suite proves the repository's load-bearing guarantees at
runtime; this package proves them at the *import-graph* level, before
anything runs.  A small checker framework (:mod:`repro.checks.base`) hosts
a battery of repo-specific rules (:mod:`repro.checks.rules`): determinism
(no hidden RNG or wall-clock state in kernel code, ordered fingerprints),
error discipline in the spec grammars, engine parity between the vector
kernel and the planner, registry hygiene, and float-equality.  Findings
(:mod:`repro.checks.findings`) are gated against a committed baseline
(:mod:`repro.checks.baseline`) so new rules can land against imperfect
trees while every new violation fails CI.

Entry points: the ``repro check`` CLI subcommand and
:func:`repro.checks.runner.run_checks` (what the meta-test and CI call).
"""

from __future__ import annotations

from .base import (
    CHECKER_REGISTRY,
    Checker,
    ModuleUnderCheck,
    ProjectChecker,
    all_checkers,
    register_checker,
)
from .baseline import Baseline
from .config import CheckConfig
from .findings import Finding
from .runner import CheckReport, default_check_root, run_checks

__all__ = [
    "CHECKER_REGISTRY",
    "Checker",
    "ProjectChecker",
    "ModuleUnderCheck",
    "register_checker",
    "all_checkers",
    "Baseline",
    "CheckConfig",
    "Finding",
    "CheckReport",
    "run_checks",
    "default_check_root",
]
