"""Small AST helpers shared by the checker rules.

Nothing here is rule-specific: dotted-name rendering for call targets,
constant extraction, and an enclosing-function walk used by rules that
need to reason about the parameters of the function a node sits in.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "dotted_name",
    "str_constant",
    "lambda_arg_names",
    "callable_arg_names",
    "iter_functions",
    "maybe_none_params",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def str_constant(node: Optional[ast.AST]) -> Optional[str]:
    """The string value of a constant node, or None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def lambda_arg_names(node: ast.Lambda) -> List[str]:
    """Every parameter name a lambda accepts (positional + keyword-only)."""
    args = node.args
    return [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]


def callable_arg_names(
    node: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> Tuple[List[str], bool]:
    """``(parameter names, accepts **kwargs)`` for a function definition.

    ``self``/``cls`` are stripped so class ``__init__`` signatures compare
    directly against registry parameter schemas.
    """
    args = node.args
    names = [
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        if a.arg not in ("self", "cls")
    ]
    return names, args.kwarg is not None


def iter_functions(
    tree: ast.AST,
) -> Iterator["ast.FunctionDef | ast.AsyncFunctionDef"]:
    """Every function definition in ``tree``, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _annotation_allows_none(annotation: Optional[ast.AST]) -> bool:
    """Whether an annotation names ``Optional[...]`` / ``... | None`` / ``None``."""
    if annotation is None:
        return False
    if isinstance(annotation, ast.Constant) and annotation.value is None:
        return True
    if isinstance(annotation, ast.Subscript):
        base = dotted_name(annotation.value)
        return base in ("Optional", "typing.Optional") or (
            base in ("Union", "typing.Union")
            and any(
                _annotation_allows_none(elt)
                for elt in (
                    annotation.slice.elts
                    if isinstance(annotation.slice, ast.Tuple)
                    else [annotation.slice]
                )
            )
        )
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _annotation_allows_none(annotation.left) or _annotation_allows_none(
            annotation.right
        )
    if isinstance(annotation, ast.Name):
        return annotation.id == "None"
    return False


def maybe_none_params(
    node: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda",
) -> Dict[str, bool]:
    """Parameter name -> "may be None" (Optional annotation or None default)."""
    args = node.args
    positional = [*args.posonlyargs, *args.args]
    defaults: List[Optional[ast.AST]] = [None] * (
        len(positional) - len(args.defaults)
    ) + list(args.defaults)
    result: Dict[str, bool] = {}
    for arg, default in zip(positional, defaults):
        annotation = getattr(arg, "annotation", None)
        none_default = isinstance(default, ast.Constant) and default.value is None
        result[arg.arg] = none_default or _annotation_allows_none(annotation)
    for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        annotation = getattr(arg, "annotation", None)
        none_default = isinstance(kw_default, ast.Constant) and kw_default.value is None
        result[arg.arg] = none_default or _annotation_allows_none(annotation)
    return result
