"""The :class:`Finding` model: one diagnostic emitted by one checker rule.

A finding is a plain typed fact — rule id, file, line, severity, message —
with a deterministic sort order (path, line, rule) and a lossless JSON
encoding, so reports diff cleanly between runs and the committed baseline
can match findings structurally.  The *baseline key* of a finding
deliberately excludes the line number: a grandfathered finding keeps
matching its baseline entry when unrelated edits shift the file, and stops
matching (goes "new") only when its rule, file or message changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

__all__ = ["SEVERITIES", "Finding"]

#: Valid severities, mildest last.  ``error`` findings and ``warning``
#: findings both fail the gate when new; the level only affects rendering.
SEVERITIES: Tuple[str, ...] = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: which rule fired, where, and why.

    ``path`` is the package-relative posix path (``disksim/vector.py``) so
    findings are stable across checkouts and machines; the runner keeps the
    absolute path separately for display.
    """

    path: str
    line: int
    rule: str
    message: str
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"finding severity {self.severity!r} is not one of {SEVERITIES}"
            )

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        """The line-independent identity baseline entries match on."""
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        """One-line ``path:line: severity: [rule] message`` rendering."""
        return f"{self.path}:{self.line}: {self.severity}: [{self.rule}] {self.message}"

    def to_json_dict(self) -> Dict[str, Any]:
        """Lossless JSON-safe encoding (see :meth:`from_json_dict`)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "Finding":
        """Rebuild a finding from :meth:`to_json_dict` output."""
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),
            rule=str(payload["rule"]),
            message=str(payload["message"]),
            severity=str(payload.get("severity", "error")),
        )
