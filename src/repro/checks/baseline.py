"""The committed findings baseline: grandfathered debt, structurally matched.

A baseline is a JSON file mapping finding identities — ``(rule, path,
message)``, deliberately *without* line numbers — to the number of such
findings that are accepted.  ``repro check`` subtracts baselined findings
from a run's results and fails only on what remains, so a rule can be
introduced against an imperfect tree without blocking CI, while every
*new* violation still goes red.  Updating the file is an explicit,
reviewed action (``repro check --update-baseline``); an empty baseline is
the steady state this repository maintains.

Matching is count-aware: a baseline entry with ``count: 2`` absorbs at
most two identical findings, so duplicating a grandfathered violation
still fails the gate.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigurationError
from .findings import Finding

__all__ = ["Baseline"]

#: Format marker written into (and required of) every baseline file.
_BASELINE_VERSION = 1


@dataclass(frozen=True)
class Baseline:
    """Accepted findings: ``(rule, path, message) -> count``."""

    entries: Dict[Tuple[str, str, str], int] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        """The baseline that accepts exactly ``findings``."""
        return cls(entries=dict(Counter(f.baseline_key for f in findings)))

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file (strict about shape and version)."""
        try:
            payload = json.loads(path.read_text(encoding="utf8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"cannot read baseline file {path}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != _BASELINE_VERSION:
            raise ConfigurationError(
                f"baseline file {path} is not a version-{_BASELINE_VERSION} "
                "repro-check baseline"
            )
        entries: Dict[Tuple[str, str, str], int] = {}
        for item in payload.get("findings", []):
            key = (str(item["rule"]), str(item["path"]), str(item["message"]))
            entries[key] = entries.get(key, 0) + int(item.get("count", 1))
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        """Write the baseline deterministically (sorted entries, sorted keys)."""
        findings = [
            {"rule": rule, "path": pkgpath, "message": message, "count": count}
            for (rule, pkgpath, message), count in sorted(self.entries.items())
        ]
        payload = {"version": _BASELINE_VERSION, "findings": findings}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf8"
        )

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition ``findings`` into (new, baselined) against this baseline.

        Each baseline entry absorbs at most ``count`` matching findings;
        matching ignores line numbers (see :attr:`Finding.baseline_key`).
        """
        budget = dict(self.entries)
        new: List[Finding] = []
        accepted: List[Finding] = []
        for finding in sorted(findings):
            key = finding.baseline_key
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                accepted.append(finding)
            else:
                new.append(finding)
        return new, accepted
