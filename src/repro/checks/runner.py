"""The check harness: collect files, run every enabled rule, report.

:func:`run_checks` is the single entry point the CLI, CI and the
meta-test share: it walks the target paths, parses every ``*.py`` file
into a :class:`~repro.checks.base.ModuleUnderCheck`, runs the enabled
per-module and cross-module rules, applies the committed baseline, and
returns a :class:`CheckReport` with deterministic ordering (findings sort
by path, line, rule), text rendering and a JSON encoding for artifacts.

Package-relative paths
----------------------
Findings are reported against *package-relative* posix paths
(``disksim/vector.py``).  For files under a directory named ``repro`` the
prefix up to and including that directory is stripped; otherwise paths
are taken relative to the scanned root — which is what makes the fixture
tests work: a temp tree ``<tmp>/disksim/bad.py`` scans with the same
coordinates as the real package.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from . import rules as _rules  # noqa: F401  - importing registers the battery
from .base import Checker, ModuleUnderCheck, ProjectChecker, all_checkers, parse_module
from .baseline import Baseline
from .config import CheckConfig
from .findings import Finding

__all__ = ["CheckReport", "collect_modules", "run_checks", "default_check_root"]


def default_check_root() -> Path:
    """The installed ``repro`` package source tree (the default scan target)."""
    return Path(__file__).resolve().parents[1]


def _package_relative(path: Path, root: Path) -> str:
    """The package-relative posix path findings report (see module docstring)."""
    resolved = path.resolve()
    parts = list(resolved.parts)
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        tail = parts[index + 1 :]
        if tail:
            return "/".join(tail)
    try:
        return resolved.relative_to(root.resolve()).as_posix()
    except ValueError:
        return resolved.name


def collect_modules(paths: Sequence[Path]) -> List[ModuleUnderCheck]:
    """Parse every ``*.py`` file under ``paths`` (files or directories)."""
    modules: List[ModuleUnderCheck] = []
    seen = set()
    for target in paths:
        target = Path(target)
        if not target.exists():
            raise ConfigurationError(f"check target {target} does not exist")
        root = target if target.is_dir() else target.parent
        files = sorted(target.rglob("*.py")) if target.is_dir() else [target]
        for file in files:
            resolved = file.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            pkgpath = _package_relative(file, root)
            try:
                modules.append(parse_module(file, pkgpath))
            except SyntaxError as exc:
                raise ConfigurationError(
                    f"check target {file} is not parseable Python: {exc}"
                ) from exc
    modules.sort(key=lambda m: m.pkgpath)
    return modules


@dataclass(frozen=True)
class CheckReport:
    """The outcome of one check run: new findings, baselined ones, coverage."""

    findings: Tuple[Finding, ...]
    baselined: Tuple[Finding, ...] = ()
    files_checked: int = 0
    rules_run: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """Whether the gate passes (no findings beyond the baseline)."""
        return not self.findings

    def format_text(self) -> str:
        """Human-readable report: one line per finding plus a summary."""
        lines = [finding.render() for finding in self.findings]
        summary = (
            f"repro check: {len(self.findings)} new finding(s), "
            f"{len(self.baselined)} baselined, {self.files_checked} file(s), "
            f"{len(self.rules_run)} rule(s)"
        )
        lines.append(summary)
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-safe encoding for the CI findings artifact."""
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules_run": list(self.rules_run),
            "findings": [f.to_json_dict() for f in self.findings],
            "baselined": [f.to_json_dict() for f in self.baselined],
        }


def run_checks(
    paths: Optional[Sequence[Path]] = None,
    *,
    config: Optional[CheckConfig] = None,
    baseline: Optional[Baseline] = None,
) -> CheckReport:
    """Run every enabled rule over ``paths`` and report against ``baseline``."""
    config = config or CheckConfig()
    targets = [Path(p) for p in paths] if paths else [default_check_root()]
    checkers = all_checkers()
    config.validate(c.rule_id for c in checkers)
    enabled = [c for c in checkers if config.is_enabled(c.rule_id)]
    modules = collect_modules(targets)
    findings: List[Finding] = []
    for checker in enabled:
        if isinstance(checker, ProjectChecker):
            findings.extend(checker.run_project(modules))
        else:
            for module in modules:
                findings.extend(checker.run(module))
    findings.sort()
    new, accepted = (baseline or Baseline()).split(findings)
    return CheckReport(
        findings=tuple(new),
        baselined=tuple(accepted),
        files_checked=len(modules),
        rules_run=tuple(c.rule_id for c in enabled),
    )
