"""The checker framework: parsed modules, the ``Checker`` contract, the registry.

A *checker* is one named rule over the package's ASTs.  Two shapes exist:

* :class:`Checker` — per-module: ``check(module)`` receives one parsed
  :class:`ModuleUnderCheck` at a time and yields findings for it.  Most
  rules (unseeded RNG, wall clocks, float equality, error discipline) are
  local properties of one file.
* :class:`ProjectChecker` — cross-module: ``check_project(modules)``
  receives every parsed module of the run at once, for invariants that
  only exist *between* files (the vector kernel's family coverage versus
  the planner's eligibility set, registry declarations versus the factory
  definitions they call).

Rules register themselves with :func:`register_checker`; the run harness
(:mod:`repro.checks.runner`) instantiates every registered rule that the
:class:`~repro.checks.config.CheckConfig` enables.  Findings a rule emits
on a line carrying an inline ``# repro: allow(<rule-id>)`` pragma are
suppressed at collection time — the pragma is the reviewed, in-source way
to mark an intentional exception (the committed baseline is for
grandfathered debt instead).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Tuple, Type

from .findings import Finding

__all__ = [
    "ModuleUnderCheck",
    "parse_module",
    "Checker",
    "ProjectChecker",
    "CHECKER_REGISTRY",
    "register_checker",
    "all_checkers",
]


#: Inline suppression pragma: ``# repro: allow(rule-id)`` (several rules
#: may be listed comma-separated).  Applies to findings on its own line.
_ALLOW_PRAGMA = re.compile(r"#\s*repro:\s*allow\(([a-z0-9_,\s-]+)\)")


@dataclass(frozen=True)
class ModuleUnderCheck:
    """One parsed source file, as the checkers see it.

    ``pkgpath`` is the path relative to the ``repro`` package root in posix
    form (``disksim/vector.py``) — the coordinate every rule scopes on and
    every finding reports.  ``path`` keeps the real filesystem location.
    """

    path: Path
    pkgpath: str
    source: str
    tree: ast.Module
    #: rule ids allowed per line number via ``# repro: allow(...)`` pragmas.
    allowed: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether a pragma allows ``rule`` at ``line``.

        A pragma suppresses findings on its own line and on the line
        directly below it, so the justification can live in a comment line
        above the flagged statement.
        """
        return rule in self.allowed.get(line, frozenset()) or rule in self.allowed.get(
            line - 1, frozenset()
        )


def _allow_pragmas(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> rule ids an inline pragma allows on that line."""
    allowed: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _ALLOW_PRAGMA.search(text)
        if match:
            rules = frozenset(
                item.strip() for item in match.group(1).split(",") if item.strip()
            )
            allowed[lineno] = rules
    return allowed


def parse_module(path: Path, pkgpath: str) -> ModuleUnderCheck:
    """Parse ``path`` into a :class:`ModuleUnderCheck` (pragmas included)."""
    source = path.read_text(encoding="utf8")
    tree = ast.parse(source, filename=str(path))
    return ModuleUnderCheck(
        path=path,
        pkgpath=pkgpath,
        source=source,
        tree=tree,
        allowed=_allow_pragmas(source),
    )


class Checker:
    """Base class of every per-module rule.

    Subclasses set the class attributes and implement :meth:`check`.
    ``scope`` is a tuple of package-relative posix prefixes the rule
    applies to (``("disksim/", "lp/")``); the empty tuple means the whole
    package.  Rules should emit findings through :meth:`finding` so path
    and severity are filled in uniformly.
    """

    #: Unique kebab-case rule identifier (used in reports, pragmas, config).
    rule_id: str = ""
    #: One-line description for ``repro check --list-rules`` and the docs.
    description: str = ""
    #: Default severity of this rule's findings.
    severity: str = "error"
    #: Package-relative path prefixes the rule applies to (empty = all).
    scope: Tuple[str, ...] = ()

    def applies_to(self, pkgpath: str) -> bool:
        """Whether this rule runs on the module at ``pkgpath``."""
        if not self.scope:
            return True
        return any(pkgpath.startswith(prefix) for prefix in self.scope)

    def finding(self, module: ModuleUnderCheck, node: ast.AST, message: str) -> Finding:
        """Build a finding for ``node`` in ``module`` under this rule."""
        return Finding(
            path=module.pkgpath,
            line=getattr(node, "lineno", 1),
            rule=self.rule_id,
            message=message,
            severity=self.severity,
        )

    def check(self, module: ModuleUnderCheck) -> Iterator[Finding]:
        """Yield this rule's findings for one module."""
        raise NotImplementedError

    def run(self, module: ModuleUnderCheck) -> List[Finding]:
        """Scoped, pragma-filtered findings for ``module``."""
        if not self.applies_to(module.pkgpath):
            return []
        return [
            finding
            for finding in self.check(module)
            if not module.is_suppressed(finding.rule, finding.line)
        ]


class ProjectChecker(Checker):
    """Base class of cross-module rules (engine parity, registry hygiene).

    The harness calls :meth:`check_project` once with every parsed module;
    ``scope`` still filters which modules count as *this rule's inputs* and
    inline pragmas still suppress findings by their reported line.
    """

    def check(self, module: ModuleUnderCheck) -> Iterator[Finding]:
        """Per-module entry point is unused for project rules."""
        return iter(())

    def check_project(
        self, modules: Sequence[ModuleUnderCheck]
    ) -> Iterator[Finding]:
        """Yield findings computed over every scanned module at once."""
        raise NotImplementedError

    def run_project(self, modules: Sequence[ModuleUnderCheck]) -> List[Finding]:
        """Scoped, pragma-filtered findings over the whole module set."""
        scoped = [m for m in modules if self.applies_to(m.pkgpath)]
        by_pkgpath = {m.pkgpath: m for m in scoped}
        results = []
        for finding in self.check_project(scoped):
            origin = by_pkgpath.get(finding.path)
            if origin is not None and origin.is_suppressed(finding.rule, finding.line):
                continue
            results.append(finding)
        return results


#: Registered rule classes by rule id (filled by :func:`register_checker`).
CHECKER_REGISTRY: Dict[str, Type[Checker]] = {}


def register_checker(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a rule to :data:`CHECKER_REGISTRY` (strict)."""
    if not cls.rule_id:
        raise ValueError(f"checker {cls.__name__} declares no rule_id")
    if cls.rule_id in CHECKER_REGISTRY:
        raise ValueError(f"checker rule id {cls.rule_id!r} is already registered")
    CHECKER_REGISTRY[cls.rule_id] = cls
    return cls


def all_checkers() -> List[Checker]:
    """Fresh instances of every registered rule, in rule-id order."""
    return [CHECKER_REGISTRY[rule_id]() for rule_id in sorted(CHECKER_REGISTRY)]
