"""Determinism rules: no hidden RNG state, no wall clocks, ordered fingerprints.

The repository's load-bearing guarantees — byte-identical serial/parallel
JSON, zero-resolve warmed reruns, content-addressed caching — all reduce to
one property: *everything that influences a result is an explicit input*.
These rules prove the three ways that property classically rots, at the AST
level:

* ``determinism-rng`` — module-level RNG state (``random.random()``,
  ``numpy.random.rand()``) and unseeded or possibly-``None``-seeded
  generator construction (``default_rng()``, ``default_rng(seed)`` where
  ``seed`` may be ``None``) inside kernel and workload code.
* ``determinism-clock`` — wall-clock reads (``time.time()``,
  ``datetime.now()``) inside kernel code; ``time.perf_counter()`` stays
  legal because solve/benchmark *timing metadata* is not part of any
  result identity.
* ``fingerprint-order`` — iteration over unordered sets, salted builtin
  ``hash()`` and unsorted ``json.dumps`` inside fingerprint/cache-key
  functions, where iteration order becomes the cache key.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Set

from ..astutil import dotted_name, maybe_none_params
from ..base import Checker, ModuleUnderCheck, register_checker
from ..findings import Finding

__all__ = [
    "UnseededRandomChecker",
    "WallClockChecker",
    "FingerprintOrderChecker",
]

#: numpy.random attributes that construct *explicit* generator objects
#: (safe when given a seed) rather than touching the global state.
_NUMPY_GENERATOR_FACTORIES = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox"}
)

#: Call names that build a generator and therefore need a non-None seed.
_SEEDED_CONSTRUCTORS = frozenset(
    {"default_rng", "Random", "SystemRandom", "RandomState"}
)


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    """Local names bound to the numpy module (``numpy``, ``np``, ...)."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "numpy":
                    aliases.add(item.asname or "numpy")
    return aliases


def _function_param_stacks(tree: ast.Module) -> Dict[int, Dict[str, bool]]:
    """Node id -> merged "param may be None" map of its enclosing functions."""
    scopes: Dict[int, Dict[str, bool]] = {}

    def walk(node: ast.AST, params: Dict[str, bool]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            params = {**params, **maybe_none_params(node)}
        for child in ast.iter_child_nodes(node):
            scopes[id(child)] = params
            walk(child, params)

    scopes[id(tree)] = {}
    walk(tree, {})
    return scopes


@register_checker
class UnseededRandomChecker(Checker):
    """No module-level RNG state and no possibly-unseeded generators."""

    rule_id = "determinism-rng"
    description = (
        "kernel/workload code must thread explicit seeded generators: no "
        "random.* or numpy.random.* module-state calls, no default_rng()/"
        "Random() that is unseeded or seeded from a possibly-None parameter"
    )
    scope = (
        "disksim/", "algorithms/", "lp/", "workloads/", "core/", "service/",
        "analysis/remote.py",
    )

    def check(self, module: ModuleUnderCheck) -> Iterator[Finding]:
        """Flag global-state RNG calls and unseeded generator construction."""
        numpy_names = _numpy_aliases(module.tree)
        scopes = _function_param_stacks(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = [n.name for n in node.names if n.name not in ("Random", "SystemRandom")]
                if bad:
                    yield self.finding(
                        module,
                        node,
                        f"'from random import {', '.join(bad)}' binds module-level "
                        "RNG state; construct an explicit seeded random.Random "
                        "and thread it through instead",
                    )
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            # random.<fn>(...) — global Mersenne Twister state.
            if parts[0] == "random" and len(parts) == 2 and parts[1] not in (
                "Random",
                "SystemRandom",
            ):
                yield self.finding(
                    module,
                    node,
                    f"{name}() uses the module-level random state; thread an "
                    "explicit seeded random.Random through this code path",
                )
                continue
            # numpy.random.<fn>(...) — global legacy RandomState.
            if (
                len(parts) >= 3
                and parts[0] in numpy_names
                and parts[-2] == "random"
                and parts[-1] not in _NUMPY_GENERATOR_FACTORIES
            ):
                yield self.finding(
                    module,
                    node,
                    f"{name}() uses numpy's module-level random state; construct "
                    "an explicit numpy.random.default_rng(seed) instead",
                )
                continue
            # Generator construction must receive a definitely-non-None seed.
            if parts[-1] in _SEEDED_CONSTRUCTORS and parts[-1] != "SystemRandom":
                yield from self._check_seed_argument(module, node, name, scopes)

    def _check_seed_argument(
        self,
        module: ModuleUnderCheck,
        node: ast.Call,
        name: str,
        scopes: Dict[int, Dict[str, bool]],
    ) -> Iterator[Finding]:
        """Flag ``default_rng()``/``Random()`` calls whose seed may be None."""
        if not node.args and not node.keywords:
            yield self.finding(
                module,
                node,
                f"{name}() without a seed is entropy-seeded and nondeterministic; "
                "pass an explicit integer seed",
            )
            return
        seed = node.args[0] if node.args else node.keywords[0].value
        if isinstance(seed, ast.Constant) and seed.value is None:
            yield self.finding(
                module, node, f"{name}(None) is entropy-seeded; pass an integer seed"
            )
            return
        if isinstance(seed, ast.Name):
            params = scopes.get(id(node), {})
            if params.get(seed.id, False):
                yield self.finding(
                    module,
                    node,
                    f"{name}({seed.id}) may be unseeded: parameter {seed.id!r} "
                    "is Optional/defaults to None — require an integer seed",
                )


@register_checker
class WallClockChecker(Checker):
    """No wall-clock reads inside kernel code paths."""

    rule_id = "determinism-clock"
    description = (
        "simulation/algorithm/LP kernel code must not read wall clocks "
        "(time.time, datetime.now); perf_counter timing metadata is exempt"
    )
    scope = (
        "disksim/", "algorithms/", "lp/", "core/", "service/",
        "analysis/remote.py",
    )

    #: Dotted call names that read the wall clock.
    _CLOCK_CALLS = frozenset(
        {
            "time.time",
            "time.time_ns",
            "datetime.now",
            "datetime.utcnow",
            "datetime.today",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "date.today",
            "datetime.date.today",
        }
    )

    def check(self, module: ModuleUnderCheck) -> Iterator[Finding]:
        """Flag calls whose dotted target is a known wall-clock read."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in self._CLOCK_CALLS:
                    yield self.finding(
                        module,
                        node,
                        f"{name}() reads the wall clock inside kernel code; pass "
                        "timestamps in from the caller (timing metadata may use "
                        "time.perf_counter)",
                    )


#: Function names that compute identities: their outputs are cache keys, so
#: everything they iterate must have a defined order.
_FINGERPRINT_FUNCTION = re.compile(r"fingerprint|canonical_payload|cache_key|sweep_key")

#: Builtins whose consumption of an iterable is order-insensitive.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset", "Counter"}
)


@register_checker
class FingerprintOrderChecker(Checker):
    """Fingerprinting code must never depend on unordered iteration."""

    rule_id = "fingerprint-order"
    description = (
        "fingerprint/cache-key functions must not iterate sets outside "
        "sorted(), call builtin hash() (PYTHONHASHSEED-salted), or "
        "json.dumps without sort_keys=True"
    )

    def check(self, module: ModuleUnderCheck) -> Iterator[Finding]:
        """Check every fingerprint-shaped function in the module."""
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _FINGERPRINT_FUNCTION.search(node.name):
                    yield from self._check_function(module, node)

    def _check_function(
        self, module: ModuleUnderCheck, func: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> Iterator[Finding]:
        """Flag unordered iteration, hash() and unsorted json.dumps in one fn."""
        order_safe = self._order_safe_node_ids(func)
        for node in ast.walk(func):
            if isinstance(node, ast.For) and self._is_unordered(node.iter):
                yield self.finding(
                    module,
                    node,
                    f"{func.name}() iterates an unordered set; wrap the iterable "
                    "in sorted() so the fingerprint is stable",
                )
            elif isinstance(node, (ast.GeneratorExp, ast.ListComp)):
                if id(node) not in order_safe and any(
                    self._is_unordered(gen.iter) for gen in node.generators
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{func.name}() builds an ordered value from an unordered "
                        "set; wrap the comprehension (or its source) in sorted()",
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name == "hash":
                    yield self.finding(
                        module,
                        node,
                        f"{func.name}() uses builtin hash(), which is salted per "
                        "process (PYTHONHASHSEED); use hashlib instead",
                    )
                elif name is not None and name.split(".")[-1] == "dumps":
                    if not any(
                        kw.arg == "sort_keys"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                        for kw in node.keywords
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"{func.name}() serialises JSON without sort_keys=True; "
                            "dict insertion order would become the cache key",
                        )

    @staticmethod
    def _is_unordered(node: ast.AST) -> bool:
        """Whether an iterable expression is statically known to be a set."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return name in ("set", "frozenset")
        return False

    @staticmethod
    def _order_safe_node_ids(func: ast.AST) -> Set[int]:
        """Ids of comprehensions fed directly into order-insensitive builtins."""
        safe: Set[int] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _ORDER_INSENSITIVE:
                    for arg in node.args:
                        safe.add(id(arg))
        return safe
