"""Float-equality rule: no ``==``/``!=`` on inexact float expressions.

Approximation ratios, hit rates and Zipf weights are floats; comparing
them with ``==`` works until a refactor changes evaluation order and a
gate silently flips.  This rule flags equality comparisons whose operand
is statically float-typed *and inexact*: a non-integral float literal, a
true-division result, or ``float("nan")`` (never equal to anything,
including itself).  Comparisons against ``float("inf")`` stay legal —
infinity is produced literally in this codebase (ratios over a zero
optimum) and equality with it is exact.  Functions whose whole purpose is
exact float bookkeeping are allowlisted by name in
:data:`EXACT_EQUALITY_HELPERS`; anything else needs an explicit
``math.isclose``/tolerance comparison or an inline
``# repro: allow(float-equality)`` pragma with a justification.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Optional

from ..astutil import dotted_name
from ..base import Checker, ModuleUnderCheck, register_checker
from ..findings import Finding

__all__ = ["EXACT_EQUALITY_HELPERS", "FloatEqualityChecker"]

#: Functions allowed to compare floats exactly: they traffic only in values
#: produced by exact operations (literal inf sentinels, 0-vs-0 ratios).
EXACT_EQUALITY_HELPERS: FrozenSet[str] = frozenset({"safe_ratio", "_row_ratio"})


def _is_float_call(node: ast.AST, *values: str) -> bool:
    """Whether ``node`` is ``float("<one of values>")``."""
    return (
        isinstance(node, ast.Call)
        and dotted_name(node.func) == "float"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
        and node.args[0].value.lower().lstrip("+-") in values
    )


def _inexact_reason(node: ast.AST) -> Optional[str]:
    """Why ``node`` is an inexact float operand, or None if it is not."""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        if node.value != int(node.value):
            return f"float literal {node.value!r}"
        return None  # integral literals (0.0, 1.0) are exactly representable
    if _is_float_call(node, "nan"):
        return 'float("nan") (never equal to anything, itself included)'
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return "a true-division result"
    return None


@register_checker
class FloatEqualityChecker(Checker):
    """Equality on inexact float expressions outside the exact helpers."""

    rule_id = "float-equality"
    description = (
        "no ==/!= against non-integral float literals, division results or "
        "NaN outside the exact-equivalence helper allowlist"
    )
    severity = "warning"

    def check(self, module: ModuleUnderCheck) -> Iterator[Finding]:
        """Flag suspicious equality comparisons, skipping allowlisted helpers."""
        yield from self._walk(module, module.tree, allowlisted=False)

    def _walk(
        self, module: ModuleUnderCheck, node: ast.AST, allowlisted: bool
    ) -> Iterator[Finding]:
        """Recursive walk tracking whether an allowlisted helper encloses us."""
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            allowlisted = allowlisted or node.name in EXACT_EQUALITY_HELPERS
        if isinstance(node, ast.Compare) and not allowlisted:
            operands = [node.left, *node.comparators]
            has_equality = any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
            if has_equality:
                for operand in operands:
                    reason = _inexact_reason(operand)
                    if reason is not None:
                        yield Finding(
                            path=module.pkgpath,
                            line=node.lineno,
                            rule=self.rule_id,
                            message=f"==/!= against {reason}; use math.isclose or "
                            "an explicit tolerance",
                            severity=self.severity,
                        )
                        break
        for child in ast.iter_child_nodes(node):
            yield from self._walk(module, child, allowlisted)
