"""Error-discipline rule: spec grammars fail only with named, typed errors.

The three spec grammars (``repro.specs``, ``repro.workloads.spec``,
``repro.algorithms.registry``) promise that every parse failure is a
:class:`~repro.errors.ConfigurationError` whose message names the
offending spec — the CLI turns exactly that class into a one-line exit-2
diagnostic, and the registry contract tests assert the wording.  A bare
``ValueError`` or ``KeyError`` escaping a parser breaks both.  This rule
proves the property statically: every ``raise`` in those files must
construct a ``ConfigurationError`` with a dynamic (f-string) message, so
the error always carries the actual spec/parameter it rejects.

Coercer callables deliberately raise ``ValueError`` as their *protocol*
(``coerce_params`` converts it, attaching the spec); those sites carry an
inline ``# repro: allow(spec-error-discipline)`` pragma with the
justification next to the raise.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import dotted_name
from ..base import Checker, ModuleUnderCheck, register_checker
from ..findings import Finding

__all__ = ["SpecErrorDisciplineChecker"]


@register_checker
class SpecErrorDisciplineChecker(Checker):
    """Every raise in the spec grammars is a spec-naming ConfigurationError."""

    rule_id = "spec-error-discipline"
    description = (
        "spec-grammar modules may only raise ConfigurationError, with an "
        "f-string message that names the offending spec"
    )
    scope = ("specs.py", "workloads/spec.py", "algorithms/registry.py")

    def check(self, module: ModuleUnderCheck) -> Iterator[Finding]:
        """Flag non-ConfigurationError raises and static/constant messages."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise):
                continue
            if node.exc is None:  # bare re-raise keeps the original error
                continue
            exc = node.exc
            if not isinstance(exc, ast.Call):
                yield self.finding(
                    module,
                    node,
                    "raise of a non-constructed exception in a spec grammar; "
                    "raise ConfigurationError(f\"...\") naming the spec",
                )
                continue
            name = dotted_name(exc.func) or "<dynamic>"
            if name.split(".")[-1] != "ConfigurationError":
                yield self.finding(
                    module,
                    node,
                    f"spec grammar raises {name}; parse failures must be "
                    "ConfigurationError so the CLI reports them as one-line "
                    "configuration errors",
                )
                continue
            message = exc.args[0] if exc.args else None
            if not (
                isinstance(message, ast.JoinedStr)
                and any(
                    isinstance(part, ast.FormattedValue) for part in message.values
                )
            ):
                yield self.finding(
                    module,
                    node,
                    "ConfigurationError message is not an f-string interpolating "
                    "the offending spec; a static message cannot name what it "
                    "rejects",
                )
