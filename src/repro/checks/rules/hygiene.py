"""Registry-hygiene rule: declared schemas match the factories they call.

Every workload and algorithm registration binds three things that must
agree: a human-readable summary (the catalog "docstring"), a typed
parameter schema (``ParamSpec`` entries), and a factory/builder callable
invoked with the coerced parameters as keyword arguments.  The runtime
only discovers a mismatch when a spec using the stray parameter is
actually parsed — a ``TypeError`` at build time, wrapped into a confusing
configuration error.  This rule proves the consistency statically:

* the summary must be a non-empty string literal;
* a lambda builder's parameter list must equal the declared schema names
  exactly (the workload registry's idiom);
* a named factory (the algorithm registry's idiom) is resolved to its
  class/function definition across the scanned tree — every declared
  schema name must be a parameter its ``__init__`` accepts, and the
  definition must carry a docstring.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..astutil import callable_arg_names, lambda_arg_names, str_constant
from ..base import ModuleUnderCheck, ProjectChecker, register_checker
from ..findings import Finding

__all__ = ["RegistryHygieneChecker"]

#: Call names that register an entry as ``(name, summary, factory, params)``.
_DEF_CALLS = frozenset({"_def"})

#: Call names that register as ``(name, factory, *, summary=, params=)``.
_REGISTER_CALLS = frozenset({"register_algorithm"})


def _param_spec_names(node: Optional[ast.AST]) -> List[Tuple[int, Optional[str]]]:
    """``(line, name)`` of every ``ParamSpec(...)`` in a params list/tuple."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return []
    names: List[Tuple[int, Optional[str]]] = []
    for element in node.elts:
        if (
            isinstance(element, ast.Call)
            and isinstance(element.func, ast.Name)
            and element.func.id == "ParamSpec"
        ):
            first = element.args[0] if element.args else None
            names.append((element.lineno, str_constant(first)))
    return names


def _keyword(call: ast.Call, name: str) -> Optional[ast.AST]:
    """The value of keyword argument ``name`` on ``call``, if present."""
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


class _Registration:
    """One parsed registration call: name, summary, factory, schema names."""

    def __init__(
        self,
        module: ModuleUnderCheck,
        call: ast.Call,
        name: Optional[str],
        summary: Optional[ast.AST],
        factory: Optional[ast.AST],
        params: Optional[ast.AST],
    ) -> None:
        """Capture the decomposed call (no validation happens here)."""
        self.module = module
        self.call = call
        self.name = name or "<dynamic>"
        self.summary = summary
        self.factory = factory
        self.param_names = _param_spec_names(params)


def _registrations(module: ModuleUnderCheck) -> Iterator[_Registration]:
    """Every statically-readable registration call in the module.

    Calls whose entry name is not a string literal are skipped: they are
    forwarding helpers (``_def`` calling ``register_algorithm`` with its
    own parameters) or plugin machinery the rule cannot reason about.
    """
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
            continue
        args = node.args
        if not args or str_constant(args[0]) is None:
            continue
        if node.func.id in _DEF_CALLS:
            yield _Registration(
                module,
                node,
                name=str_constant(args[0]) if args else None,
                summary=(args[1] if len(args) > 1 else _keyword(node, "summary")),
                factory=(args[2] if len(args) > 2 else None),
                params=(args[3] if len(args) > 3 else _keyword(node, "params")),
            )
        elif node.func.id in _REGISTER_CALLS:
            yield _Registration(
                module,
                node,
                name=str_constant(args[0]) if args else None,
                summary=_keyword(node, "summary"),
                factory=(args[1] if len(args) > 1 else _keyword(node, "factory")),
                params=_keyword(node, "params"),
            )


def _definition_index(
    modules: Sequence[ModuleUnderCheck],
) -> Dict[str, "ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef"]:
    """Top-level class/function definitions by name across the scanned tree."""
    index: Dict[str, "ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef"] = {}
    for module in modules:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                index.setdefault(node.name, node)
    return index


def _factory_signature(
    definition: "ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef",
) -> Optional[Tuple[List[str], bool]]:
    """``(accepted kwarg names, has **kwargs)`` of a factory definition.

    For classes the explicit ``__init__`` is used; a class without one
    (inherited constructor) returns None — the rule then skips the
    signature comparison rather than guessing.
    """
    if isinstance(definition, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return callable_arg_names(definition)
    for item in definition.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if item.name == "__init__":
                return callable_arg_names(item)
    return None


@register_checker
class RegistryHygieneChecker(ProjectChecker):
    """Registrations carry summaries and schema-consistent factories."""

    rule_id = "registry-hygiene"
    description = (
        "every registered workload/algorithm must declare a non-empty summary "
        "and a parameter schema its factory signature actually accepts"
    )
    scope = ("workloads/", "algorithms/")

    def check_project(
        self, modules: Sequence[ModuleUnderCheck]
    ) -> Iterator[Finding]:
        """Validate every registration against the scanned definitions."""
        index = _definition_index(modules)
        for module in modules:
            if module.pkgpath not in ("workloads/spec.py", "algorithms/registry.py"):
                continue
            for registration in _registrations(module):
                yield from self._check_registration(registration, index)

    def _check_registration(
        self,
        registration: _Registration,
        index: Dict[str, "ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef"],
    ) -> Iterator[Finding]:
        """All hygiene findings for one registration call."""
        module = registration.module
        call = registration.call
        name = registration.name
        summary = str_constant(registration.summary)
        if not summary or not summary.strip():
            yield self.finding(
                module,
                call,
                f"registration {name!r} has no summary string — the catalog "
                "docstring is part of the registry contract",
            )
        declared = [n for _line, n in registration.param_names if n is not None]
        if len(declared) != len(set(declared)):
            yield self.finding(
                module, call, f"registration {name!r} declares duplicate ParamSpec names"
            )
        factory = registration.factory
        if isinstance(factory, ast.Lambda):
            accepted = lambda_arg_names(factory)
            if sorted(accepted) != sorted(declared):
                yield self.finding(
                    module,
                    call,
                    f"registration {name!r}: lambda builder takes "
                    f"({', '.join(accepted) or 'nothing'}) but the schema declares "
                    f"({', '.join(declared) or 'nothing'}) — the coerced parameters "
                    "are passed as keywords, so the sets must match exactly",
                )
        elif isinstance(factory, ast.Name):
            definition = index.get(factory.id)
            if definition is None:
                return  # defined outside the scanned tree; nothing to compare
            if not ast.get_docstring(definition):
                yield self.finding(
                    module,
                    call,
                    f"registration {name!r}: factory {factory.id} has no docstring",
                )
            signature = _factory_signature(definition)
            if signature is None:
                return  # inherited constructor; cannot compare statically
            accepted, has_kwargs = signature
            if has_kwargs:
                return
            unknown = sorted(set(declared) - set(accepted))
            if unknown:
                yield self.finding(
                    module,
                    call,
                    f"registration {name!r}: schema declares parameter(s) "
                    f"{', '.join(repr(u) for u in unknown)} that factory "
                    f"{factory.id}({', '.join(accepted)}) does not accept",
                )
