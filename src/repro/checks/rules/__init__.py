"""The rule battery: importing this package registers every built-in rule.

Each module groups related rules; the act of importing runs the
``@register_checker`` decorators, filling
:data:`repro.checks.base.CHECKER_REGISTRY`.  The run harness imports this
package once, so ``repro check`` always sees the complete battery.
"""

from __future__ import annotations

from . import determinism, discipline, floats, hygiene, parity

__all__ = ["determinism", "discipline", "floats", "hygiene", "parity"]
