"""Engine-parity rule: the planner's vector-eligibility set cannot drift.

The runner's shape-bucketing planner pre-screens grid points with
``_VECTOR_FAMILIES`` (:mod:`repro.analysis.runner`) before handing them to
the vector kernel, while the kernel's own coverage is defined by the
``type(policy) is <Class>`` dispatch in ``_resolve_plan``
(:mod:`repro.disksim.vector`).  If the two sets drift — a family added to
the kernel but not the planner — the engine silently stops batching that
family (a pure performance regression no equivalence test catches); drift
the other way sends ineligible points into per-pair fallback churn.  This
rule extracts both sets from the ASTs and fails when they disagree, so the
invariant holds before anything runs.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence, Set, Tuple

from ..astutil import dotted_name
from ..base import ModuleUnderCheck, ProjectChecker, register_checker
from ..findings import Finding

__all__ = ["EngineParityChecker"]

_RUNNER = "analysis/runner.py"
_VECTOR = "disksim/vector.py"


def _planner_families(module: ModuleUnderCheck) -> Optional[Tuple[int, Set[str]]]:
    """``(line, families)`` of the runner's ``_VECTOR_FAMILIES`` literal."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "_VECTOR_FAMILIES" not in targets:
                continue
            value = node.value
            if isinstance(value, ast.Call) and dotted_name(value.func) in (
                "frozenset",
                "set",
            ):
                value = value.args[0] if value.args else value
            if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
                families = {
                    elt.value
                    for elt in value.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                }
                return node.lineno, families
    return None


def _kernel_families(module: ModuleUnderCheck) -> Optional[Tuple[int, Set[str]]]:
    """``(line, families)`` the kernel's ``_resolve_plan`` dispatches on.

    Families are the lower-cased class names appearing in
    ``type(policy) is <Class>`` comparisons — the exact-type dispatch the
    kernel documents (subclasses fall back to the loop engine).
    """
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.FunctionDef) and node.name == "_resolve_plan"):
            continue
        families: Set[str] = set()
        for compare in ast.walk(node):
            if not isinstance(compare, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Is, ast.Eq)) for op in compare.ops):
                continue
            operands = [compare.left, *compare.comparators]
            involves_type_call = any(
                isinstance(o, ast.Call) and dotted_name(o.func) == "type"
                for o in operands
            )
            if not involves_type_call:
                continue
            for operand in operands:
                name = dotted_name(operand)
                if name is not None:
                    families.add(name.split(".")[-1].lower())
        return node.lineno, families
    return None


@register_checker
class EngineParityChecker(ProjectChecker):
    """Planner vector-eligibility and kernel coverage must agree exactly."""

    rule_id = "engine-parity"
    description = (
        "the algorithm families runner._VECTOR_FAMILIES declares must equal "
        "the families disksim.vector._resolve_plan dispatches on"
    )
    scope = (_RUNNER, _VECTOR)

    def check_project(
        self, modules: Sequence[ModuleUnderCheck]
    ) -> Iterator[Finding]:
        """Compare the two statically-extracted family sets."""
        by_path = {m.pkgpath: m for m in modules}
        runner = by_path.get(_RUNNER)
        vector = by_path.get(_VECTOR)
        if runner is None or vector is None:
            return  # partial scan: the invariant spans both files
        planner = _planner_families(runner)
        if planner is None:
            yield Finding(
                path=_RUNNER,
                line=1,
                rule=self.rule_id,
                message="cannot find the _VECTOR_FAMILIES frozenset literal the "
                "engine-parity invariant is anchored on",
            )
            return
        kernel = _kernel_families(vector)
        if kernel is None:
            yield Finding(
                path=_VECTOR,
                line=1,
                rule=self.rule_id,
                message="cannot find the _resolve_plan type-dispatch the "
                "engine-parity invariant is anchored on",
            )
            return
        planner_line, planner_set = planner
        _kernel_line, kernel_set = kernel
        if planner_set != kernel_set:
            missing = sorted(kernel_set - planner_set)
            extra = sorted(planner_set - kernel_set)
            detail = []
            if missing:
                detail.append(
                    f"kernel covers {', '.join(missing)} but the planner never "
                    "batches them"
                )
            if extra:
                detail.append(
                    f"planner marks {', '.join(extra)} eligible but the kernel "
                    "cannot run them"
                )
            yield Finding(
                path=_RUNNER,
                line=planner_line,
                rule=self.rule_id,
                message="_VECTOR_FAMILIES disagrees with disksim/vector.py "
                f"_resolve_plan: {'; '.join(detail)}",
            )
