"""repro — reproduction of Albers & Büttner, *Integrated prefetching and caching
in single and parallel disk systems* (SPAA 2003 / Information and Computation 2005).

The package provides:

* :mod:`repro.disksim` — the single/parallel disk simulation substrate,
* :mod:`repro.paging` — classical eviction policies (Belady's MIN, LRU, FIFO),
* :mod:`repro.algorithms` — Aggressive, Conservative, Delay(d), Combination and
  the parallel-disk baselines,
* :mod:`repro.lp` — the Section 3 linear-programming machinery and exact
  optimal schedulers,
* :mod:`repro.core` — theoretical bounds, dominance arguments and the
  Theorem 4 driver,
* :mod:`repro.workloads` — adversarial, synthetic and trace-like request
  generators,
* :mod:`repro.analysis` — approximation-ratio measurement and parameter sweeps,
* :mod:`repro.viz` — text-based schedule visualisation.

Quickstart
----------
>>> from repro import ProblemInstance, simulate
>>> from repro.algorithms import Aggressive
>>> inst = ProblemInstance.single_disk(
...     ["b1", "b2", "b3", "b4", "b4", "b5", "b1", "b4", "b4", "b2"],
...     cache_size=4, fetch_time=4, initial_cache=["b1", "b2", "b3", "b4"])
>>> result = simulate(inst, Aggressive())
>>> result.elapsed_time
13
"""

from .disksim import (
    CacheState,
    DiskLayout,
    FetchDecision,
    IntervalFetch,
    IntervalSchedule,
    PolicyView,
    PrefetchPolicy,
    ProblemInstance,
    RequestSequence,
    Schedule,
    SimMetrics,
    SimulationResult,
    TimedFetch,
    execute_interval_schedule,
    execute_schedule,
    simulate,
)
from .errors import (
    CacheError,
    ConfigurationError,
    InfeasibleError,
    InvalidScheduleError,
    InvalidSequenceError,
    PolicyError,
    ReproError,
    SolverError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # simulator
    "CacheState",
    "DiskLayout",
    "FetchDecision",
    "IntervalFetch",
    "IntervalSchedule",
    "PolicyView",
    "PrefetchPolicy",
    "ProblemInstance",
    "RequestSequence",
    "Schedule",
    "SimMetrics",
    "SimulationResult",
    "TimedFetch",
    "execute_interval_schedule",
    "execute_schedule",
    "simulate",
    # errors
    "CacheError",
    "ConfigurationError",
    "InfeasibleError",
    "InvalidScheduleError",
    "InvalidSequenceError",
    "PolicyError",
    "ReproError",
    "SolverError",
]
