"""Eviction-policy protocol for pure paging (caching without prefetching).

The integrated prefetching/caching algorithms of the paper lean on classical
paging in two places: the *Conservative* algorithm performs exactly the block
replacements of Belady's optimal offline algorithm MIN, and the experiments
use pure demand paging (with MIN or LRU replacement) as a no-prefetching
baseline.  This module defines the small protocol those policies implement
plus a reference demand-paging simulator for fault counting.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from .._typing import BlockId
from ..disksim.sequence import RequestSequence
from ..errors import ConfigurationError

__all__ = ["EvictionPolicy", "PagingResult", "run_paging"]


class EvictionPolicy(ABC):
    """A replacement policy for classical demand paging.

    The policy is consulted only on a fault with a full cache and must name
    the resident block to evict.  Policies may keep internal state; ``reset``
    is called before each run.
    """

    #: Human-readable policy name used in reports.
    name: str = "eviction-policy"

    @abstractmethod
    def reset(self, sequence: RequestSequence, cache_size: int) -> None:
        """Prepare for a fresh run over ``sequence`` with ``cache_size`` slots."""

    @abstractmethod
    def choose_victim(
        self, position: int, resident: Set[BlockId], requested: BlockId
    ) -> BlockId:
        """Victim to evict when ``requested`` faults at ``position`` with a full cache."""

    def on_access(self, position: int, block: BlockId, hit: bool) -> None:
        """Hook invoked on every access (hit or miss); default: no-op."""


@dataclass(frozen=True)
class PagingResult:
    """Outcome of a pure demand-paging run."""

    faults: int
    hits: int
    evictions: Tuple[Tuple[int, BlockId, Optional[BlockId]], ...]
    """One entry per fault: (position, faulting block, evicted block or None)."""

    final_cache: frozenset

    @property
    def fault_rate(self) -> float:
        """Fraction of requests that faulted."""
        total = self.faults + self.hits
        return self.faults / total if total else 0.0

    def eviction_at(self, position: int) -> Optional[BlockId]:
        """Block evicted by the fault at ``position`` (None if no eviction there)."""
        for pos, _, victim in self.evictions:
            if pos == position:
                return victim
        return None


def run_paging(
    sequence: RequestSequence | Sequence[BlockId],
    cache_size: int,
    policy: EvictionPolicy,
    initial_cache: Sequence[BlockId] = (),
) -> PagingResult:
    """Simulate classical demand paging (no prefetching, no fetch latency).

    Every fault costs one eviction when the cache is full; the fetched block
    is usable immediately.  This is the textbook paging model — it is used by
    Conservative to precompute MIN's replacement decisions and by the analysis
    harness as a latency-free baseline.
    """
    seq = sequence if isinstance(sequence, RequestSequence) else RequestSequence(sequence)
    if cache_size < 1:
        raise ConfigurationError(f"cache_size must be >= 1, got {cache_size}")
    resident: Set[BlockId] = set(initial_cache)
    if len(resident) > cache_size:
        raise ConfigurationError(
            f"initial cache holds {len(resident)} blocks, capacity is {cache_size}"
        )
    policy.reset(seq, cache_size)

    faults = 0
    hits = 0
    evictions: List[Tuple[int, BlockId, Optional[BlockId]]] = []
    for position, block in enumerate(seq):
        if block in resident:
            hits += 1
            policy.on_access(position, block, True)
            continue
        faults += 1
        policy.on_access(position, block, False)
        victim: Optional[BlockId] = None
        if len(resident) >= cache_size:
            victim = policy.choose_victim(position, resident, block)
            if victim not in resident:
                raise ConfigurationError(
                    f"policy {policy.name} evicted non-resident block {victim!r}"
                )
            resident.discard(victim)
        resident.add(block)
        evictions.append((position, block, victim))

    return PagingResult(
        faults=faults,
        hits=hits,
        evictions=tuple(evictions),
        final_cache=frozenset(resident),
    )
