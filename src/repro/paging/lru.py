"""Least-recently-used replacement.

LRU is the classical online paging heuristic (Sleator & Tarjan analysed its
competitiveness).  It is not used by the paper's algorithms, but serves as an
online point of comparison in the experiments and exercises the eviction-
policy substrate with a stateful policy.
"""

from __future__ import annotations

from typing import Dict, Set

from .._typing import BlockId
from ..disksim.sequence import RequestSequence
from .base import EvictionPolicy

__all__ = ["LRU"]


class LRU(EvictionPolicy):
    """Evict the resident block whose last use is oldest."""

    name = "LRU"

    def __init__(self) -> None:
        self._last_use: Dict[BlockId, int] = {}

    def reset(self, sequence: RequestSequence, cache_size: int) -> None:
        self._last_use = {}

    def on_access(self, position: int, block: BlockId, hit: bool) -> None:
        self._last_use[block] = position

    def choose_victim(
        self, position: int, resident: Set[BlockId], requested: BlockId
    ) -> BlockId:
        # Blocks never accessed (warm-start residents) have last use -1 and are
        # evicted first; ties broken by name for determinism.
        return min(resident, key=lambda b: (self._last_use.get(b, -1), str(b)))
