"""Classical paging (pure caching) policies: Belady's MIN, LRU and FIFO.

These are the caching-only substrate of the integrated problem; the
Conservative prefetching algorithm reuses MIN's replacement decisions
directly.
"""

from .base import EvictionPolicy, PagingResult, run_paging
from .belady import BeladyMIN, min_fault_count
from .fifo import FIFO
from .lru import LRU

__all__ = [
    "EvictionPolicy",
    "PagingResult",
    "run_paging",
    "BeladyMIN",
    "min_fault_count",
    "FIFO",
    "LRU",
]
