"""Belady's optimal offline replacement algorithm MIN.

MIN evicts, on every fault with a full cache, the resident block whose next
reference is furthest in the future (blocks never referenced again are
furthest of all).  Belady (1966) proved MIN minimises the number of faults;
the *Conservative* prefetching algorithm of Cao et al. performs exactly MIN's
replacements while overlapping the fetches with computation as much as the
replacement choice allows.
"""

from __future__ import annotations

from typing import Optional, Set

from .._typing import BlockId
from ..disksim.sequence import RequestSequence
from .base import EvictionPolicy

__all__ = ["BeladyMIN", "min_fault_count"]


class BeladyMIN(EvictionPolicy):
    """Furthest-in-future replacement (optimal offline paging)."""

    name = "MIN"

    def __init__(self) -> None:
        self._sequence: Optional[RequestSequence] = None

    def reset(self, sequence: RequestSequence, cache_size: int) -> None:
        self._sequence = sequence

    def choose_victim(
        self, position: int, resident: Set[BlockId], requested: BlockId
    ) -> BlockId:
        assert self._sequence is not None, "reset() must be called before choose_victim()"
        seq = self._sequence
        # Furthest next use measured strictly after the faulting position; ties
        # broken by block name for determinism.
        return max(resident, key=lambda b: (seq.next_use_from(position + 1, b), str(b)))


def min_fault_count(
    sequence: RequestSequence,
    cache_size: int,
    initial_cache=(),
) -> int:
    """Number of faults MIN incurs — the offline minimum for demand paging."""
    from .base import run_paging

    return run_paging(sequence, cache_size, BeladyMIN(), initial_cache).faults
