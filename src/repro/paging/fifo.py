"""First-in-first-out replacement.

FIFO evicts the resident block that entered the cache earliest.  Included as
a second online baseline and as a deliberately weak policy for tests that
need a policy other than MIN/LRU.
"""

from __future__ import annotations

from typing import Dict, Set

from .._typing import BlockId
from ..disksim.sequence import RequestSequence
from .base import EvictionPolicy

__all__ = ["FIFO"]


class FIFO(EvictionPolicy):
    """Evict the resident block with the earliest load time."""

    name = "FIFO"

    def __init__(self) -> None:
        self._load_order: Dict[BlockId, int] = {}
        self._counter = 0

    def reset(self, sequence: RequestSequence, cache_size: int) -> None:
        self._load_order = {}
        self._counter = 0

    def on_access(self, position: int, block: BlockId, hit: bool) -> None:
        if not hit and block not in self._load_order:
            self._load_order[block] = self._counter
            self._counter += 1

    def choose_victim(
        self, position: int, resident: Set[BlockId], requested: BlockId
    ) -> BlockId:
        return min(resident, key=lambda b: (self._load_order.get(b, -1), str(b)))
