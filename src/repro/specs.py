"""The shared spec-string grammar: ``name[:key=value,...]`` parsed strictly.

Two registries speak this grammar: the workload registry
(:mod:`repro.workloads.spec`) and the algorithm registry
(:mod:`repro.algorithms.registry`).  Both declare their entries with typed
parameter schemas built from :class:`ParamSpec`; this module owns the pieces
they share so the grammar, the coercion rules and the error wording cannot
drift apart:

* :func:`split_spec` — the grammar-level split of ``name:key=value,...``
  into the name and raw string parameters.  A value may contain ``=`` (the
  split is on the *first* ``=``) but never ``,`` — the separator is not
  escapable, and embedded commas are rejected with a clear error instead of
  truncating the value.
* :class:`ParamSpec` + :func:`coerce_params` — schema-driven coercion.
  Unknown keys, missing required keys and uncoercible values raise
  :class:`~repro.errors.ConfigurationError` naming the offending spec and
  the valid parameters, so a typo can never silently run a different
  experiment.
* :func:`with_params` — purely textual ``key=value`` rewriting used to
  expand one spec over a grid axis (e.g. the runner's seed injection).

Every error message carries a ``role`` ("workload", "algorithm", ...) so
the registries keep their established wording.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence, Tuple

from .errors import ConfigurationError

__all__ = [
    "REQUIRED",
    "ParamSpec",
    "coerce_bool",
    "choice",
    "split_spec",
    "coerce_params",
    "with_params",
]


#: Sentinel marking a parameter without a default (it must appear in the spec).
REQUIRED = object()


def coerce_bool(text: str) -> bool:
    """Coerce the usual boolean spellings (``1/true/yes/on`` and friends)."""
    lowered = text.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    # Coercer protocol: coerce_params converts this into a ConfigurationError
    # that names the spec and parameter.  # repro: allow(spec-error-discipline)
    raise ValueError(f"not a boolean: {text!r}")


def choice(*options: str) -> Callable[[str], str]:
    """A coercer accepting exactly the given lower-case options.

    The returned callable's ``__name__`` renders as ``a|b|c`` so catalog
    rows and error messages list the valid values.
    """
    allowed = tuple(options)

    def coerce(text: str) -> str:
        lowered = text.strip().lower()
        if lowered not in allowed:
            # Coercer protocol: converted by coerce_params, which attaches
            # the offending spec.  # repro: allow(spec-error-discipline)
            raise ValueError(f"expected one of {'|'.join(allowed)}, got {text!r}")
        return lowered

    coerce.__name__ = "|".join(allowed)
    return coerce


_TYPE_NAMES: Dict[Callable, str] = {
    int: "int",
    float: "float",
    str: "str",
    coerce_bool: "bool",
}


@dataclass(frozen=True)
class ParamSpec:
    """One typed parameter of a registry entry: name, coercer, default, help."""

    name: str
    coerce: Callable = int
    default: object = REQUIRED
    help: str = ""

    @property
    def required(self) -> bool:
        return self.default is REQUIRED

    @property
    def type_name(self) -> str:
        return _TYPE_NAMES.get(self.coerce, getattr(self.coerce, "__name__", "value"))

    def describe(self) -> str:
        """``name=default (type)`` rendering for the catalogs."""
        if self.required:
            return f"{self.name} ({self.type_name}, required)"
        return f"{self.name}={self.default} ({self.type_name})"


def split_spec(spec: str, *, role: str = "spec") -> Tuple[str, Dict[str, str]]:
    """Split ``name:key=value,...`` into the name and raw string parameters.

    Strict at the grammar level: every item must be ``key=value`` (split on
    the *first* ``=``, so values may contain ``=``), keys must be unique and
    non-empty, and empty items are rejected.  A value can never contain ``,``
    — an item without ``=`` is diagnosed as a likely embedded comma.
    ``role`` names the registry in the error messages.
    """
    name, _, params_text = spec.partition(":")
    name = name.strip().lower()
    if not name:
        raise ConfigurationError(f"{role} spec {spec!r} has an empty {role} name")
    params: Dict[str, str] = {}
    if not params_text.strip():
        return name, params
    for item in params_text.split(","):
        item = item.strip()
        if not item:
            raise ConfigurationError(
                f"{role} spec {spec!r} contains an empty parameter item "
                "(stray or trailing ',')"
            )
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ConfigurationError(
                f"{role} spec {spec!r}: malformed parameter {item!r} — expected "
                "key=value; note that values cannot contain ',' (the parameter "
                "separator is not escapable)"
            )
        if key in params:
            raise ConfigurationError(
                f"{role} spec {spec!r}: duplicate parameter {key!r}"
            )
        params[key] = value.strip()
    return name, params


def coerce_params(
    name: str,
    schema: Sequence[ParamSpec],
    raw: Mapping[str, str],
    spec: str,
    *,
    role: str = "spec",
) -> Dict[str, object]:
    """Coerce raw string parameters against ``schema``, strictly.

    Unknown keys, missing required keys and uncoercible values raise
    :class:`ConfigurationError` naming ``spec`` and the valid parameters.
    """
    allowed = {p.name: p for p in schema}
    unknown = sorted(set(raw) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"{role} {name!r} in spec {spec!r}: unknown parameter(s) "
            f"{', '.join(repr(k) for k in unknown)}; valid parameters: "
            f"{', '.join(allowed) or '(none)'}"
        )
    coerced: Dict[str, object] = {}
    for param in schema:
        if param.name in raw:
            text = raw[param.name]
            try:
                coerced[param.name] = param.coerce(text)
            except (TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"{role} {name!r} in spec {spec!r}: parameter "
                    f"{param.name}={text!r} is not a valid {param.type_name}: {exc}"
                ) from exc
        elif param.required:
            raise ConfigurationError(
                f"{role} {name!r} in spec {spec!r}: missing required "
                f"parameter {param.name!r}"
            )
        else:
            coerced[param.name] = param.default
    return coerced


def with_params(spec: str, *, role: str = "spec", **overrides: object) -> str:
    """Return ``spec`` with the given ``key=value`` parameters set/overridden.

    Purely textual (the name is not resolved against any registry), but
    grammar-strict: the incoming spec must parse, and override values
    containing ``,`` are rejected — the separator is not escapable, so such
    a value could never round-trip through the parsers.
    """
    name, params = split_spec(spec, role=role)
    for key, value in overrides.items():
        text = str(value)
        if "," in text:
            raise ConfigurationError(
                f"cannot set {key}={text!r} on spec {spec!r}: values cannot "
                "contain ',' (the parameter separator is not escapable)"
            )
        params[key] = text
    if not params:
        return name
    joined = ",".join(f"{k}={v}" for k, v in params.items())
    return f"{name}:{joined}"
