"""Pluggable execution backends for the batched experiment runner.

The runner (:mod:`repro.analysis.runner`) evaluates a grid of independent
tasks — algorithm simulations and LP optimum solves — and used to hard-wire
one ``ProcessPoolExecutor`` path for them.  This module turns execution into
a small subsystem of its own:

* :class:`ExecutionBackend` — the contract: ``map(fn, items)`` applies a
  picklable module-level callable to every item and yields the results **in
  submission order** as they become available.  Order-preservation is what
  lets the runner guarantee byte-identical JSON across all backends.
* :class:`SerialBackend` — in-process, zero-overhead reference executor.
* :class:`ThreadPoolBackend` — a ``ThreadPoolExecutor``; useful when the
  task releases the GIL (HiGHS solves) or on small grids where process
  start-up would dominate.
* :class:`ProcessPoolBackend` — a ``ProcessPoolExecutor`` for CPU-bound
  fan-out (the default for ``workers > 1``).
* :class:`~repro.analysis.remote.RemoteBackend` — serves chunks to
  pull-based ``repro worker`` processes over HTTP (the distributed sweep
  fabric; resolved lazily so the common backends carry no import cost).
* **Adaptive chunking** — the process backend batches items into chunks
  sized by :func:`adaptive_chunk_size` (derived from the task count and
  the worker count), amortising per-task IPC overhead on large grids while
  keeping every worker busy on small ones; the thread backend shares
  memory, so it schedules per item.

Backends are addressed by name (``serial | thread | process | remote |
auto``)
through :func:`make_backend`, which is what ``ExperimentSpec(backend=...)``
and the CLI ``--backend`` option resolve through.  ``auto`` preserves the
historical runner semantics: serial at ``workers <= 1``, process fan-out
otherwise.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterator, Sequence, TypeVar

from ..errors import ConfigurationError

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "BACKEND_NAMES",
    "adaptive_chunk_size",
    "make_backend",
    "resolve_backend_name",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Target number of chunks per worker: enough slack that a slow chunk (an LP
#: solve amid fast simulations) cannot leave the other workers idle, small
#: enough that per-chunk dispatch overhead stays amortised.
_CHUNKS_PER_WORKER = 4

#: Never batch more than this many tasks into one chunk: an upper bound on
#: the work lost when a worker dies and on scheduling granularity.
_MAX_CHUNK = 64


def adaptive_chunk_size(num_tasks: int, workers: int) -> int:
    """The chunk size the pool backends use for ``num_tasks`` over ``workers``.

    Aims for :data:`_CHUNKS_PER_WORKER` chunks per worker (so stragglers
    rebalance), clamped to ``[1, _MAX_CHUNK]``.  Small grids therefore run
    one task per dispatch; a 10,000-point grid on 8 workers runs 64-task
    chunks instead of 10,000 round-trips.
    """
    if num_tasks <= 0:
        return 1
    workers = max(1, workers)
    target = -(-num_tasks // (workers * _CHUNKS_PER_WORKER))  # ceil division
    return max(1, min(target, _MAX_CHUNK))


class ExecutionBackend(ABC):
    """How the runner executes a batch of independent tasks.

    Implementations must yield results in submission order (the runner
    demultiplexes them positionally) and propagate worker exceptions to the
    consumer.  ``fn`` must be a module-level callable and the items
    picklable when the backend crosses a process boundary.
    """

    #: Registry name of the backend (``serial``/``thread``/``process``/
    #: ``remote``).
    name: str = "abstract"

    #: Whether this backend's workers run in detached processes that may not
    #: share the parent's filesystem.  The runner consults this before
    #: handing workers a path to its run store: with detached workers the
    #: parent persists every result itself.
    detached_workers: bool = False

    def __init__(self, workers: int = 0):
        self.workers = max(1, int(workers))

    @abstractmethod
    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> Iterator[_R]:
        """Apply ``fn`` to every item, yielding results in submission order."""

    def close(self) -> None:
        """Release any long-lived resources (sockets, servers); idempotent.

        The pool backends scope their executors to each ``map`` call, so
        this is a no-op for them; the remote backend tears its HTTP server
        down here.
        """


class SerialBackend(ExecutionBackend):
    """In-process execution in submission order — the reference backend."""

    name = "serial"

    def __init__(self, workers: int = 1):
        super().__init__(1)

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> Iterator[_R]:
        """Apply ``fn`` item by item; exceptions surface immediately."""
        for item in items:
            yield fn(item)


class _PoolBackend(ExecutionBackend):
    """Shared pool machinery of the thread and process backends."""

    _executor_type: Callable[..., Executor] = Executor

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> Iterator[_R]:
        """Fan ``items`` out over the pool, yielding results in order.

        The whole task list is submitted up front (one shared queue), so
        heterogeneous tasks — simulations and LP solves — interleave across
        the pool instead of running in phases.  The process pool batches
        items into adaptively sized chunks (``Executor.map``'s native
        ``chunksize``) to amortise IPC; the thread pool shares memory, so
        chunking would only coarsen scheduling and ``chunksize`` is a no-op
        there.  Results stream back in submission order as they complete;
        the pool is shut down when the iterator is exhausted or closed.
        """
        items = list(items)
        if not items:
            return
        size = adaptive_chunk_size(len(items), self.workers)
        with self._executor_type(max_workers=self.workers) as pool:
            yield from pool.map(fn, items, chunksize=size)


class ThreadPoolBackend(_PoolBackend):
    """A ``ThreadPoolExecutor`` backend (GIL-sharing, zero pickling cost)."""

    name = "thread"
    _executor_type = ThreadPoolExecutor


class ProcessPoolBackend(_PoolBackend):
    """A ``ProcessPoolExecutor`` backend for CPU-bound fan-out."""

    name = "process"
    _executor_type = ProcessPoolExecutor


#: Names accepted by :func:`make_backend` (and the CLI ``--backend`` option).
BACKEND_NAMES = ("auto", "serial", "thread", "process", "remote")

_BACKENDS = {
    SerialBackend.name: SerialBackend,
    ThreadPoolBackend.name: ThreadPoolBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
}


def resolve_backend_name(name: str, workers: int) -> str:
    """The concrete backend name ``name`` selects at ``workers`` workers.

    ``auto`` keeps the historical runner behaviour: ``serial`` when
    ``workers <= 1``, ``process`` otherwise.  Unknown names raise a
    :class:`~repro.errors.ConfigurationError` naming the alternatives, so a
    typo fails before any worker starts.
    """
    if name not in BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown execution backend {name!r}; available: {', '.join(BACKEND_NAMES)}"
        )
    if name == "auto":
        return "process" if workers and workers > 1 else "serial"
    return name


def make_backend(name: str, workers: int = 0) -> ExecutionBackend:
    """Build the :class:`ExecutionBackend` named ``name`` with ``workers``.

    ``remote`` is imported lazily (its module pulls in the HTTP coordinator)
    and constructed socket-free — callers decide when to ``start()`` serving.
    """
    resolved = resolve_backend_name(name, workers)
    if resolved == "remote":
        from .remote import RemoteBackend

        return RemoteBackend(workers)
    return _BACKENDS[resolved](workers)
