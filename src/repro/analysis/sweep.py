"""Legacy in-process ratio sweeps (superseded by :mod:`repro.analysis.runner`).

:func:`run_sweep` runs a set of algorithms over a grid of instances and
collects one :class:`~repro.analysis.ratios.RatioReport` per grid point,
including the LP optimum of every point — useful for small ratio studies,
too expensive for scale.  New experiment code (the ``bench_e*`` scripts, the
``repro sweep`` command) should declare grids through
:class:`~repro.analysis.runner.ExperimentSpec` /
:func:`~repro.analysis.runner.evaluate_instances`, which fan out over worker
processes, cache per-point results and emit uniform JSON/CSV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..algorithms.base import PrefetchAlgorithm
from ..disksim.instance import ProblemInstance
from .ratios import RatioReport, measure_parallel_stall, measure_ratios

__all__ = ["SweepPoint", "SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point of a sweep: a label, an instance and optional references."""

    label: str
    instance: ProblemInstance
    optimal_elapsed: Optional[int] = None
    optimal_stall: Optional[int] = None


@dataclass(frozen=True)
class SweepResult:
    """All reports of a sweep, keyed by the grid point labels."""

    reports: Dict[str, RatioReport]

    def labels(self) -> List[str]:
        """Grid point labels in insertion order."""
        return list(self.reports)

    def ratios_for(self, algorithm: str) -> Dict[str, float]:
        """Elapsed-time ratio of ``algorithm`` at every grid point."""
        out = {}
        for label, report in self.reports.items():
            try:
                out[label] = report.measurement(algorithm).elapsed_ratio
            except KeyError:
                continue
        return out

    def max_ratio_for(self, algorithm: str) -> float:
        """Worst elapsed-time ratio of ``algorithm`` over the sweep."""
        ratios = self.ratios_for(algorithm)
        return max(ratios.values()) if ratios else float("nan")

    def as_rows(self) -> List[Dict[str, object]]:
        """Flat row dictionaries (one per algorithm per grid point)."""
        rows: List[Dict[str, object]] = []
        for label, report in self.reports.items():
            for row in report.as_rows():
                rows.append(
                    {
                        "point": label,
                        "opt_stall": report.optimal_stall,
                        "opt_elapsed": report.optimal_elapsed,
                        **row,
                    }
                )
        return rows


def run_sweep(
    points: Iterable[SweepPoint],
    algorithm_factory: Callable[[], Sequence[PrefetchAlgorithm]],
    *,
    parallel: bool = False,
) -> SweepResult:
    """Measure every algorithm produced by ``algorithm_factory`` at every point.

    A fresh set of algorithm objects is created per point because algorithms
    carry per-run state (Conservative's MIN plan, Combination's delegate).
    """
    reports: Dict[str, RatioReport] = {}
    for point in points:
        algorithms = algorithm_factory()
        if parallel:
            report = measure_parallel_stall(point.instance, algorithms)
        else:
            report = measure_ratios(
                point.instance,
                algorithms,
                optimal_elapsed=point.optimal_elapsed,
                optimal_stall=point.optimal_stall,
            )
        reports[point.label] = report
    return SweepResult(reports=reports)
