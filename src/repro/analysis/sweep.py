"""In-process ratio sweeps over prebuilt instances (LP optimum per point).

:func:`run_sweep` runs a set of algorithms over a grid of instances and
computes the optimum of every point with the LP machinery — useful for small
ratio studies, too expensive for scale.  It emits the same unified
:class:`~repro.analysis.results.ResultSet` of
:class:`~repro.analysis.results.RunRecord` s as the batched runner (which
is what new experiment code should declare grids through:
:class:`~repro.analysis.runner.ExperimentSpec` /
:func:`~repro.analysis.runner.evaluate_instances` fan out over worker
processes, cache per-point results and skip the per-point LP).

The pre-PR3 ``SweepResult`` row-dict container is gone; its accessors
(``ratios_for``, ``max_ratio_for``, ``as_rows``) live on :class:`ResultSet`
for every producer, not just this one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from ..algorithms.base import PrefetchAlgorithm
from ..disksim.instance import ProblemInstance
from .ratios import measure_parallel_stall, measure_ratios
from .results import ResultSet

__all__ = ["SweepPoint", "run_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point of a sweep: a label, an instance and optional references."""

    label: str
    instance: ProblemInstance
    optimal_elapsed: Optional[int] = None
    optimal_stall: Optional[int] = None


def run_sweep(
    points: Iterable[SweepPoint],
    algorithm_factory: Callable[[], Sequence[PrefetchAlgorithm]],
    *,
    parallel: bool = False,
    name: str = "sweep",
) -> ResultSet:
    """Measure every algorithm produced by ``algorithm_factory`` at every point.

    A fresh set of algorithm objects is created per point because algorithms
    carry per-run state (Conservative's MIN plan, Combination's delegate).
    Returns the concatenated run records (with per-point optimum and ratios)
    in point-major, algorithm-minor order.
    """
    records = []
    for point in points:
        algorithms = algorithm_factory()
        if parallel:
            report = measure_parallel_stall(
                point.instance, algorithms, point=point.label
            )
        else:
            report = measure_ratios(
                point.instance,
                algorithms,
                optimal_elapsed=point.optimal_elapsed,
                optimal_stall=point.optimal_stall,
                point=point.label,
            )
        records.extend(report.records)
    return ResultSet(name=name, records=tuple(records))
