"""Brute-force optimal schedules for tiny instances (ground truth for tests).

The LP/MILP route is the scalable way to compute optimal stall times, but it
encodes the *synchronized* schedule class with ``k + D - 1`` cache slots.  To
certify the Theorem 4 guarantee — stall at most ``s_OPT(sigma, k)`` of the
*unrestricted* schedule class with exactly ``k`` slots — the tests need an
independent oracle.  This module searches the full schedule space with a
uniform-cost search over engine states.  It is exponential and only meant for
instances with a handful of requests and blocks.

State space
-----------
A state is ``(cursor, resident blocks, in-flight fetches with remaining
times)``; the cost is accumulated stall.  Transitions advance time by one
unit (serving the next request if possible, otherwise stalling) after
optionally starting fetches on idle disks.  Two safe prunings keep the space
manageable without losing optimality:

* a disk only ever fetches the *next* missing block that resides on it
  (fetching missing blocks out of reference order can be exchanged into
  reference order without increasing stall);
* the victim of a fetch is never a block whose next reference precedes the
  next reference of every other resident block unless no alternative exists
  (we still branch over all victims, but identical victim choices by next-use
  are deduplicated).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import count
from typing import Dict, FrozenSet, List, Optional, Tuple

from .._typing import INFINITY, BlockId
from ..disksim.instance import ProblemInstance
from ..errors import ConfigurationError
from ..lp.canonical import normalize_instance

__all__ = ["BruteForceResult", "brute_force_optimal_stall"]

#: Hard cap on explored states; exceeding it raises ConfigurationError so that
#: callers notice they handed the brute-force oracle too large an instance.
_MAX_STATES = 2_000_000


@dataclass(frozen=True)
class BruteForceResult:
    """Optimal stall/elapsed time certified by exhaustive search."""

    stall_time: int
    elapsed_time: int
    explored_states: int


def brute_force_optimal_stall(
    instance: ProblemInstance, *, max_states: int = _MAX_STATES
) -> BruteForceResult:
    """Exact optimal stall time of ``instance`` over all schedules with ``k`` slots.

    The instance is first routed through the shared canonical normalization
    (:func:`repro.lp.canonical.normalize_instance`) — the same helper the
    optimum service fingerprints with — so the oracle and the LP pipeline
    agree on instance identity and optimum-equivalent instances (differing
    only in never-requested warm block names) cannot produce mismatched
    cached optima.
    """
    instance = normalize_instance(instance)
    sequence = instance.sequence
    n = instance.num_requests
    fetch_time = instance.fetch_time
    num_disks = instance.num_disks
    if n > 40:
        raise ConfigurationError(
            f"brute force is only intended for tiny instances (n={n} requests)"
        )

    initial_resident = frozenset(instance.initial_cache)
    # in-flight: tuple of (disk, block, remaining) sorted for canonical form.
    start_state = (0, initial_resident, ())

    def next_missing_on_disk(cursor: int, resident: FrozenSet[BlockId], inflight_blocks, disk: int):
        seen = set()
        for pos in range(cursor, n):
            block = sequence[pos]
            if block in resident or block in inflight_blocks or block in seen:
                continue
            if instance.disk_of(block) != disk:
                seen.add(block)
                continue
            return block
        return None

    # Uniform-cost search on accumulated stall.
    counter = count()
    heap: List[Tuple[int, int, Tuple]] = [(0, next(counter), start_state)]
    best: Dict[Tuple, int] = {start_state: 0}
    explored = 0

    while heap:
        stall, _, state = heapq.heappop(heap)
        cursor, resident, inflight = state
        if best.get(state, INFINITY) < stall:
            continue
        explored += 1
        if explored > max_states:
            raise ConfigurationError(
                f"brute force exceeded {max_states} states; instance too large"
            )
        if cursor >= n:
            return BruteForceResult(
                stall_time=stall, elapsed_time=n + stall, explored_states=explored
            )

        inflight_blocks = frozenset(b for _, b, _ in inflight)
        busy_disks = frozenset(d for d, _, _ in inflight)
        idle_disks = [d for d in range(num_disks) if d not in busy_disks]

        # Enumerate fetch-start combinations for idle disks.  Each idle disk
        # either stays idle or starts fetching its next missing block with one
        # of the possible victims (or a free slot).
        def victim_options(current_resident: FrozenSet[BlockId], used: int):
            options: List[Optional[BlockId]] = []
            if used < instance.cache_size:
                options.append(None)
            # Deduplicate victims by their next use: evicting either of two
            # blocks with the same next-use distance is equivalent.
            seen_next_use = set()
            for block in sorted(current_resident, key=str):
                nu = sequence.next_use_from(cursor, block)
                if nu in seen_next_use:
                    continue
                seen_next_use.add(nu)
                options.append(block)
            return options

        combos: List[List[Tuple[int, BlockId, Optional[BlockId]]]] = [[]]
        for disk in idle_disks:
            target = next_missing_on_disk(cursor, resident, inflight_blocks, disk)
            if target is None:
                continue
            new_combos = []
            for combo in combos:
                new_combos.append(combo)  # disk stays idle
                combo_resident = resident - {v for _, _, v in combo if v is not None}
                combo_blocks = {b for _, b, _ in combo}
                if target in combo_blocks:
                    continue
                used = len(combo_resident) + len(inflight_blocks) + len(combo_blocks)
                for victim in victim_options(combo_resident, used):
                    new_combos.append(combo + [(disk, target, victim)])
            combos = new_combos

        for combo in combos:
            new_resident = set(resident)
            new_inflight = list(inflight)
            ok = True
            for disk, block, victim in combo:
                if victim is not None:
                    if victim not in new_resident:
                        ok = False
                        break
                    new_resident.discard(victim)
                new_inflight.append((disk, block, fetch_time))
            if not ok:
                continue
            if len(new_resident) + len(new_inflight) > instance.cache_size:
                continue

            # Advance one time step: serve if possible, else stall one unit.
            block_needed = sequence[cursor]
            serving = block_needed in new_resident
            extra_stall = 0 if serving else 1
            stepped_inflight = []
            completed = []
            for disk, block, remaining in new_inflight:
                remaining -= 1
                if remaining <= 0:
                    completed.append(block)
                else:
                    stepped_inflight.append((disk, block, remaining))
            stepped_resident = frozenset(new_resident | set(completed))
            new_cursor = cursor + 1 if serving else cursor
            if not serving and not new_inflight:
                # Stalling with no fetch in progress can never help.
                continue
            new_state = (
                new_cursor,
                stepped_resident,
                tuple(sorted(stepped_inflight, key=lambda item: (item[0], str(item[1])))),
            )
            new_cost = stall + extra_stall
            if best.get(new_state, INFINITY) > new_cost:
                best[new_state] = new_cost
                heapq.heappush(heap, (new_cost, next(counter), new_state))

    raise ConfigurationError("brute force search exhausted the state space without finishing")
