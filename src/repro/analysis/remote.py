"""Remote execution backend: cross-machine fan-out over the lease coordinator.

The fourth :class:`~repro.analysis.backends.ExecutionBackend`.  Where the
pool backends fan tasks out over local threads or processes, this one
serves them over HTTP to pull-based worker *processes* (``repro worker``),
which may run anywhere that can reach the coordinator:

* :class:`RemoteBackend` — the coordinator side.  ``map(fn, items)`` keeps
  the order-preserving contract: items are batched into pickled
  ``(fn, chunk)`` payloads, loaded into a
  :class:`~repro.service.coordinator.SweepCoordinator`, and the results are
  yielded in submission order as workers deliver them — so the runner
  persists records and emits byte-identical JSON exactly as with every
  other backend.  ``detached_workers`` tells the runner that workers may
  not share the parent's filesystem: the parent keeps sole ownership of
  the run store and optimum persistence.
* :func:`run_worker` — the worker side.  A loop that leases chunks,
  heartbeats while evaluating, and POSTs results back; transient transport
  errors are retried with capped exponential backoff
  (:func:`backoff_delays`), and a coordinator that stays gone simply ends
  the worker (its leases expire and are re-issued elsewhere).
* :class:`FaultPlan` — the fault-injection seam.  The test suite (and the
  CI smoke script) threads drop/duplicate/delay/kill faults through the
  worker transport to prove the fabric's idempotency and lease-recovery
  claims instead of assuming them.

Everything speaks stdlib ``urllib`` / ``http.server``; payloads are pickles
in base64-wrapped JSON, which makes this a **trusted-cluster** protocol —
point workers only at coordinators you run yourself.
"""

from __future__ import annotations

import base64
import itertools
import json
import os
import pickle
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, TypeVar

from ..errors import ConfigurationError, PointEvaluationError, WorkerTransportError
from ..service.coordinator import (
    CoordinatorHTTPServer,
    SweepCoordinator,
    make_coordinator_server,
)
from .backends import ExecutionBackend, adaptive_chunk_size

__all__ = [
    "RemoteBackend",
    "FaultPlan",
    "WorkerReport",
    "backoff_delays",
    "run_worker",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Distinguishes workers started in one process without consuming RNG state.
_WORKER_COUNTER = itertools.count(1)


def backoff_delays(retries: int, base: float, cap: float) -> List[float]:
    """The capped exponential backoff schedule: ``min(cap, base * 2**i)``.

    A pure function so the retry policy is unit-testable without sleeping:
    ``backoff_delays(4, 0.5, 3.0) == [0.5, 1.0, 2.0, 3.0]``.
    """
    if retries < 0:
        raise ConfigurationError(f"retry count must be >= 0, got {retries!r}")
    if base <= 0 or cap <= 0:
        raise ConfigurationError(
            f"backoff base and cap must be positive, got base={base!r} cap={cap!r}"
        )
    return [min(cap, base * (2.0 ** i)) for i in range(retries)]


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault injection for the worker transport (tests/smoke).

    Counters are consumed in arrival order — ``drop_completions=2`` swallows
    the worker's first two completion POSTs (so its leases expire and the
    chunks are re-issued), ``duplicate_completions=1`` sends the first
    completion twice (exercising the coordinator's duplicate discard),
    ``delay_seconds`` stalls before every completion (letting leases expire
    first), and ``kill_after_chunks=N`` makes the worker die — without
    completing — on its ``N+1``-th leased chunk, holding the lease.
    """

    drop_completions: int = 0
    duplicate_completions: int = 0
    delay_seconds: float = 0.0
    kill_after_chunks: Optional[int] = None


@dataclass
class WorkerReport:
    """What one :func:`run_worker` loop did before it exited, and why."""

    worker_id: str
    state: str = "done"  # done | shutdown | killed | coordinator-gone
    chunks_completed: int = 0
    tasks_completed: int = 0
    dropped_completions: int = 0
    duplicated_completions: int = 0

    def describe(self) -> str:
        """One-line human-readable summary (the ``repro worker`` exit line)."""
        return (
            f"worker {self.worker_id}: {self.state} "
            f"({self.chunks_completed} chunks, {self.tasks_completed} tasks"
            + (
                f", {self.dropped_completions} dropped"
                if self.dropped_completions
                else ""
            )
            + (
                f", {self.duplicated_completions} duplicated"
                if self.duplicated_completions
                else ""
            )
            + ")"
        )


# ---------------------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------------------


class RemoteBackend(ExecutionBackend):
    """Order-preserving backend that serves chunks to pull-based workers.

    Construction is socket-free (``make_backend("remote")`` must be safe to
    call anywhere); :meth:`start` binds the HTTP front end and returns the
    URL workers connect to.  ``workers`` is advisory only — it sizes the
    adaptive chunks; the actual degree of parallelism is however many
    ``repro worker`` processes attach.
    """

    name = "remote"
    #: Workers may live on other machines: the runner must not hand them a
    #: path to the parent's run store (the parent persists results itself).
    detached_workers = True

    def __init__(
        self,
        workers: int = 0,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout: float = 30.0,
        chunk_size: Optional[int] = None,
        announce: Optional[Callable[[str], None]] = None,
    ) -> None:
        super().__init__(workers)
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"chunk size must be >= 1, got {chunk_size!r}")
        self._host = host
        self._port = port
        self._chunk_size = chunk_size
        self._announce = announce
        self.coordinator = SweepCoordinator(lease_timeout=lease_timeout)
        self._server: Optional[CoordinatorHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None

    def start(self) -> str:
        """Bind the coordinator's HTTP server (daemon thread); returns its URL."""
        if self._server is None:
            self._server = make_coordinator_server(
                self.coordinator, self._host, self._port
            )
            self._server_thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-coordinator",
                daemon=True,
            )
            self._server_thread.start()
            if self._announce is not None:
                self._announce(self.url)
        return self.url

    @property
    def url(self) -> str:
        """The coordinator's base URL (``start()`` must have been called)."""
        if self._server is None:
            raise ConfigurationError(
                "remote backend is not serving yet; call start() first"
            )
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> Iterator[_R]:
        """Serve ``fn`` over ``items`` to the attached workers, in order.

        Chunks are adaptively sized (like the process pool) unless an
        explicit ``chunk_size`` was configured; each chunk travels as one
        pickled ``(fn, items)`` payload and comes back as either a result
        list or an exception, which is re-raised here — the same semantics
        as every other backend.  Raises
        :class:`~repro.errors.CoordinatorShutdown` if
        :meth:`request_shutdown` fires while results are outstanding.
        """
        items = list(items)
        if not items:
            return
        self.start()
        size = self._chunk_size or adaptive_chunk_size(len(items), self.workers)
        chunks = [items[start:start + size] for start in range(0, len(items), size)]
        self.coordinator.submit(
            [(pickle.dumps((fn, chunk)), len(chunk)) for chunk in chunks]
        )
        for payload in self.coordinator.results():
            outcome = pickle.loads(payload)
            if "error" in outcome:
                raise outcome["error"]
            yield from outcome["results"]

    def request_shutdown(self) -> None:
        """Stop the in-flight map (its iterator raises ``CoordinatorShutdown``)."""
        self.coordinator.request_shutdown()

    def close(self) -> None:
        """Tear the HTTP server down (attached workers see connection refused)."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
            self._server_thread = None


# ---------------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------------


class _Transport:
    """urllib transport with capped-exponential-backoff retries.

    Connection failures and 5xx responses are retried along
    :func:`backoff_delays`; exhausting the schedule raises
    :class:`~repro.errors.WorkerTransportError`, which the worker loop
    treats as "coordinator gone".  4xx responses are protocol bugs and
    surface immediately as :class:`~repro.errors.ConfigurationError`.
    """

    def __init__(
        self,
        url: str,
        *,
        backoff_base: float = 0.25,
        backoff_cap: float = 4.0,
        max_retries: int = 6,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.url = url.rstrip("/")
        self._delays = backoff_delays(max_retries, backoff_base, backoff_cap)
        self._sleep = sleep

    def post(self, path: str, payload: Dict[str, object]) -> Dict[str, object]:
        """POST ``payload`` as JSON to ``path``, retrying transient failures."""
        body = json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.url + path,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        last_error: Optional[Exception] = None
        for attempt, delay in enumerate([0.0] + list(self._delays)):
            if delay:
                self._sleep(delay)
            try:
                with urllib.request.urlopen(request, timeout=30) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                if exc.code < 500:
                    raise ConfigurationError(
                        f"coordinator rejected {path}: HTTP {exc.code} "
                        f"{exc.read().decode('utf-8', 'replace').strip()}"
                    ) from exc
                last_error = exc
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                last_error = exc
        raise WorkerTransportError(
            f"coordinator at {self.url} unreachable after "
            f"{len(self._delays) + 1} attempts: {last_error}"
        )


class _Heartbeat:
    """Background thread extending one lease's deadline while a chunk runs."""

    def __init__(
        self,
        transport: _Transport,
        *,
        worker: str,
        chunk: int,
        lease: str,
        run: str,
        interval: float,
    ) -> None:
        self._transport = transport
        self._payload = {"worker": worker, "chunk": chunk, "lease": lease, "run": run}
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name=f"heartbeat-{chunk}", daemon=True
        )

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._transport.post("/heartbeat", self._payload)
            except (WorkerTransportError, ConfigurationError):
                return  # the completion POST will discover the failure itself

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join()


def _evaluate_chunk(payload_b64: str) -> Tuple[bytes, int]:
    """Run one leased chunk; returns ``(result payload, task count)``.

    Task failures are shipped back as an error payload (re-raised inside the
    backend's ``map``), wrapped in a :class:`~repro.errors.PointEvaluationError`
    if the original exception does not survive a pickle round-trip.
    """
    fn, items = pickle.loads(base64.b64decode(payload_b64))
    try:
        outcome: Dict[str, object] = {"results": [fn(item) for item in items]}
    except Exception as exc:
        try:
            pickle.loads(pickle.dumps(exc))
        except Exception:
            exc = PointEvaluationError(
                f"remote task failed with an unpicklable exception: "
                f"{type(exc).__name__}: {exc}"
            )
        outcome = {"error": exc}
    return pickle.dumps(outcome), len(items)


def run_worker(
    url: str,
    *,
    worker_id: Optional[str] = None,
    poll_interval: float = 0.05,
    backoff_base: float = 0.25,
    backoff_cap: float = 4.0,
    max_retries: int = 6,
    fault_plan: Optional[FaultPlan] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> WorkerReport:
    """The pull-worker loop behind ``repro worker``.

    Polls ``url`` for chunk leases, evaluates each chunk via the pickled
    runner chokepoint it carries, heartbeats while evaluating, and POSTs
    the result back.  Exits with a :class:`WorkerReport` whose ``state``
    says why: ``done`` (coordinator reports the sweep finished),
    ``shutdown`` (coordinator asked workers to stop), ``coordinator-gone``
    (transport retries exhausted — held leases just expire elsewhere), or
    ``killed`` (the :class:`FaultPlan` terminated the worker mid-sweep,
    lease still held — test harness only).
    """
    plan = fault_plan or FaultPlan()
    report = WorkerReport(worker_id=worker_id or f"worker-{os.getpid()}.{next(_WORKER_COUNTER)}")
    transport = _Transport(
        url,
        backoff_base=backoff_base,
        backoff_cap=backoff_cap,
        max_retries=max_retries,
        sleep=sleep,
    )
    drops_left = plan.drop_completions
    duplicates_left = plan.duplicate_completions
    leased_chunks = 0
    try:
        while True:
            grant = transport.post("/lease", {"worker": report.worker_id})
            state = grant.get("state")
            if state == "done":
                report.state = "done"
                return report
            if state == "shutdown":
                report.state = "shutdown"
                return report
            if state == "idle":
                sleep(poll_interval)
                continue
            if state != "lease":
                raise ConfigurationError(f"coordinator sent unknown state {state!r}")

            if plan.kill_after_chunks is not None and leased_chunks >= plan.kill_after_chunks:
                # Die mid-chunk, lease held: the deadline must expire and the
                # chunk be re-issued for the sweep to finish without us.
                report.state = "killed"
                return report
            leased_chunks += 1

            chunk = int(grant["chunk"])
            lease = str(grant["lease"])
            run = str(grant["run"])
            heartbeat_interval = max(0.01, float(grant["timeout"]) / 3.0)
            with _Heartbeat(
                transport,
                worker=report.worker_id,
                chunk=chunk,
                lease=lease,
                run=run,
                interval=heartbeat_interval,
            ):
                result_payload, task_count = _evaluate_chunk(str(grant["payload"]))

            if plan.delay_seconds:
                sleep(plan.delay_seconds)
            completion = {
                "worker": report.worker_id,
                "chunk": chunk,
                "lease": lease,
                "run": run,
                "payload": base64.b64encode(result_payload).decode("ascii"),
            }
            if drops_left > 0:
                drops_left -= 1
                report.dropped_completions += 1
                continue  # never POSTed: the lease expires and is re-issued
            sends = 1
            if duplicates_left > 0:
                duplicates_left -= 1
                report.duplicated_completions += 1
                sends = 2
            accepted = False
            for _ in range(sends):
                ack = transport.post("/complete", completion)
                accepted = accepted or bool(ack.get("accepted"))
            if accepted:
                report.chunks_completed += 1
                report.tasks_completed += task_count
    except WorkerTransportError:
        report.state = "coordinator-gone"
        return report
