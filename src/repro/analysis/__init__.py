"""Measurement harness: brute-force optima, ratio measurement, sweeps, reports."""

from .compare import ScheduleDiff, diff_schedules, summarize_result
from .optimal import BruteForceResult, brute_force_optimal_stall
from .ratios import AlgorithmMeasurement, RatioReport, measure_parallel_stall, measure_ratios
from .reporting import format_comparison, format_report, format_table
from .runner import (
    ExperimentPoint,
    ExperimentRun,
    ExperimentSpec,
    evaluate_instances,
    instance_fingerprint,
    run_experiments,
)
from .sweep import SweepPoint, SweepResult, run_sweep

__all__ = [
    "ExperimentPoint",
    "ExperimentRun",
    "ExperimentSpec",
    "evaluate_instances",
    "instance_fingerprint",
    "run_experiments",
    "ScheduleDiff",
    "diff_schedules",
    "summarize_result",
    "BruteForceResult",
    "brute_force_optimal_stall",
    "AlgorithmMeasurement",
    "RatioReport",
    "measure_parallel_stall",
    "measure_ratios",
    "format_comparison",
    "format_report",
    "format_table",
    "SweepPoint",
    "SweepResult",
    "run_sweep",
]
