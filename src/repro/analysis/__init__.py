"""Measurement harness: brute-force optima, ratio measurement, sweeps, reports.

Every producer in this package emits the unified run-record model of
:mod:`repro.analysis.results`: a :class:`RunRecord` per algorithm x instance
evaluation, collected into :class:`ResultSet` s with uniform JSON/CSV
emission — whether the records come from the batched runner, the LP-backed
ratio harness or an in-process sweep.  Execution is pluggable
(:mod:`repro.analysis.backends`: serial/thread/process with adaptive
chunking) and persistence is durable (:mod:`repro.analysis.store`: one
WAL-mode SQLite file holding run records, optimum records and resumable
sweep manifests).
"""

from .backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    adaptive_chunk_size,
    make_backend,
)
from .compare import ScheduleDiff, diff_schedules, summarize_result
from .optimal import BruteForceResult, brute_force_optimal_stall
from .ratios import AlgorithmMeasurement, RatioReport, measure_parallel_stall, measure_ratios
from .reporting import (
    format_comparison,
    format_ratio_table,
    format_report,
    format_result_set,
    format_table,
)
from .results import RUN_RECORD_COLUMNS, ResultSet, RunRecord, safe_ratio
from .runner import (
    ExperimentPoint,
    ExperimentRun,
    ExperimentSpec,
    evaluate_instances,
    instance_fingerprint,
    point_cache_key,
    prepare_sweep,
    run_experiments,
    sweep_key_for,
)
from .store import ImportReport, RunStore, SweepProgress, store_path_for
from .sweep import SweepPoint, run_sweep

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "adaptive_chunk_size",
    "make_backend",
    "RunStore",
    "SweepProgress",
    "ImportReport",
    "store_path_for",
    "point_cache_key",
    "prepare_sweep",
    "sweep_key_for",
    "RUN_RECORD_COLUMNS",
    "RunRecord",
    "ResultSet",
    "safe_ratio",
    "ExperimentPoint",
    "ExperimentRun",
    "ExperimentSpec",
    "evaluate_instances",
    "instance_fingerprint",
    "run_experiments",
    "ScheduleDiff",
    "diff_schedules",
    "summarize_result",
    "BruteForceResult",
    "brute_force_optimal_stall",
    "AlgorithmMeasurement",
    "RatioReport",
    "measure_parallel_stall",
    "measure_ratios",
    "format_comparison",
    "format_ratio_table",
    "format_report",
    "format_result_set",
    "format_table",
    "SweepPoint",
    "run_sweep",
]
