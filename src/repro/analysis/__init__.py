"""Measurement harness: brute-force optima, ratio measurement, sweeps, reports.

Every producer in this package emits the unified run-record model of
:mod:`repro.analysis.results`: a :class:`RunRecord` per algorithm x instance
evaluation, collected into :class:`ResultSet` s with uniform JSON/CSV
emission — whether the records come from the batched runner, the LP-backed
ratio harness or an in-process sweep.
"""

from .compare import ScheduleDiff, diff_schedules, summarize_result
from .optimal import BruteForceResult, brute_force_optimal_stall
from .ratios import AlgorithmMeasurement, RatioReport, measure_parallel_stall, measure_ratios
from .reporting import (
    format_comparison,
    format_ratio_table,
    format_report,
    format_result_set,
    format_table,
)
from .results import RUN_RECORD_COLUMNS, ResultSet, RunRecord, safe_ratio
from .runner import (
    ExperimentPoint,
    ExperimentRun,
    ExperimentSpec,
    evaluate_instances,
    instance_fingerprint,
    run_experiments,
)
from .sweep import SweepPoint, run_sweep

__all__ = [
    "RUN_RECORD_COLUMNS",
    "RunRecord",
    "ResultSet",
    "safe_ratio",
    "ExperimentPoint",
    "ExperimentRun",
    "ExperimentSpec",
    "evaluate_instances",
    "instance_fingerprint",
    "run_experiments",
    "ScheduleDiff",
    "diff_schedules",
    "summarize_result",
    "BruteForceResult",
    "brute_force_optimal_stall",
    "AlgorithmMeasurement",
    "RatioReport",
    "measure_parallel_stall",
    "measure_ratios",
    "format_comparison",
    "format_ratio_table",
    "format_report",
    "format_result_set",
    "format_table",
    "SweepPoint",
    "run_sweep",
]
