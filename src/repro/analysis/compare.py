"""Schedule comparison utilities.

Used by tests and by the E10 ablation to compare two routes to (near-)optimal
schedules: do they agree on stall time, how do their fetch counts differ, and
where do their fetch intervals diverge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..disksim.executor import SimulationResult
from ..disksim.schedule import IntervalSchedule, Schedule

__all__ = ["ScheduleDiff", "diff_schedules", "summarize_result"]


@dataclass(frozen=True)
class ScheduleDiff:
    """Structural comparison of two schedules of the same instance."""

    stall_a: int
    stall_b: int
    fetches_a: int
    fetches_b: int
    common_fetch_blocks: int
    only_in_a: Tuple[str, ...]
    only_in_b: Tuple[str, ...]

    @property
    def same_stall(self) -> bool:
        """Whether both schedules achieve the same stall time."""
        return self.stall_a == self.stall_b


def _fetched_blocks(schedule) -> List[str]:
    if isinstance(schedule, Schedule):
        return sorted(str(op.block) for op in schedule.fetches)
    if isinstance(schedule, IntervalSchedule):
        return sorted(str(op.block) for op in schedule.fetches)
    raise TypeError(f"unsupported schedule type {type(schedule)!r}")


def diff_schedules(
    result_a: SimulationResult, result_b: SimulationResult
) -> ScheduleDiff:
    """Compare two executed schedules (same instance) structurally."""
    blocks_a = _fetched_blocks(result_a.schedule)
    blocks_b = _fetched_blocks(result_b.schedule)
    set_a, set_b = set(blocks_a), set(blocks_b)
    return ScheduleDiff(
        stall_a=result_a.stall_time,
        stall_b=result_b.stall_time,
        fetches_a=len(blocks_a),
        fetches_b=len(blocks_b),
        common_fetch_blocks=len(set_a & set_b),
        only_in_a=tuple(sorted(set_a - set_b)),
        only_in_b=tuple(sorted(set_b - set_a)),
    )


def summarize_result(result: SimulationResult) -> Dict[str, object]:
    """Small dictionary summary of a run (policy, stall, elapsed, fetches)."""
    return {
        "policy": result.policy_name,
        "stall": result.stall_time,
        "elapsed": result.elapsed_time,
        "fetches": result.metrics.num_fetches,
        "demand_fetches": result.metrics.num_demand_fetches,
        "peak_cache": result.metrics.peak_cache_used,
    }
