"""Plain-text tables for experiment output.

The benchmarks print their results as aligned text tables (the paper has no
figures to re-plot, so tables are the native output format of every
experiment).  Only the standard library is used; the helpers accept the
unified result model (:class:`~repro.analysis.results.ResultSet` /
:class:`~repro.analysis.ratios.RatioReport`) or plain row dictionaries.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

__all__ = [
    "format_table",
    "format_report",
    "format_result_set",
    "format_ratio_table",
    "format_comparison",
]

#: Default columns for sweep-style tables (the CLI's ``repro sweep`` view).
SWEEP_COLUMNS: Sequence[str] = (
    "workload", "cache_size", "fetch_time", "disks", "layout", "algorithm",
    "stall_time", "elapsed_time", "num_fetches", "hit_rate",
)

#: Default columns for ratio tables (the CLI's ``repro ratios`` view):
#: measured values next to the certified optimum, the derived ratios and the
#: optimum's solve wall time.
RATIO_COLUMNS: Sequence[str] = (
    "workload", "cache_size", "fetch_time", "disks", "algorithm",
    "stall_time", "elapsed_time", "optimal_stall", "optimal_elapsed",
    "stall_ratio", "elapsed_ratio", "optimum_solve_seconds",
)


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    float_precision: int = 3,
) -> str:
    """Render ``rows`` (dictionaries) as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{float_precision}f}"
        return str(value)

    rendered = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[idx]) for r in rendered)) for idx, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[idx]) for idx, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(cell.ljust(widths[idx]) for idx, cell in enumerate(r)))
    return "\n".join(lines)


def format_report(report, *, title: Optional[str] = None) -> str:
    """Render a :class:`~repro.analysis.ratios.RatioReport` as a table."""
    header = title or f"instance: {report.instance_description}"
    lines = [
        header,
        f"optimal stall = {report.optimal_stall}, optimal elapsed = {report.optimal_elapsed}",
    ]
    if report.bounds is not None:
        b = report.bounds
        lines.append(
            "bounds: aggressive(Thm1)="
            f"{b.aggressive_refined:.3f} (Cao et al. {b.aggressive_cao:.3f}), "
            f"lower(Thm2)={b.aggressive_lower:.3f}, delay(d0={b.best_delay})={b.delay_best:.3f}, "
            f"combination={b.combination:.3f}"
        )
    lines.append(format_table(report.as_rows()))
    return "\n".join(lines)


def format_result_set(
    results,
    *,
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    float_precision: int = 3,
) -> str:
    """Render a :class:`~repro.analysis.results.ResultSet` as a table.

    ``columns`` selects flat-row columns (default: the sweep view in
    :data:`SWEEP_COLUMNS`).
    """
    selected = list(columns) if columns is not None else list(SWEEP_COLUMNS)
    return format_table(
        results.as_rows(selected), columns=selected, title=title,
        float_precision=float_precision,
    )


def format_ratio_table(results, *, title: Optional[str] = None) -> str:
    """Render an optimum-carrying :class:`ResultSet` as the ratio view.

    The per-record table (:data:`RATIO_COLUMNS`) is followed by a summary
    block with every algorithm's worst elapsed-time ratio over the set —
    the quantity the paper's theorems bound.
    """
    lines = [format_result_set(results, columns=RATIO_COLUMNS, title=title)]
    algorithms: List[str] = []
    for record in results:
        if record.algorithm_spec not in algorithms:
            algorithms.append(record.algorithm_spec)
    summary_rows = []
    for algorithm in algorithms:
        ratios = results.ratios_for(algorithm)
        if not ratios:
            continue
        summary_rows.append(
            {
                "algorithm": algorithm,
                "points": len(ratios),
                "max_elapsed_ratio": round(max(ratios.values()), 4),
                "mean_elapsed_ratio": round(sum(ratios.values()) / len(ratios), 4),
            }
        )
    if summary_rows:
        lines.append("")
        lines.append(format_table(summary_rows, title="worst/mean ratio per algorithm"))
    return "\n".join(lines)


def format_comparison(
    series: Mapping[str, Mapping[str, float]],
    *,
    x_label: str = "point",
    title: Optional[str] = None,
    float_precision: int = 3,
) -> str:
    """Render several named series over the same x-axis as one table.

    ``series`` maps a series name (e.g. an algorithm) to a mapping from grid
    point label to value.  Used by the sweep benchmarks to print ratio curves.
    """
    labels: List[str] = []
    for values in series.values():
        for label in values:
            if label not in labels:
                labels.append(label)
    rows = []
    for label in labels:
        row: Dict[str, object] = {x_label: label}
        for name, values in series.items():
            if label in values:
                row[name] = values[label]
        rows.append(row)
    return format_table(rows, title=title, float_precision=float_precision)
